//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no registry access (see EXPERIMENTS.md), so the
//! workspace replaces its external dev-dependencies with small path shims.
//! This shim implements the subset of proptest the repo's property tests
//! use: the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map`, `any::<T>()` for primitives, integer-range and tuple
//! strategies, [`Just`](strategy::Just), `prop::collection::vec`,
//! `prop::option::of`, `prop_oneof!`, and the `proptest!` test macro with
//! `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and seed; the
//!   run is fully deterministic, so re-running reproduces it exactly.
//! * **Fixed seeding.** Each test's stream derives from the test name (FNV
//!   hash) and case index, or from `PROPTEST_SEED` if set — there is no
//!   persisted regression file (existing `*.proptest-regressions` files are
//!   ignored).
//! * **Uniform distributions only.** No bias toward edge values.

pub mod test_runner {
    //! Test-case driver: configuration, error type, deterministic runner.

    /// Mirrors `proptest::test_runner::Config` (re-exported from the prelude
    /// as `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum number of `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// A config that runs `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the whole test fails.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    /// Result type each generated case evaluates to.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic PRNG handed to strategies (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a 64-bit seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Runs `case` until `config.cases` successes, panicking on the first
    /// failure with enough context to reproduce it (the stream is a pure
    /// function of the test name, the case index, and `PROPTEST_SEED`).
    pub fn run(
        config: &Config,
        test_name: &str,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        let base = fnv1a(test_name) ^ env_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);

        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut index = 0u64;
        while passed < config.cases {
            let mut rng =
                TestRng::from_seed(base.wrapping_add(index.wrapping_mul(0xA24B_AED4_963E_E407)));
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest `{test_name}`: too many prop_assume! rejections \
                             ({rejected}) after {passed} passing cases"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{test_name}` failed at case #{index} \
                         (PROPTEST_SEED={env_seed}): {msg}"
                    );
                }
            }
            index += 1;
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike the real crate there is no value-tree/shrinking layer:
    /// `generate` directly produces a value from the RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, builds a second strategy from it, and draws
        /// from that.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// String literals are regex strategies, as in the real crate (subset:
    /// see [`crate::string`]).
    impl Strategy for str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate(self, rng)
        }
    }

    /// A boxed strategy (the arms of `prop_oneof!`).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    /// Boxes a strategy, unifying arm types for [`Union`].
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union; panics on an empty arm list.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Primitive types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// `any::<T>()` — uniform values of a primitive type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    $(let $v = $s.generate(rng);)+
                    ($($v,)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
    impl_tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i
    );
    impl_tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i,
        J / j
    );
    impl_tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i,
        J / j,
        K / k
    );
    impl_tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i,
        J / j,
        K / k,
        L / l
    );
}

pub mod collection {
    //! `prop::collection` — container strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Accepted size arguments for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! String generation from a small regex subset.
    //!
    //! Supported: sequences of atoms — `.` (any printable char except
    //! newline), `[class]` with ranges and `\n`/`\t`/`\\`/`\]`/`\-` escapes,
    //! or a literal char — each optionally followed by `{n}`, `{m,n}`, `*`,
    //! `+`, or `?`. This covers the patterns the repo's tests use; anything
    //! else panics with the offending pattern.

    use crate::test_runner::TestRng;

    enum Atom {
        Any,
        Class(Vec<char>),
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        min: u32,
        max: u32,
    }

    fn parse(pat: &str) -> Vec<Piece> {
        let chars: Vec<char> = pat.chars().collect();
        let mut i = 0;
        let mut out = Vec::new();
        while i < chars.len() {
            let atom = match chars[i] {
                '.' => {
                    i += 1;
                    Atom::Any
                }
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let c = if chars[i] == '\\' {
                            i += 1;
                            match chars.get(i) {
                                Some('n') => '\n',
                                Some('t') => '\t',
                                Some(&c) => c,
                                None => panic!("unterminated escape in pattern `{pat}`"),
                            }
                        } else {
                            chars[i]
                        };
                        i += 1;
                        // Range `a-z` (a `-` before `]` is a literal).
                        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&c| c != ']')
                        {
                            let hi = chars[i + 1];
                            i += 2;
                            for v in (c as u32)..=(hi as u32) {
                                if let Some(c) = char::from_u32(v) {
                                    set.push(c);
                                }
                            }
                        } else {
                            set.push(c);
                        }
                    }
                    assert!(i < chars.len(), "unterminated class in pattern `{pat}`");
                    i += 1; // skip ']'
                    assert!(!set.is_empty(), "empty class in pattern `{pat}`");
                    Atom::Class(set)
                }
                '\\' => {
                    i += 1;
                    let c = match chars.get(i) {
                        Some('n') => '\n',
                        Some('t') => '\t',
                        Some(&c) => c,
                        None => panic!("unterminated escape in pattern `{pat}`"),
                    };
                    i += 1;
                    Atom::Lit(c)
                }
                c => {
                    i += 1;
                    Atom::Lit(c)
                }
            };
            let (min, max) = match chars.get(i) {
                Some('{') => {
                    i += 1;
                    let start = i;
                    while i < chars.len() && chars[i] != '}' {
                        i += 1;
                    }
                    let body: String = chars[start..i].iter().collect();
                    assert!(i < chars.len(), "unterminated `{{` in pattern `{pat}`");
                    i += 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse()
                                .unwrap_or_else(|_| panic!("bad bound in `{pat}`")),
                            hi.parse()
                                .unwrap_or_else(|_| panic!("bad bound in `{pat}`")),
                        ),
                        None => {
                            let n = body
                                .parse()
                                .unwrap_or_else(|_| panic!("bad bound in `{pat}`"));
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    i += 1;
                    (0, 16)
                }
                Some('+') => {
                    i += 1;
                    (1, 16)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            };
            assert!(min <= max, "inverted repetition in pattern `{pat}`");
            out.push(Piece { atom, min, max });
        }
        out
    }

    /// Generates one string matching `pat`.
    pub fn generate(pat: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pat) {
            let n = piece.min + rng.below(u64::from(piece.max - piece.min) + 1) as u32;
            for _ in 0..n {
                match &piece.atom {
                    // `.`: printable ASCII, never newline (regex semantics).
                    Atom::Any => out.push((0x20 + rng.below(0x5F) as u8) as char),
                    Atom::Class(set) => out.push(set[rng.below(set.len() as u64) as usize]),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::test_runner::TestRng;

        #[test]
        fn generates_within_class_and_bounds() {
            let mut rng = TestRng::from_seed(11);
            for _ in 0..200 {
                let s = generate("[a-c]{2,5}", &mut rng);
                assert!((2..=5).contains(&s.chars().count()));
                assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            }
        }

        #[test]
        fn dot_never_yields_newline() {
            let mut rng = TestRng::from_seed(3);
            for _ in 0..200 {
                let s = generate(".{0,40}", &mut rng);
                assert!(!s.contains('\n'));
                assert!(s.chars().count() <= 40);
            }
        }

        #[test]
        fn escapes_and_literals() {
            let mut rng = TestRng::from_seed(5);
            let s = generate("ab\\n[x\\]]{1}", &mut rng);
            assert!(s.starts_with("ab\n"));
            assert!(s.ends_with('x') || s.ends_with(']'));
        }
    }
}

pub mod array {
    //! `prop::array` — fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by the `uniformN` constructors.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        elem: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.elem.generate(rng))
        }
    }

    /// An `[T; N]` with every element drawn from `elem`.
    pub fn uniform<S: Strategy, const N: usize>(elem: S) -> UniformArrayStrategy<S, N> {
        UniformArrayStrategy { elem }
    }

    macro_rules! uniform_n {
        ($($name:ident => $n:literal),+ $(,)?) => {$(
            /// An array with every element drawn from `elem`.
            pub fn $name<S: Strategy>(elem: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { elem }
            }
        )+};
    }
    uniform_n!(uniform4 => 4, uniform8 => 8, uniform16 => 16, uniform32 => 32);
}

pub mod option {
    //! `prop::option` — `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four (both constructors get exercised).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The customary glob import: strategies, config, macros, and the `prop`
/// module alias.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module alias matching `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Defines `#[test]` functions over generated inputs.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            // One tuple strategy for all parameters: strategies are built
            // once, and macro hygiene cannot shadow the per-param bindings.
            let __strats = ($($strat,)+);
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                let ($($pat,)+) = $crate::strategy::Strategy::generate(&__strats, __rng);
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    (($config:expr);) => {};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($lhs), stringify!($rhs), l, r, format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(a, b)` with an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}\n {}",
            stringify!($lhs), stringify!($rhs), l, format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) when `cond` fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec(0u32..100, 1..10);
        let a: Vec<u32> = strat.generate(&mut TestRng::from_seed(9));
        let b: Vec<u32> = strat.generate(&mut TestRng::from_seed(9));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_respect_bounds(x in -50i64..50, y in 3u8..9) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((3..9).contains(&y));
        }

        #[test]
        fn oneof_and_combinators_cover_arms(
            v in prop::collection::vec(
                prop_oneof![Just(0u8), 1u8..4, any::<u8>().prop_map(|b| b | 0x80)],
                0..12,
            ),
            opt in prop::option::of(0u16..3),
            (lo, hi) in (0u32..10, 10u32..20),
        ) {
            prop_assert!(v.len() < 12);
            if let Some(x) = opt {
                prop_assert!(x < 3);
            }
            prop_assert!(lo < hi);
            prop_assert_ne!(hi, 0);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "n = {}", n);
        }
    }

    #[test]
    fn flat_map_dependent_generation() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (1usize..5).prop_flat_map(|n| prop::collection::vec(0u8..10, n..(n + 1)));
        for seed in 0..50 {
            let v = strat.generate(&mut TestRng::from_seed(seed));
            assert!((1..5).contains(&v.len()));
        }
    }
}
