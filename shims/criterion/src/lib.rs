//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no registry access (see EXPERIMENTS.md), so the
//! workspace replaces its external dependencies with small path shims. This
//! one implements the subset the `pdo-bench` benches use — `Criterion`,
//! `benchmark_group` with `sample_size`, `bench_function`, `iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! plain batch timer instead of criterion's statistical engine. Output is
//! one line per benchmark: the minimum batch average (robust headline
//! number) plus mean ± half-width of a normal-approximation 95% confidence
//! interval over the batch averages, so CI logs show run-to-run spread.

use std::time::Instant;

/// Opaque-to-the-optimizer identity function (same contract as
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Summary statistics of one benchmark's batch averages.
#[derive(Debug, Default, Clone, Copy)]
pub struct Measurement {
    /// Minimum batch average (ns/iter) — the headline number, robust
    /// against scheduler noise on a shared machine.
    pub min_ns: f64,
    /// Mean of the batch averages (ns/iter).
    pub mean_ns: f64,
    /// Half-width of the 95% confidence interval of the mean (normal
    /// approximation: `1.96 * stddev / sqrt(batches)`).
    pub ci95_ns: f64,
}

/// Runs `f` repeatedly and summarizes the batch averages.
///
/// Public so harnesses other than the `criterion_group!` entry points —
/// e.g. the `obs_gate` overhead gate — can reuse the shim's timing
/// discipline (warm-up, batching, min/mean/CI summary) directly.
pub fn measure<O>(mut f: impl FnMut() -> O, samples: usize) -> Measurement {
    // Warm up, then take `samples` batches.
    for _ in 0..3 {
        black_box(f());
    }
    let batches = samples.clamp(3, 10);
    let mut avgs = Vec::with_capacity(batches);
    for _ in 0..batches {
        let batch = 16u32;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        avgs.push(start.elapsed().as_nanos() as f64 / f64::from(batch));
    }
    let min_ns = avgs.iter().copied().fold(f64::INFINITY, f64::min);
    let n = avgs.len() as f64;
    let mean_ns = avgs.iter().sum::<f64>() / n;
    let var = avgs.iter().map(|a| (a - mean_ns).powi(2)).sum::<f64>() / (n - 1.0);
    let ci95_ns = 1.96 * (var / n).sqrt();
    Measurement {
        min_ns,
        mean_ns,
        ci95_ns,
    }
}

/// Per-iteration timer handed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    result: Measurement,
    samples: usize,
}

impl Bencher {
    /// Times `f`, storing the measurement for the group to report.
    pub fn iter<O>(&mut self, f: impl FnMut() -> O) {
        self.result = measure(f, self.samples);
    }
}

/// A named set of benchmarks (subset of criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the sample count (clamped; the shim keeps runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Measures one benchmark and prints a single summary line.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            result: Measurement::default(),
            samples: self.samples,
        };
        f(&mut b);
        println!(
            "{}/{}: {:.1} ns/iter (mean {:.1} ± {:.1}, 95% CI)",
            self.name, id, b.result.min_ns, b.result.mean_ns, b.result.ci95_ns
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
        }
    }

    /// Measures one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            result: Measurement::default(),
            samples: 10,
        };
        f(&mut b);
        println!(
            "{}: {:.1} ns/iter (mean {:.1} ± {:.1}, 95% CI)",
            id, b.result.min_ns, b.result.mean_ns, b.result.ci95_ns
        );
        self
    }
}

/// Declares a benchmark group function, as `criterion_group!(name, fns…)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        benches();
    }
}
