//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no registry access (see EXPERIMENTS.md), so the
//! workspace replaces its external dependencies with small path shims. This
//! one implements the subset the `pdo-bench` benches use — `Criterion`,
//! `benchmark_group` with `sample_size`, `bench_function`, `iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros — with a
//! plain best-of-batches timer instead of criterion's statistical engine.
//! Output is one line per benchmark: median-of-batch average nanoseconds.

use std::time::Instant;

/// Opaque-to-the-optimizer identity function (same contract as
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs `f` repeatedly and reports the best batch-average nanoseconds.
fn measure<O>(mut f: impl FnMut() -> O, samples: usize) -> f64 {
    // Warm up, then take `samples` batches and keep the minimum average —
    // robust against scheduler noise, matching the repo's bench philosophy.
    for _ in 0..3 {
        black_box(f());
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples.clamp(3, 10) {
        let batch = 16u32;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let avg = start.elapsed().as_nanos() as f64 / f64::from(batch);
        if avg < best {
            best = avg;
        }
    }
    best
}

/// Per-iteration timer handed to `bench_function` closures.
#[derive(Debug, Default)]
pub struct Bencher {
    result_ns: f64,
    samples: usize,
}

impl Bencher {
    /// Times `f`, storing the measurement for the group to report.
    pub fn iter<O>(&mut self, f: impl FnMut() -> O) {
        self.result_ns = measure(f, self.samples);
    }
}

/// A named set of benchmarks (subset of criterion's `BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    /// Sets the sample count (clamped; the shim keeps runs short).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Measures one benchmark and prints a single summary line.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            result_ns: 0.0,
            samples: self.samples,
        };
        f(&mut b);
        println!("{}/{}: {:.1} ns/iter", self.name, id, b.result_ns);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
        }
    }

    /// Measures one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            result_ns: 0.0,
            samples: 10,
        };
        f(&mut b);
        println!("{}: {:.1} ns/iter", id, b.result_ns);
        self
    }
}

/// Declares a benchmark group function, as `criterion_group!(name, fns…)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(2u64) + black_box(3u64)));
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_and_measures() {
        benches();
    }
}
