//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no registry access (see EXPERIMENTS.md), so the
//! workspace replaces its external dev-dependencies with small path shims
//! that implement exactly the API surface the repo uses. This one provides a
//! deterministic [`rngs::StdRng`] (splitmix64 core) plus the [`Rng`] and
//! [`SeedableRng`] traits with uniform sampling helpers.
//!
//! Determinism is a feature here: every consumer seeds explicitly
//! (`seed_from_u64`), so runs are reproducible across platforms — unlike the
//! real `rand`, whose `StdRng` stream may change between major versions.

use std::ops::Range;

/// Splitmix64 step: advances the state and returns a well-mixed 64-bit word.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG.
pub trait Standard: Sized {
    /// Draws one uniformly-distributed value.
    fn sample(word: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(word: u64) -> Self {
        word & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(word: u64) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (word >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next raw 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (`rng.gen::<u32>()` style).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Uniform integer in `[range.start, range.end)`.
    fn gen_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range: empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Builds the RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic RNG types.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// Deterministic stand-in for `rand::rngs::StdRng` (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn gen_bool_roughly_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }
}
