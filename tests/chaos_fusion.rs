//! Chaos equivalence for superinstruction fusion: a fused program is
//! observationally identical to its unfused original *under injected
//! faults*, not just on the happy path.
//!
//! The workload's handler bodies contain every shape the fusion pass
//! rewrites — the locked counter bump (`lfold.i`), the immediate checksum
//! fold (`gfold.i`), the register-operand fold (`gfold`), the single-store
//! critical section (`lstore`), and const-fed arithmetic (`bin.i`) — so
//! the sweep exercises all five superinstructions' charge-replay paths.
//! For any seeded plan of equivalence-safe faults (dispatch traps,
//! argument corruption, dropped/delayed timers, fuel exhaustion) and
//! either containment policy, the fused program must observe exactly what
//! the unfused one observes: same global state, same emitted packets,
//! same fault sequence, same robustness counters. Fuel exhaustion is the
//! sharp edge — each superinstruction charges its constituents as if they
//! executed individually, so a budget that dies in the middle of a fused
//! sequence must abort at the same constituent with the same partial
//! effects (e.g. the lock still held) as the unfused run. Argument
//! corruption drives mid-sequence eval faults through the batched-charge
//! refund path the same way.
//!
//! A second test covers the adaptive stack: a *fused chain* (super-handler
//! rewritten by the fusion pass, as `AdaptiveEngine::reprofile` does) that
//! traps under `FaultPolicy::Despecialize` must be torn down while the
//! session's behavior stays identical to the never-optimized reference.

#[path = "common/oracle.rs"]
mod oracle;

use oracle::{
    assert_equivalent, chaos_cases, chaos_seed, observe, CaseContext, ChaosCase, Observed, POLICIES,
};
use pdo::{optimize, Optimization, OptimizeOptions};
use pdo_events::{
    FaultInjector, FaultKind, FaultPolicy, FaultSpec, Runtime, RuntimeConfig, TraceConfig,
};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_passes::fuse_module;
use pdo_profile::Profile;
use std::cell::RefCell;
use std::rc::Rc;

/// Synchronous ticks in a session (async extras ride on top).
const TICKS: i64 = 24;

/// A pipeline whose handler bodies are built from fusable sequences:
/// `Tick` bumps a locked frame counter and stages a value, then
/// synchronously raises `Digest`, which folds the checksum, emits a
/// packet, and arms a timed `Flush`; `Flush` records the payload through
/// a locked store and a register-operand fold.
struct Pipeline {
    module: Module,
    tick: EventId,
    flush: EventId,
    bindings: Vec<(EventId, FuncId, i32)>,
}

fn pipeline() -> Pipeline {
    let mut m = Module::new();
    let tick = m.add_event("Tick");
    let digest = m.add_event("Digest");
    let flush = m.add_event("Flush");

    let g_frames = m.add_global("frames", Value::Int(0));
    let g_staged = m.add_global("staged", Value::Int(0));
    let g_digest = m.add_global("digest", Value::Int(0x5EED));
    let g_last = m.add_global("last", Value::Int(0));
    let g_sum = m.add_global("sum", Value::Int(0));
    let n_emit = m.add_native("emit");

    // Tick order 0: the locked frame bump — fuses to `lfold.i`.
    let mut b = FunctionBuilder::new("tick_bump", 1);
    b.lock(g_frames);
    let v = b.load_global(g_frames);
    let one = b.const_int(1);
    let s = b.bin(BinOp::Add, v, one);
    b.store_global(g_frames, s);
    b.unlock(g_frames);
    b.ret(None);
    let h_bump = m.add_function(b.finish());

    // Tick order 10: staged = arg * 2 + 1 — two `bin.i` fusions — then the
    // nested sync chain.
    let mut b = FunctionBuilder::new("tick_stage", 1);
    let two = b.const_int(2);
    let d = b.bin(BinOp::Mul, b.param(0), two);
    let one = b.const_int(1);
    let st = b.bin(BinOp::Add, d, one);
    b.store_global(g_staged, st);
    b.raise(digest, RaiseMode::Sync, &[]);
    b.ret(None);
    let h_stage = m.add_function(b.finish());

    // Digest: digest ^= 0x5A — fuses to `gfold.i` — then emit the staged
    // packet and arm a timed Flush carrying it.
    let mut b = FunctionBuilder::new("digest_fold", 0);
    let v = b.load_global(g_digest);
    let mask = b.const_int(0x5A);
    let x = b.bin(BinOp::Xor, v, mask);
    b.store_global(g_digest, x);
    let p = b.load_global(g_staged);
    let _ = b.call_native(n_emit, &[p]);
    let delay = b.const_int(1_000);
    b.raise(flush, RaiseMode::Timed, &[delay, p]);
    b.ret(None);
    let h_digest = m.add_function(b.finish());

    // Flush: last = arg (a `lstore` critical section); sum += arg (a
    // register-operand `gfold`).
    let mut b = FunctionBuilder::new("flush_record", 1);
    b.lock(g_last);
    b.store_global(g_last, b.param(0));
    b.unlock(g_last);
    let v = b.load_global(g_sum);
    let u = b.bin(BinOp::Add, v, b.param(0));
    b.store_global(g_sum, u);
    b.ret(None);
    let h_flush = m.add_function(b.finish());

    let bindings = vec![
        (tick, h_bump, 0),
        (tick, h_stage, 10),
        (digest, h_digest, 0),
        (flush, h_flush, 0),
    ];
    Pipeline {
        module: m,
        tick,
        flush,
        bindings,
    }
}

/// The unconditionally fused twin of the pipeline's module; asserts every
/// superinstruction pattern actually fired so the sweep is meaningful.
fn fused_module(p: &Pipeline) -> Module {
    let mut fused = p.module.clone();
    let records = fuse_module(&mut fused, None, 0);
    for pattern in ["lfold.i", "gfold.i", "gfold", "lstore", "bin.i"] {
        assert!(
            records.iter().any(|r| r.pattern == pattern),
            "workload must exercise the `{pattern}` superinstruction; got {records:?}"
        );
    }
    pdo_ir::verify_module(&fused).expect("fused module must verify");
    assert!(fused.instr_count() < p.module.instr_count());
    fused
}

/// Runs the deterministic workload on `module` (optionally with compiled
/// chains installed) under `policy` and `plan`, and snapshots observables
/// through the shared oracle (`substrate` = the emitted packet stream).
fn run(
    p: &Pipeline,
    module: &Module,
    chains: Option<&Optimization>,
    policy: FaultPolicy,
    plan: &[FaultSpec],
) -> (Observed<Vec<Value>>, Runtime) {
    let mut rt = Runtime::with_config(
        module.clone(),
        RuntimeConfig {
            fault_policy: policy,
            ..Default::default()
        },
    );
    oracle::arm_flight_recorder(&mut rt);
    for &(e, h, order) in &p.bindings {
        rt.bind(e, h, order).expect("bind");
    }
    let emitted = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&emitted);
    rt.bind_native_by_name("emit", move |args| {
        sink.borrow_mut().push(args[0].clone());
        Ok(Value::Unit)
    })
    .expect("bind emit");
    if let Some(opt) = chains {
        opt.install_chains(&mut rt);
    }
    rt.set_trace_config(TraceConfig::full());
    rt.set_fault_injector(FaultInjector::from_plan(plan.iter().copied()));

    for i in 0..TICKS {
        rt.raise(p.tick, RaiseMode::Sync, &[Value::Int(i)])
            .expect("containment policy must not abort a sync raise");
        if i % 5 == 0 {
            rt.raise(p.tick, RaiseMode::Async, &[Value::Int(100 + i)])
                .expect("async raise");
        }
    }
    rt.run_until_idle()
        .expect("containment policy must not abort the drain");

    let packets = emitted.borrow().clone();
    let observed = observe(&mut rt, p.module.globals.len(), packets);
    (observed, rt)
}

/// Profiles the happy path, optimizes, and fuses the appended
/// super-handlers — the same rewrite `AdaptiveEngine::reprofile` applies
/// online — asserting the chain bodies genuinely contain superinstructions.
fn fused_chains(p: &Pipeline) -> Optimization {
    let (_, mut rt) = run(p, &p.module, None, FaultPolicy::Abort, &[]);
    rt.set_trace_config(TraceConfig::full());
    for i in 0..TICKS {
        rt.raise(p.tick, RaiseMode::Sync, &[Value::Int(i)])
            .expect("profiling raise");
    }
    rt.run_until_idle().expect("profiling drain");
    let profile = Profile::from_trace(&rt.take_trace(), 10);
    let mut opts = OptimizeOptions::new(10);
    // Boundary markers make ExhaustFuel trip at the same program points in
    // merged code as in generic dispatch.
    opts.fuel_boundaries = true;
    let mut opt = optimize(&p.module, rt.registry(), &profile, &opts);
    assert!(
        !opt.chains.is_empty(),
        "the pipeline must produce at least one compiled chain"
    );
    let mut records = Vec::new();
    for idx in p.module.functions.len()..opt.module.functions.len() {
        pdo_passes::fuse_function(
            &mut opt.module.functions[idx],
            FuncId::from_index(idx),
            None,
            0,
            &mut records,
        );
    }
    assert!(
        !records.is_empty(),
        "the appended super-handlers must contain fusable sequences"
    );
    pdo_ir::verify_module(&opt.module).expect("fused chains must verify");
    opt
}

/// The capstone property: for any seeded fault plan and either
/// containment policy, the fused program observes exactly what the
/// unfused original observes.
#[test]
fn fused_program_is_observationally_identical_under_faults() {
    let p = pipeline();
    let fused = fused_module(&p);
    let events = [p.tick, p.flush];

    let base = chaos_seed();
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 8, 32);
        for policy in POLICIES {
            let (reference, _) = run(&p, &p.module, None, policy, &case.plan);
            let (observed, _) = run(&p, &fused, None, policy, &case.plan);
            let ctx = CaseContext {
                substrate: "fusion",
                chain_form: "fused",
                policy,
                case: &case,
            };
            assert_equivalent(&ctx, &reference, &observed);
        }
    }
}

#[test]
fn harness_is_meaningful_unfaulted_runs_agree_and_fuse_everything() {
    let p = pipeline();
    let fused = fused_module(&p);
    let (reference, _) = run(&p, &p.module, None, FaultPolicy::SkipEvent, &[]);
    let (observed, rt) = run(&p, &fused, None, FaultPolicy::SkipEvent, &[]);
    assert_eq!(observed, reference);
    // Charge replay: the fused run executes fewer dispatched instructions
    // but charges exactly what the unfused run charges.
    assert!(rt.cost.instrs > 0);
    assert_eq!(
        reference.substrate.len() as i64,
        TICKS + TICKS / 5 + 1,
        "every tick (sync and async) must emit one packet"
    );
}

/// Despecialize-under-fault of a *fused* chain: a trap on the specialized
/// path tears the chain down, and the session's observable behavior stays
/// identical to the never-optimized reference.
#[test]
fn despecialize_removes_fused_chain_but_preserves_behavior() {
    let p = pipeline();
    let opt = fused_chains(&p);
    let plan = [FaultSpec {
        event: p.tick,
        occurrence: 2,
        kind: FaultKind::TrapDispatch,
    }];
    let (reference, _) = run(&p, &p.module, None, FaultPolicy::Despecialize, &plan);
    let (observed, rt) = run(
        &p,
        &opt.module,
        Some(&opt),
        FaultPolicy::Despecialize,
        &plan,
    );
    assert_eq!(observed, reference);
    assert!(
        rt.spec().get(p.tick).is_none(),
        "the faulting fused chain must be removed"
    );
    // The faulted occurrence was still drained (generically): every tick
    // landed in the frame counter.
    assert_eq!(observed.globals[0], Value::Int(TICKS + TICKS / 5 + 1));
    assert_eq!(
        observed.counters.injected_faults, 1,
        "one injected fault recorded"
    );
}
