//! The chaos-conformance oracle (DESIGN.md §11): substrate-independent
//! machinery for checking that an optimized session is observationally
//! identical to the original under a seeded plan of equivalence-safe
//! dispatch faults and a seeded faulty wire.
//!
//! Each chaos suite derives a [`ChaosCase`] per iteration, runs the same
//! deterministic workload on a reference (unoptimized) session and an
//! optimized one, snapshots both with [`observe`] (or [`observe_external`]
//! for sessions driven by a live adaptation engine, which drains the trace
//! and stats every epoch), and compares them with [`assert_equivalent`] —
//! whose failure message carries everything needed to replay the exact
//! case: `CHAOS_SEED=<seed> CHAOS_CASES=1`.

#![allow(dead_code)] // each chaos binary uses a subset of the oracle

use pdo_events::wire::WireFaults;
use pdo_events::{FaultKind, FaultPolicy, FaultSpec, ObservableStats, Runtime};
use pdo_ir::{EventId, GlobalId, Value};
use pdo_obs::trace::{critical_path, render_path};
use pdo_obs::ObsHub;
use std::fmt;

/// Flight-recorder entries appended to a conformance failure (per run).
const FLIGHT_TAIL: usize = 64;

/// Seeded cases per substrate configuration (`CHAOS_CASES`, default 256).
pub fn chaos_cases() -> u64 {
    std::env::var("CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Base seed of the sweep (`CHAOS_SEED`). Case `i` is derived from seed
/// `base + i`, so the seed printed by a failure replays that one case via
/// `CHAOS_SEED=<printed seed> CHAOS_CASES=1`.
pub fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x0BAD_C0DE)
}

/// splitmix64 — the repo's standard deterministic test RNG.
#[derive(Debug, Clone)]
pub struct SplitMix(u64);

impl SplitMix {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix {
        SplitMix(seed)
    }

    /// Next 64 random bits.
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n == 0` yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// One derived chaos case: a seeded faulty wire plus a plan of
/// equivalence-safe dispatch faults keyed on top-level occurrences.
#[derive(Debug, Clone)]
pub struct ChaosCase {
    /// The case's own seed (base seed + case index).
    pub seed: u64,
    /// Wire-level faults (drop/duplicate/reorder/corrupt).
    pub wire: WireFaults,
    /// Dispatch-level fault plan, shared verbatim by both runs.
    pub plan: Vec<FaultSpec>,
}

impl ChaosCase {
    /// Derives the case for `seed`: moderate wire-fault rates and up to
    /// `max_faults` dispatch faults drawn over `events`, each keyed on a
    /// top-level occurrence below `max_occurrence`.
    pub fn derive(
        seed: u64,
        events: &[EventId],
        max_faults: u64,
        max_occurrence: u64,
    ) -> ChaosCase {
        let mut rng = SplitMix::new(seed);
        let wire = WireFaults {
            drop_per_mille: rng.below(250) as u16,
            dup_per_mille: rng.below(250) as u16,
            reorder_per_mille: rng.below(300) as u16,
            corrupt_per_mille: rng.below(250) as u16,
            seed: rng.next(),
        };
        let n = rng.below(max_faults + 1);
        let plan = (0..n)
            .map(|_| {
                let event = events[rng.below(events.len() as u64) as usize];
                let occurrence = rng.below(max_occurrence);
                let kind = match rng.below(5) {
                    0 => FaultKind::TrapDispatch,
                    1 => FaultKind::CorruptArg {
                        index: rng.below(3) as u16,
                    },
                    2 => FaultKind::DropTimed,
                    3 => FaultKind::DelayTimed {
                        extra_ns: 1 + rng.below(5_000),
                    },
                    _ => FaultKind::ExhaustFuel,
                };
                assert!(
                    kind.is_equivalence_safe_with_fuel_boundaries(),
                    "the chaos pool must only contain equivalence-safe kinds"
                );
                FaultSpec {
                    event,
                    occurrence,
                    kind,
                }
            })
            .collect();
        ChaosCase { seed, wire, plan }
    }
}

/// Everything the conformance claim covers: final base-module global
/// state, the recorded fault sequence, the observable robustness
/// counters, and the substrate's own externally visible state (delivered
/// payloads, display state, link statistics, captured errors…).
///
/// The `flight` field is diagnostic only — a rendered tail of the run's
/// flight recorder, carried alongside the snapshot so a divergence report
/// can show *what each run was doing* — and is deliberately excluded from
/// the equality the oracle asserts (the two runs legitimately differ in
/// fast/slow path mix).
#[derive(Debug, Clone)]
pub struct Observed<S> {
    /// Final values of the base module's globals (optimized modules only
    /// append, so indices below the base count line up).
    pub globals: Vec<Value>,
    /// Injected and organic faults in dispatch order.
    pub faults: Vec<(EventId, FaultKind)>,
    /// Observable robustness counters.
    pub counters: ObservableStats,
    /// Substrate-specific external state.
    pub substrate: S,
    /// Rendered flight-recorder tail (diagnostic, not compared).
    pub flight: String,
    /// Rendered critical path of the run's most recent causal trace
    /// (diagnostic, not compared — like `flight`): on divergence it
    /// shows the happens-before chain and latency attribution of the
    /// last thing each run did.
    pub trace_path: String,
}

impl<S: PartialEq> PartialEq for Observed<S> {
    fn eq(&self, other: &Self) -> bool {
        self.globals == other.globals
            && self.faults == other.faults
            && self.counters == other.counters
            && self.substrate == other.substrate
    }
}

fn snapshot_globals(rt: &Runtime, base_globals: usize) -> Vec<Value> {
    (0..base_globals)
        .map(|i| rt.global(GlobalId::from_index(i)).clone())
        .collect()
}

/// Arms a flight recorder and a causal trace store on a freshly built
/// session so divergence reports carry a per-run activity tail and the
/// divergent trace's critical path. Dispatch begin/end tracing is
/// left off: faults, guard misses, and adaptation transitions are the
/// interesting records, and the quiet ring keeps them in the tail.
pub fn arm_flight_recorder(rt: &mut Runtime) -> ObsHub {
    rt.enable_tracing();
    rt.enable_observability()
}

fn flight_tail(rt: &Runtime) -> String {
    match rt.obs() {
        Some(obs) => obs.dump(FLIGHT_TAIL),
        None => String::from("(flight recorder not armed)"),
    }
}

/// Renders the critical path of the most recent trace the runtime's
/// span ring retains — root-first with the attribution footer.
fn trace_path_tail(rt: &Runtime) -> String {
    let Some(store) = rt.tracer() else {
        return String::from("(causal tracing not armed)\n");
    };
    let spans = store.spans();
    let Some(latest) = spans.last().map(|s| s.trace) else {
        return String::from("(no spans retained)\n");
    };
    render_path(&critical_path(&spans, latest))
}

/// Full snapshot of a session that ran with `TraceConfig::full()` and no
/// adaptation engine attached.
pub fn observe<S>(rt: &mut Runtime, base_globals: usize, substrate: S) -> Observed<S> {
    Observed {
        globals: snapshot_globals(rt, base_globals),
        faults: rt.take_trace().fault_sequence(),
        counters: rt.stats().observable(),
        flight: flight_tail(rt),
        trace_path: trace_path_tail(rt),
        substrate,
    }
}

/// External-only snapshot for sessions driven by a live
/// `AdaptiveEngine`: the engine drains the trace and the stats deltas at
/// every epoch boundary, so only externally visible outputs (globals and
/// substrate state) are comparable across sessions.
pub fn observe_external<S>(rt: &Runtime, base_globals: usize, substrate: S) -> Observed<S> {
    Observed {
        globals: snapshot_globals(rt, base_globals),
        faults: Vec::new(),
        counters: ObservableStats::default(),
        flight: flight_tail(rt),
        trace_path: trace_path_tail(rt),
        substrate,
    }
}

/// Identifies one conformance check for the failure report.
#[derive(Debug)]
pub struct CaseContext<'a> {
    /// Substrate name, matching the test binary (`chaos_<substrate>`).
    pub substrate: &'a str,
    /// Chain form under test: `"monolithic"`, `"partitioned"`,
    /// `"adaptive"`, …
    pub chain_form: &'a str,
    /// Containment policy both sessions ran under.
    pub policy: FaultPolicy,
    /// The derived case (seed, wire faults, fault plan).
    pub case: &'a ChaosCase,
}

/// Asserts the optimized session observed exactly what the reference
/// session observed; on divergence, panics with the replaying seed, the
/// full fault plan, and both snapshots.
pub fn assert_equivalent<S: PartialEq + fmt::Debug>(
    ctx: &CaseContext<'_>,
    reference: &Observed<S>,
    optimized: &Observed<S>,
) {
    if reference == optimized {
        return;
    }
    let diverged = if reference.globals != optimized.globals {
        "globals"
    } else if reference.substrate != optimized.substrate {
        "substrate state"
    } else if reference.faults != optimized.faults {
        "fault sequence"
    } else {
        "robustness counters"
    };
    panic!(
        "chaos conformance violated: {} diverged on {} ({}, {:?})\n\
         replay: CHAOS_SEED={} CHAOS_CASES=1 cargo test --test chaos_{}\n\
         reference critical path (latest trace):\n{rp}\
         optimized critical path (latest trace):\n{op}\
         wire faults: {:?}\n\
         fault plan: {:?}\n\
         reference: {:#?}\n\
         optimized: {:#?}\n\
         reference flight recorder (last {n} records):\n{rf}\n\
         optimized flight recorder (last {n} records):\n{of}",
        diverged,
        ctx.substrate,
        ctx.chain_form,
        ctx.policy,
        ctx.case.seed,
        ctx.substrate,
        ctx.case.wire,
        ctx.case.plan,
        reference,
        optimized,
        n = FLIGHT_TAIL,
        rf = reference.flight,
        of = optimized.flight,
        rp = reference.trace_path,
        op = optimized.trace_path,
    );
}

/// Both containment policies the suites sweep.
pub const POLICIES: [FaultPolicy; 2] = [FaultPolicy::SkipEvent, FaultPolicy::Despecialize];

// --- kill-restore machinery (crash-restart equivalence) ------------------

use pdo::{AdaptConfig, AdaptiveEngine, EngineSnapshot};
use pdo_events::{FaultInjector, FaultInjectorState, SchedulerState};
use pdo_ir::Module;
use std::cell::RefCell;
use std::rc::Rc;

/// Complete captured state of a live adaptive session — what survives a
/// crash. Meaningful at an epoch boundary, where the trace window and
/// stats delta have just been drained into the engine's profile, so the
/// capture is exact; substrate link/wire state travels separately (it
/// lives in the endpoint, not the runtime).
pub struct SessionCapture {
    pub globals: Vec<Value>,
    pub clock_ns: u64,
    pub sched: SchedulerState,
    pub injector: Option<FaultInjectorState>,
    pub engine: EngineSnapshot,
}

/// Captures a session: every global, the virtual clock, the scheduler's
/// queue and timer wheel, the remaining dispatch-fault plan (with fired
/// occurrence counts, so restored sessions don't re-fire spent faults),
/// and the adaptation daemon's snapshot.
pub fn capture_session(
    rt: &Runtime,
    n_globals: usize,
    engine: &Rc<RefCell<AdaptiveEngine>>,
) -> SessionCapture {
    SessionCapture {
        globals: (0..n_globals)
            .map(|i| rt.global(GlobalId::from_index(i)).clone())
            .collect(),
        clock_ns: rt.clock_ns(),
        sched: rt.export_sched(),
        injector: rt.fault_injector().map(|f| f.export_state()),
        engine: engine.borrow().snapshot(),
    }
}

/// Rebuilds a freshly constructed session runtime from `cap`, mirroring
/// the server's restore path: globals, scheduler, fault plan, policy,
/// clock (before the epoch hook exists, so the catch-up doesn't fire a
/// burst of stale epochs), then the adaptation daemon from its snapshot
/// — the session resumes specialization instead of cold-starting.
pub fn restore_session(
    rt: &mut Runtime,
    base: Module,
    config: AdaptConfig,
    policy: FaultPolicy,
    cap: SessionCapture,
) -> Rc<RefCell<AdaptiveEngine>> {
    arm_flight_recorder(rt);
    for (i, value) in cap.globals.into_iter().enumerate() {
        rt.set_global(GlobalId::from_index(i), value);
    }
    rt.restore_sched(cap.sched);
    if let Some(state) = cap.injector {
        rt.set_fault_injector(FaultInjector::from_state(state));
    }
    rt.set_fault_policy(policy);
    if cap.clock_ns > 0 {
        rt.advance_clock(cap.clock_ns);
    }
    AdaptiveEngine::attach_restored(rt, base, config, cap.engine)
}
