//! Shared generators for the property-based integration tests.

use pdo_ir::{
    BinOp, Block, BlockId, Function, GlobalId, Instr, Module, Reg, Terminator, UnOp, Value,
};
use proptest::prelude::*;

/// Number of globals declared in generated modules.
pub const GEN_GLOBALS: u16 = 3;

/// A generated instruction template (registers resolved at build time).
#[derive(Debug, Clone)]
pub enum GenInstr {
    ConstInt(u16, i64),
    ConstBool(u16, bool),
    Mov(u16, u16),
    Bin(usize, u16, u16, u16),
    Un(usize, u16, u16),
    Load(u16, u16),
    Store(u16, u16),
    Lock(u16),
    Unlock(u16),
}

/// A generated terminator template.
#[derive(Debug, Clone)]
pub enum GenTerm {
    Ret(Option<u16>),
    /// Jump forward by `1 + offset` blocks (clamped; ret if out of range).
    Jump(u16),
    /// Branch on a register to two forward offsets.
    Branch(u16, u16, u16),
}

/// A generated function: register count, blocks of (instrs, term).
#[derive(Debug, Clone)]
pub struct GenFunction {
    pub params: u16,
    pub regs: u16,
    pub blocks: Vec<(Vec<GenInstr>, GenTerm)>,
}

pub fn gen_instr(regs: u16) -> impl Strategy<Value = GenInstr> {
    let r = 0..regs;
    prop_oneof![
        (r.clone(), -20i64..20).prop_map(|(d, v)| GenInstr::ConstInt(d, v)),
        (r.clone(), any::<bool>()).prop_map(|(d, v)| GenInstr::ConstBool(d, v)),
        (r.clone(), r.clone()).prop_map(|(d, s)| GenInstr::Mov(d, s)),
        (0..BinOp::ALL.len(), r.clone(), r.clone(), r.clone())
            .prop_map(|(op, d, a, b)| GenInstr::Bin(op, d, a, b)),
        (0..UnOp::ALL.len(), r.clone(), r.clone()).prop_map(|(op, d, s)| GenInstr::Un(op, d, s)),
        (r.clone(), 0..GEN_GLOBALS).prop_map(|(d, g)| GenInstr::Load(d, g)),
        (r.clone(), 0..GEN_GLOBALS).prop_map(|(s, g)| GenInstr::Store(s, g)),
        (0..GEN_GLOBALS).prop_map(GenInstr::Lock),
        (0..GEN_GLOBALS).prop_map(GenInstr::Unlock),
    ]
}

pub fn gen_term(regs: u16) -> impl Strategy<Value = GenTerm> {
    prop_oneof![
        prop::option::of(0..regs).prop_map(GenTerm::Ret),
        (0u16..3).prop_map(GenTerm::Jump),
        (0..regs, 0u16..3, 0u16..3).prop_map(|(c, a, b)| GenTerm::Branch(c, a, b)),
    ]
}

pub fn gen_function() -> impl Strategy<Value = GenFunction> {
    (1u16..6, 0u16..3).prop_flat_map(|(extra_regs, params)| {
        let regs = params + extra_regs;
        let block = (prop::collection::vec(gen_instr(regs), 0..8), gen_term(regs));
        prop::collection::vec(block, 1..5).prop_map(move |blocks| GenFunction {
            params,
            regs,
            blocks,
        })
    })
}

/// Materializes a generated function into a module with `GEN_GLOBALS`
/// globals. All control flow is forward-only, so execution terminates.
pub fn build_module(f: &GenFunction) -> Module {
    let mut m = Module::new();
    for g in 0..GEN_GLOBALS {
        m.add_global(format!("g{g}"), Value::Int(0));
    }
    let n_blocks = f.blocks.len();
    let blocks: Vec<Block> = f
        .blocks
        .iter()
        .enumerate()
        .map(|(i, (instrs, term))| {
            let instrs = instrs
                .iter()
                .map(|gi| match *gi {
                    GenInstr::ConstInt(d, v) => Instr::Const {
                        dst: Reg(d),
                        value: Value::Int(v),
                    },
                    GenInstr::ConstBool(d, v) => Instr::Const {
                        dst: Reg(d),
                        value: Value::Bool(v),
                    },
                    GenInstr::Mov(d, s) => Instr::Mov {
                        dst: Reg(d),
                        src: Reg(s),
                    },
                    GenInstr::Bin(op, d, a, b) => Instr::Bin {
                        op: BinOp::ALL[op],
                        dst: Reg(d),
                        lhs: Reg(a),
                        rhs: Reg(b),
                    },
                    GenInstr::Un(op, d, s) => Instr::Un {
                        op: UnOp::ALL[op],
                        dst: Reg(d),
                        src: Reg(s),
                    },
                    GenInstr::Load(d, g) => Instr::LoadGlobal {
                        dst: Reg(d),
                        global: GlobalId(u32::from(g)),
                    },
                    GenInstr::Store(s, g) => Instr::StoreGlobal {
                        global: GlobalId(u32::from(g)),
                        src: Reg(s),
                    },
                    GenInstr::Lock(g) => Instr::Lock {
                        global: GlobalId(u32::from(g)),
                    },
                    GenInstr::Unlock(g) => Instr::Unlock {
                        global: GlobalId(u32::from(g)),
                    },
                })
                .collect();
            let fwd = |off: u16| -> Option<BlockId> {
                let t = i + 1 + usize::from(off);
                (t < n_blocks).then(|| BlockId::from_index(t))
            };
            let term = match *term {
                GenTerm::Ret(r) => Terminator::Ret(r.map(Reg)),
                GenTerm::Jump(off) => match fwd(off) {
                    Some(t) => Terminator::Jump(t),
                    None => Terminator::Ret(None),
                },
                GenTerm::Branch(c, a, b) => match (fwd(a), fwd(b)) {
                    (Some(t), Some(e)) => Terminator::Branch {
                        cond: Reg(c),
                        then_blk: t,
                        else_blk: e,
                    },
                    (Some(t), None) | (None, Some(t)) => Terminator::Jump(t),
                    (None, None) => Terminator::Ret(None),
                },
            };
            Block { instrs, term }
        })
        .collect();
    m.add_function(Function {
        name: "gen".into(),
        params: f.params,
        reg_count: f.regs,
        blocks,
    });
    m
}
