//! Property test: the assembler and disassembler round-trip
//! (`parse(print(m)) == m`) on randomly generated modules.

mod common;

use common::{build_module, gen_function};
use pdo_ir::display::print_module;
use pdo_ir::parse::parse_module;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn print_parse_roundtrip(f in gen_function()) {
        let m = build_module(&f);
        let text = print_module(&m);
        let back = parse_module(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        // The parser recomputes reg_count as max-used + 1, which may be
        // tighter than the generator's allocation; align before comparing.
        let mut m_norm = m;
        for (f1, f2) in m_norm.functions.iter_mut().zip(&back.functions) {
            if f2.reg_count <= f1.reg_count {
                f1.reg_count = f2.reg_count;
            }
        }
        prop_assert_eq!(m_norm, back, "roundtrip diverged; text was:\n{}", text);
    }
}

#[test]
fn roundtrip_of_every_instruction_form() {
    let text = "event A\n\
                global st = int 7\n\
                global buf = bytes 00ff\n\
                native work\n\
                func @all(2) {\n\
                b0:\n\
                  r2 = const int -9\n\
                  r3 = const bool false\n\
                  r4 = const unit\n\
                  r5 = const str \"s\"\n\
                  r6 = const bytes aa\n\
                  r7 = mov r2\n\
                  r8 = add r2, r7\n\
                  r9 = neg r8\n\
                  r10 = load $st\n\
                  store $st, r9\n\
                  lock $st\n\
                  unlock $st\n\
                  r11 = call @all(r2, r3)\n\
                  r12 = native !work(r2)\n\
                  raise sync %A(r2)\n\
                  raise async %A()\n\
                  raise timed %A(r2, r3)\n\
                  r13 = bnew r2\n\
                  r14 = blen r13\n\
                  r15 = bget r13, r2\n\
                  bset r13, r2, r8\n\
                  r16 = bcat r13, r13\n\
                  r17 = bslice r13, r2, r14\n\
                  br r3, b1, b2\n\
                b1:\n\
                  jump b2\n\
                b2:\n\
                  ret r8\n\
                }\n";
    let m = parse_module(text).expect("parse");
    let printed = print_module(&m);
    let back = parse_module(&printed).expect("reparse");
    assert_eq!(m, back, "printed:\n{printed}");
}
