//! Property test: the compiler pass pipeline preserves semantics —
//! result value, faults, and global side effects — on randomly generated
//! IR functions.

mod common;

use common::{build_module, gen_function, GEN_GLOBALS};
use pdo_ir::interp::{call, BasicEnv};
use pdo_ir::{FuncId, GlobalId, Module, Value};
use pdo_passes::PassManager;
use proptest::prelude::*;

/// Runs `gen` in a fresh environment; returns the result (errors reduced
/// to their display string) and the final globals.
fn observe(m: &Module, args: &[Value]) -> (Result<Value, String>, Vec<Value>) {
    let mut env = BasicEnv::new(m);
    env.fuel = Some(100_000);
    let r = call(m, &mut env, FuncId(0), args).map_err(|e| e.to_string());
    let globals = (0..GEN_GLOBALS)
        .map(|g| env.global(GlobalId(u32::from(g))).clone())
        .collect();
    (r, globals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn standard_pipeline_preserves_behaviour(
        f in gen_function(),
        arg_vals in prop::collection::vec(-10i64..10, 0..3),
    ) {
        let original = build_module(&f);
        pdo_ir::verify_module(&original).expect("generated module verifies");

        let mut optimized = original.clone();
        PassManager::standard().run(&mut optimized);
        pdo_ir::verify_module(&optimized).expect("optimized module verifies");

        let args: Vec<Value> = (0..f.params)
            .map(|i| Value::Int(arg_vals.get(usize::from(i)).copied().unwrap_or(1)))
            .collect();

        let before = observe(&original, &args);
        let after = observe(&optimized, &args);
        prop_assert_eq!(&before.1, &after.1, "globals diverged");
        match (&before.0, &after.0) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b, "results diverged"),
            (Err(_), Err(_)) => {} // both fault; fault kinds may be refined
            (a, b) => prop_assert!(false, "fault behaviour diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn pipeline_never_grows_code(f in gen_function()) {
        let original = build_module(&f);
        let mut optimized = original.clone();
        let report = PassManager::standard().run(&mut optimized);
        prop_assert!(report.instrs_after <= report.instrs_before);
    }
}
