//! Cross-crate end-to-end tests: every substrate profiled, optimized, and
//! verified byte-compatible against its unoptimized twin.

use pdo::{optimize, OptimizeOptions};
use pdo_cactus::EventProgram;
use pdo_ctp::{ctp_program, CtpEndpoint, CtpParams, VideoPlayer};
use pdo_events::TraceConfig;
use pdo_profile::Profile;
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_FULL, CONFIG_PAPER};
use pdo_xwin::{x_client_program, XClient};

#[test]
fn seccomm_full_config_roundtrips_after_optimization() {
    let proto = seccomm_protocol();
    let program = proto.instantiate(CONFIG_FULL).expect("full config");
    let keys = Keys::default();

    // Profile using a real endpoint (endpoints own the natives).
    let mut prof_ep = Endpoint::new(&program, &keys).expect("endpoint");
    prof_ep.runtime_mut().set_trace_config(TraceConfig::full());
    let mut wires = Vec::new();
    for i in 0..60u32 {
        wires.push(prof_ep.push(&[i as u8; 200]).expect("push"));
    }
    for w in &wires {
        let _ = prof_ep.pop(w).expect("pop");
    }
    let profile = Profile::from_trace(&prof_ep.runtime_mut().take_trace(), 30);
    let opt = optimize(
        &program.module,
        prof_ep.runtime().registry(),
        &profile,
        &OptimizeOptions::new(30),
    );
    let opt_program = program.with_module(opt.module.clone());

    let mut orig = Endpoint::new(&program, &keys).expect("orig");
    let mut fast = Endpoint::new(&opt_program, &keys).expect("fast");
    opt.install_chains(fast.runtime_mut());
    for len in [0usize, 1, 8, 100, 2000] {
        let msg: Vec<u8> = (0..len).map(|i| (i * 11) as u8).collect();
        let w1 = orig.push(&msg).expect("orig push");
        let w2 = fast.push(&msg).expect("fast push");
        assert_eq!(w1, w2, "wire bytes, len {len}");
        assert_eq!(fast.pop(&w2).expect("fast pop"), msg);
    }
    assert!(fast.runtime().cost.fastpath_hits > 0);

    // Integrity still enforced through the optimized path.
    let mut wire = fast.push(b"x").expect("push");
    let n = wire.len();
    wire[n - 1] ^= 1;
    assert!(fast.pop(&wire).is_err(), "tampering must still be detected");
}

#[test]
fn seccomm_different_configurations_produce_different_wires() {
    let proto = seccomm_protocol();
    let keys = Keys::default();
    let paper = proto.instantiate(CONFIG_PAPER).expect("paper");
    let des_only = proto
        .instantiate(&["Coordinator", "DESPrivacy"])
        .expect("des");
    let mut a = Endpoint::new(&paper, &keys).expect("a");
    let mut b = Endpoint::new(&des_only, &keys).expect("b");
    let wa = a.push(b"same message").expect("push a");
    let wb = b.push(b"same message").expect("push b");
    assert_ne!(wa, wb, "XOR layer must change the wire");
}

#[test]
fn video_player_wire_identical_and_faster_in_abstract_cost() {
    let program = ctp_program();
    let params = CtpParams {
        ack_drop_every: 50,
        clk_period_ns: 40_000_000,
        ..Default::default()
    };

    // Profile.
    let mut e = CtpEndpoint::new(&program, params).expect("endpoint");
    e.open().expect("open");
    e.runtime_mut().set_trace_config(TraceConfig::full());
    let mut player = VideoPlayer::new(e, 25);
    player.play(120).expect("profile session");
    let mut e = player.into_endpoint();
    let profile = Profile::from_trace(&e.runtime_mut().take_trace(), 90);
    let opt = optimize(
        &program.module,
        e.runtime().registry(),
        &profile,
        &OptimizeOptions::new(90),
    );
    assert!(opt.report.events.len() >= 4, "{}", opt.report);
    let opt_program = program.with_module(opt.module.clone());

    let run = |prog: &EventProgram, install: bool| {
        let mut e = CtpEndpoint::new(prog, params).expect("endpoint");
        if install {
            opt.install_chains(e.runtime_mut());
        }
        e.open().expect("open");
        let mut p = VideoPlayer::new(e, 25);
        p.play(120).expect("session");
        let e = p.into_endpoint();
        let wire = e.wire_payload();
        let cost = e.runtime().cost;
        let stats = e.stats();
        (wire, cost, stats)
    };
    let (wire_orig, cost_orig, stats_orig) = run(&program, false);
    let (wire_opt, cost_opt, stats_opt) = run(&opt_program, true);

    assert_eq!(wire_orig, wire_opt, "wire must be byte-identical");
    assert_eq!(stats_orig.segments_sent, stats_opt.segments_sent);
    assert_eq!(stats_orig.retransmissions, stats_opt.retransmissions);
    assert!(cost_opt.weighted_total() < cost_orig.weighted_total());
    assert!(cost_opt.fastpath_hits > 0);
}

#[test]
fn xclient_partitioned_guards_keep_other_segments_fast() {
    let program = x_client_program();
    let mut opts = OptimizeOptions::new(100);
    opts.partitioned = true;

    let mut client = XClient::new(&program).expect("client");
    client.runtime_mut().set_trace_config(TraceConfig::full());
    for i in 0..250 {
        client.popup(i, i).expect("popup");
        client.scroll(i).expect("scroll");
    }
    let profile = Profile::from_trace(&client.runtime_mut().take_trace(), 100);
    let opt = optimize(
        &program.module,
        client.runtime().registry(),
        &profile,
        &opts,
    );
    let opt_program = program.with_module(opt.module.clone());

    let mut fast = XClient::new(&opt_program).expect("fast client");
    opt.install_chains(fast.runtime_mut());

    // Unbind one popup motion callback: under partitioned guards only that
    // segment degrades; head chains still hit the fast path.
    let cb_event = opt_program
        .module
        .event_by_name("PopupMotionCallback")
        .expect("event");
    let cb2 = opt_program
        .module
        .function_by_name("popup_track_cb2")
        .expect("handler");
    fast.runtime_mut().unbind(cb_event, cb2);

    fast.popup(9, 9).expect("popup");
    assert_eq!(fast.state().menus_placed, 1);
    assert_eq!(fast.state().motion_tracks, 1, "one callback remains");
    assert!(
        fast.runtime().cost.fastpath_hits >= 1,
        "head chain still specialized: {:?}",
        fast.runtime().cost
    );
}

#[test]
fn profiles_survive_json_roundtrip_and_still_optimize() {
    let program = x_client_program();
    let mut client = XClient::new(&program).expect("client");
    client.runtime_mut().set_trace_config(TraceConfig::full());
    for i in 0..150 {
        client.scroll(i).expect("scroll");
    }
    let profile = Profile::from_trace(&client.runtime_mut().take_trace(), 100);

    let path = std::env::temp_dir().join(format!("pdo-e2e-{}.json", std::process::id()));
    pdo_profile::save_profile(&profile, &path).expect("save");
    let reloaded = pdo_profile::load_profile(&path).expect("load");
    let _ = std::fs::remove_file(&path);
    assert_eq!(profile, reloaded);

    let opt = optimize(
        &program.module,
        client.runtime().registry(),
        &reloaded,
        &OptimizeOptions::new(100),
    );
    assert!(!opt.report.events.is_empty());
}
