//! Cross-crate runtime-semantics tests: virtual-time ordering, queue
//! fairness, guard arity rules, chain lifecycle, and reserved natives.

use pdo_events::{CompiledChain, Guard, Runtime, RuntimeConfig, RuntimeError, TraceConfig};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};

/// A module whose single handler appends its event's tag digit to a
/// base-10 log global, so dispatch order is observable.
fn logger_module(events: usize) -> (Module, Vec<EventId>, pdo_ir::GlobalId, Vec<FuncId>) {
    let mut m = Module::new();
    let ids: Vec<EventId> = (0..events).map(|i| m.add_event(format!("E{i}"))).collect();
    let g = m.add_global("log", Value::Int(0));
    let funcs: Vec<FuncId> = (0..events)
        .map(|i| {
            let mut b = FunctionBuilder::new(format!("h{i}"), 0);
            let v = b.load_global(g);
            let ten = b.const_int(10);
            let s = b.bin(BinOp::Mul, v, ten);
            let d = b.const_int(i as i64 + 1);
            let o = b.bin(BinOp::Add, s, d);
            b.store_global(g, o);
            b.ret(None);
            m.add_function(b.finish())
        })
        .collect();
    (m, ids, g, funcs)
}

fn setup(events: usize) -> (Runtime, Vec<EventId>, pdo_ir::GlobalId, Vec<FuncId>) {
    let (m, ids, g, funcs) = logger_module(events);
    let mut rt = Runtime::new(m);
    for (e, f) in ids.iter().zip(&funcs) {
        rt.bind(*e, *f, 0).expect("bind");
    }
    (rt, ids, g, funcs)
}

#[test]
fn timers_fire_in_deadline_order_regardless_of_submission() {
    let (mut rt, ids, g, _) = setup(3);
    // Submit out of order: deadlines 300, 100, 200 for events 0, 1, 2.
    rt.raise(ids[0], RaiseMode::Timed, &[Value::Int(300)])
        .unwrap();
    rt.raise(ids[1], RaiseMode::Timed, &[Value::Int(100)])
        .unwrap();
    rt.raise(ids[2], RaiseMode::Timed, &[Value::Int(200)])
        .unwrap();
    rt.run_until_idle().unwrap();
    // Order: E1 (digit 2), E2 (digit 3), E0 (digit 1).
    assert_eq!(rt.global(g), &Value::Int(231));
    assert_eq!(rt.clock_ns(), 300);
}

#[test]
fn async_queue_drains_before_timers_advance_clock() {
    let (mut rt, ids, g, _) = setup(3);
    rt.raise(ids[0], RaiseMode::Timed, &[Value::Int(50)])
        .unwrap();
    rt.raise(ids[1], RaiseMode::Async, &[]).unwrap();
    rt.raise(ids[2], RaiseMode::Async, &[]).unwrap();
    rt.run_until_idle().unwrap();
    // Async events (digits 2 then 3) run before the clock advances to the
    // timer (digit 1).
    assert_eq!(rt.global(g), &Value::Int(231));
}

#[test]
fn run_until_leaves_future_timers_pending() {
    let (mut rt, ids, _, _) = setup(2);
    rt.raise(ids[0], RaiseMode::Timed, &[Value::Int(100)])
        .unwrap();
    rt.raise(ids[1], RaiseMode::Timed, &[Value::Int(10_000)])
        .unwrap();
    let steps = rt.run_until(1000).unwrap();
    assert_eq!(steps, 1);
    assert_eq!(rt.pending(), 1);
}

#[test]
fn chain_with_wrong_arity_never_fires() {
    let (mut rt, ids, g, funcs) = setup(1);
    rt.install_chain(CompiledChain {
        head: ids[0],
        guards: vec![Guard {
            event: ids[0],
            version: rt.registry().version(ids[0]),
        }],
        func: funcs[0],
        params: 3, // wrong: handler takes 0
        partitioned: false,
    });
    rt.raise(ids[0], RaiseMode::Sync, &[]).unwrap();
    // Fast path skipped (arity mismatch counts as a miss), generic ran.
    assert_eq!(rt.cost.fastpath_hits, 0);
    assert_eq!(rt.global(g), &Value::Int(1));
}

#[test]
fn removing_a_chain_restores_generic_dispatch() {
    let (mut rt, ids, g, funcs) = setup(1);
    rt.install_chain(CompiledChain {
        head: ids[0],
        guards: vec![Guard {
            event: ids[0],
            version: rt.registry().version(ids[0]),
        }],
        func: funcs[0],
        params: 0,
        partitioned: false,
    });
    rt.raise(ids[0], RaiseMode::Sync, &[]).unwrap();
    assert_eq!(rt.cost.fastpath_hits, 1);
    assert!(rt.remove_chain(ids[0]).is_some());
    rt.raise(ids[0], RaiseMode::Sync, &[]).unwrap();
    assert_eq!(rt.cost.fastpath_hits, 1);
    assert_eq!(rt.cost.registry_lookups, 1);
    assert_eq!(rt.global(g), &Value::Int(11));
}

#[test]
fn cancel_timer_native_cancels_pending_events() {
    let mut m = Module::new();
    let tick = m.add_event("Tick");
    let cancel = m.add_event("Cancel");
    let g = m.add_global("fired", Value::Int(0));
    let n_cancel = m.add_native(Runtime::NATIVE_CANCEL_TIMER);

    let mut b = FunctionBuilder::new("on_tick", 0);
    let v = b.load_global(g);
    let one = b.const_int(1);
    let s = b.bin(BinOp::Add, v, one);
    b.store_global(g, s);
    b.ret(None);
    let on_tick = m.add_function(b.finish());

    let mut b = FunctionBuilder::new("on_cancel", 0);
    let ev = b.const_int(i64::from(tick.0));
    let n = b.call_native(n_cancel, &[ev]);
    b.ret(Some(n));
    let on_cancel = m.add_function(b.finish());

    let mut rt = Runtime::new(m);
    rt.bind(tick, on_tick, 0).unwrap();
    rt.bind(cancel, on_cancel, 0).unwrap();
    rt.raise(tick, RaiseMode::Timed, &[Value::Int(100)])
        .unwrap();
    rt.raise(tick, RaiseMode::Timed, &[Value::Int(200)])
        .unwrap();
    rt.raise(cancel, RaiseMode::Sync, &[]).unwrap();
    rt.run_until_idle().unwrap();
    assert_eq!(rt.global(g), &Value::Int(0), "both timers cancelled");
}

#[test]
fn step_budget_applies_per_run_call() {
    let (rt_probe, ids_probe, _, _) = setup(1);
    drop((rt_probe.pending(), ids_probe)); // silence unused

    let (m, ids, _, funcs) = logger_module(1);
    let mut rt = Runtime::with_config(
        m,
        RuntimeConfig {
            max_steps: 3,
            ..Default::default()
        },
    );
    rt.bind(ids[0], funcs[0], 0).unwrap();
    for _ in 0..3 {
        rt.raise(ids[0], RaiseMode::Async, &[]).unwrap();
    }
    assert_eq!(rt.run_until_idle(), Ok(3));
    for _ in 0..4 {
        rt.raise(ids[0], RaiseMode::Async, &[]).unwrap();
    }
    assert_eq!(rt.run_until_idle(), Err(RuntimeError::StepLimit));
}

#[test]
fn tracing_depth_reflects_sync_nesting() {
    // E0's handler raises E1 sync; E1's raise record must carry depth 1.
    let mut m = Module::new();
    let e0 = m.add_event("E0");
    let e1 = m.add_event("E1");
    let mut b = FunctionBuilder::new("h0", 0);
    b.raise(e1, RaiseMode::Sync, &[]);
    b.ret(None);
    let h0 = m.add_function(b.finish());
    let mut b = FunctionBuilder::new("h1", 0);
    b.ret(None);
    let h1 = m.add_function(b.finish());

    let mut rt = Runtime::new(m);
    rt.bind(e0, h0, 0).unwrap();
    rt.bind(e1, h1, 0).unwrap();
    rt.set_trace_config(TraceConfig::events_only());
    rt.raise(e0, RaiseMode::Sync, &[]).unwrap();
    let depths: Vec<u32> = rt
        .take_trace()
        .records
        .iter()
        .filter_map(|r| match r {
            pdo_events::TraceRecord::Raise { depth, .. } => Some(*depth),
            _ => None,
        })
        .collect();
    assert_eq!(depths, vec![0, 1]);
}

#[test]
fn fuel_budget_is_shared_across_dispatches() {
    let (m, ids, _, funcs) = logger_module(1);
    let mut rt = Runtime::with_config(
        m,
        RuntimeConfig {
            fuel: Some(40),
            ..Default::default()
        },
    );
    rt.bind(ids[0], funcs[0], 0).unwrap();
    // Each dispatch costs ~7 instructions; the 40-instruction budget
    // admits a handful of dispatches, then faults.
    let mut failures = 0;
    for _ in 0..20 {
        if rt.raise(ids[0], RaiseMode::Sync, &[]).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "fuel must eventually exhaust");
}
