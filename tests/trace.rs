//! Causal trace graphs end to end (DESIGN.md §16): every external
//! stimulus mints a trace, every derived action records a span with a
//! parent edge, and the resulting happens-before DAG crosses every
//! layer — ingress front door, runtime dispatch, adaptive engine, and
//! the protocol wire — under one `TraceId`. The acceptance bar is a
//! live 3-session server behind a real TCP ingress whose wire-level
//! `TraceDump` shows all four layers linked in one trace, in both the
//! line format and valid Chrome trace-event JSON.

use pdo::AdaptConfig;
use pdo_events::Runtime;
use pdo_ingress::{
    Client, Ingress, IngressConfig, OpenKind, Reply, TraceFormat, TraceSelector, WireMode,
};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_obs::trace::{
    attribute, critical_path, parse_lines, render_path, trace_ids, DispatchSrc, Span, SpanKind,
};
use pdo_seccomm::{seccomm_protocol, CONFIG_FULL};
use pdo_server::{Server, ServerConfig};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One event, two additive handlers — each dispatch is observable in a
/// global and cheap enough to hammer.
fn counter_module() -> (Module, EventId, Vec<(EventId, FuncId, i32)>) {
    let mut m = Module::new();
    let e = m.add_event("tick");
    let g = m.add_global("acc", Value::Int(0));
    for (name, d) in [("h1", 1i64), ("h2", 2)] {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        m.add_function(fb.finish());
    }
    let binds = vec![
        (e, m.function_by_name("h1").unwrap(), 0),
        (e, m.function_by_name("h2").unwrap(), 1),
    ];
    (m, e, binds)
}

fn traced_runtime() -> (Runtime, EventId, pdo_obs::trace::TraceStore) {
    let (m, e, binds) = counter_module();
    let mut rt = Runtime::new(m);
    for (ev, f, o) in binds {
        rt.bind(ev, f, o).unwrap();
    }
    let store = rt.enable_tracing();
    (rt, e, store)
}

/// A top-level sync raise is one trace with one span: the dispatch
/// itself, rooting the trace (a sync raise IS its dispatch — no
/// separate raise span, so the hot path stays at one ring write).
#[test]
fn sync_raise_roots_a_trace_with_its_dispatch_span() {
    let (mut rt, e, store) = traced_runtime();
    rt.raise(e, RaiseMode::Sync, &[]).unwrap();

    let spans = store.spans();
    assert!(
        !spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::Raise { .. })),
        "sync raises record no separate raise span: {spans:?}"
    );
    let disp = spans
        .iter()
        .find(|s| matches!(s.kind, SpanKind::Dispatch { .. }))
        .expect("dispatch span recorded");
    assert_eq!(disp.parent, None, "external stimulus roots the trace");
    assert!(matches!(
        disp.kind,
        SpanKind::Dispatch {
            event,
            src: DispatchSrc::Sync,
            queued_ns: 0,
            ..
        } if event == e.0
    ));
}

/// Async and timed raises record the scheduling wait: the dispatch span
/// stays parented to the raise that enqueued it, and a timed dispatch
/// carries the virtual-clock delay as `queued_ns`.
#[test]
fn queued_and_timed_dispatches_carry_wait_and_parent() {
    let (mut rt, e, store) = traced_runtime();
    rt.raise(e, RaiseMode::Async, &[]).unwrap();
    rt.raise(e, RaiseMode::Timed, &[Value::Int(5_000)]).unwrap();
    rt.run_until_idle().unwrap();

    let spans = store.spans();
    let raises: Vec<&Span> = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Raise { .. }))
        .collect();
    let dispatches: Vec<&Span> = spans
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Dispatch { .. }))
        .collect();
    assert_eq!(raises.len(), 2);
    assert_eq!(dispatches.len(), 2);
    assert_ne!(
        raises[0].trace, raises[1].trace,
        "each external stimulus mints its own trace"
    );

    for d in &dispatches {
        let parent_raise = raises
            .iter()
            .find(|r| Some(r.id) == d.parent)
            .expect("dispatch parented to the raise that enqueued it");
        assert_eq!(d.trace, parent_raise.trace);
    }
    let timed = dispatches
        .iter()
        .find(|d| {
            matches!(
                d.kind,
                SpanKind::Dispatch {
                    src: DispatchSrc::Timer,
                    ..
                }
            )
        })
        .expect("timer-sourced dispatch");
    assert!(matches!(
        timed.kind,
        SpanKind::Dispatch {
            queued_ns: 5_000,
            ..
        }
    ));
    assert!(dispatches.iter().any(|d| matches!(
        d.kind,
        SpanKind::Dispatch {
            src: DispatchSrc::Queue,
            ..
        }
    )));
}

/// Minimal structural validation of Chrome trace-event JSON without a
/// JSON parser: balanced braces/brackets outside string literals.
fn json_is_balanced(s: &str) -> bool {
    let (mut depth_obj, mut depth_arr) = (0i64, 0i64);
    let mut in_str = false;
    let mut esc = false;
    for c in s.chars() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => depth_obj += 1,
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return false;
        }
    }
    depth_obj == 0 && depth_arr == 0 && !in_str
}

/// The tentpole acceptance test: a live 3-session server (plain, CTP,
/// SecComm) behind a TCP ingress. Sync raises on the SecComm session
/// push frames through `net_send` (wire spans), the ingress epoch cadence
/// drives the adaptive engine hard enough to reprofile (audit spans),
/// and the wire-level `TraceDump` must show one `TraceId` whose spans
/// cover ingress, runtime, adapt, and wire — in the line format and as
/// valid Chrome trace-event JSON.
#[test]
fn one_trace_links_ingress_runtime_adapt_and_wire() {
    let server = Server::new(ServerConfig {
        shards: 2,
        threads: 2,
        adapt: AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 16,
            opts: pdo::OptimizeOptions::new(10),
            ..Default::default()
        },
        ..Default::default()
    });
    let ingress = Ingress::bind(
        IngressConfig {
            // Epoch every few requests so adaptation (and its audit
            // spans) interleaves with the traced raises.
            epoch_every: 4,
            ..IngressConfig::default()
        },
        server.shards(),
    )
    .unwrap();
    let addr = ingress.tcp_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let client_stop = Arc::clone(&stop);
    let client = std::thread::spawn(move || {
        let mut c = Client::connect_tcp(addr).unwrap();
        let (m, e, binds) = counter_module();
        let plain = c
            .open(OpenKind::Plain {
                module: m,
                bindings: binds.iter().map(|&(ev, f, o)| (ev.0, f.0, o)).collect(),
            })
            .unwrap();
        let ctp = c.open(OpenKind::Ctp).unwrap();
        let sec = c.open(OpenKind::SecComm).unwrap();

        // The canonical SecComm program is deterministic: instantiate it
        // locally to resolve the user-facing event id.
        let sec_module = seccomm_protocol().instantiate(CONFIG_FULL).unwrap();
        let msg = sec_module.module.event_by_name("msgFromUser").unwrap();

        // Sync raises cascade through the outbound SecComm chain to
        // `net_send` — every one moves a frame, so every trace gets a
        // wire span. Interleave plain raises so a second session adapts.
        for round in 0..8u64 {
            for i in 0..8u64 {
                let payload = vec![(round * 8 + i) as u8; 24];
                let reply = c
                    .raise(sec, msg.0, WireMode::Sync, vec![Value::bytes(payload)])
                    .unwrap();
                assert_eq!(reply, Reply::Done, "seccomm raise dispatches");
            }
            assert_eq!(
                c.raise(plain, e.0, WireMode::Sync, vec![]).unwrap(),
                Reply::Done
            );
        }

        let metrics = c.scrape_metrics().unwrap();
        let lines = c
            .trace_dump(TraceSelector::LastN(64), TraceFormat::Lines)
            .unwrap();

        // Pick a trace covering all four layers from the line dump, then
        // pull the same trace as Chrome JSON.
        let spans = parse_lines(&lines);
        let full = trace_ids(&spans)
            .into_iter()
            .find(|t| {
                let layers: BTreeSet<&str> = spans
                    .iter()
                    .filter(|s| s.trace == *t)
                    .map(|s| s.kind.layer())
                    .collect();
                ["ingress", "runtime", "adapt", "wire"]
                    .iter()
                    .all(|l| layers.contains(l))
            })
            .expect("one trace must link ingress, runtime, adapt, and wire spans");
        let chrome = c
            .trace_dump(TraceSelector::Id(full.0), TraceFormat::Chrome)
            .unwrap();

        assert!(c.close(sec).unwrap());
        assert!(c.close(ctp).unwrap());
        assert!(c.close(plain).unwrap());
        client_stop.store(true, Ordering::SeqCst);
        (metrics, lines, full, chrome)
    });

    let mut server = server;
    let mut ingress = ingress;
    ingress
        .serve(&mut server, &stop)
        .expect("engine loop must not fail");
    let (metrics, lines, full, chrome) = client.join().unwrap();

    // The scrape is the whole deployment: server layers plus the front
    // door's own series in one exposition.
    assert!(metrics.contains("pdo_server_sessions"), "{metrics}");
    assert!(metrics.contains("pdo_ingress_admitted_total"), "{metrics}");
    assert!(
        metrics.contains("pdo_seccomm_frames_sent_total")
            || metrics.contains("pdo_dispatch_latency_ns")
    );

    // Line dump: re-parse and pin the four-layer trace's shape.
    let spans = parse_lines(&lines);
    let trace: Vec<&Span> = spans.iter().filter(|s| s.trace == full).collect();
    let root = trace
        .iter()
        .find(|s| s.parent.is_none())
        .expect("trace has a root");
    assert!(
        matches!(&root.kind, SpanKind::Ingress { request, .. } if request == "raise"),
        "wire-originated traces root at the ingress raise span: {root:?}"
    );
    let audit = trace
        .iter()
        .find(|s| matches!(s.kind, SpanKind::ChainAudit { .. }))
        .expect("adaptive engine audit joined the trace");
    if let SpanKind::ChainAudit { why, .. } = &audit.kind {
        assert!(
            why.contains("fresh_events="),
            "audit spans carry profile evidence, got {why:?}"
        );
    }
    assert!(
        trace
            .iter()
            .any(|s| matches!(&s.kind, SpanKind::Wire { proto, frames, .. }
                if proto == "seccomm" && *frames > 0)),
        "the raise's frames attribute to its trace"
    );

    // Every non-root parent edge resolves within the same trace: the
    // dump is a well-formed happens-before DAG, so the analyzer can walk
    // a critical path and attribute its latency.
    let ids: BTreeSet<u64> = trace.iter().map(|s| s.id.0).collect();
    for s in &trace {
        if let Some(p) = s.parent {
            assert!(ids.contains(&p.0), "dangling parent edge: {s:?}");
        }
    }
    let owned: Vec<Span> = trace.iter().map(|s| (*s).clone()).collect();
    let path = critical_path(&owned, full);
    assert!(!path.is_empty());
    assert_eq!(path[0].parent, None, "critical path starts at the root");
    let attr = attribute(&path);
    let rendered = render_path(&path);
    assert_eq!(
        rendered.lines().count(),
        path.len() + 1,
        "one line per span plus the attribution footer:\n{rendered}"
    );
    assert!(
        rendered.contains(&format!("total={}ns", attr.total_ns())),
        "footer totals the attribution:\n{rendered}"
    );

    // Chrome export: structurally valid JSON, one complete event per
    // span, with all four layers as `tid` lanes under one `pid`.
    assert!(chrome.starts_with("{\"traceEvents\":["), "{chrome}");
    assert!(json_is_balanced(&chrome), "unbalanced JSON:\n{chrome}");
    let events = chrome.matches("\"ph\":\"X\"").count();
    assert!(
        events >= trace.len(),
        "chrome dump has at least the line dump's spans ({events} < {})",
        trace.len()
    );
    assert_eq!(
        chrome.matches(&format!("\"pid\":{}", full.0)).count(),
        events,
        "a single-trace dump renders as one process group"
    );
    for layer in ["ingress", "runtime", "adapt", "wire"] {
        assert!(
            chrome.contains(&format!("\"tid\":\"{layer}\"")),
            "layer {layer} missing from chrome export:\n{chrome}"
        );
    }
}
