//! Crash-restart conformance (DESIGN.md §14): killing a session at an
//! epoch boundary and restoring it from its snapshot must be invisible
//! in every external observable. For each seeded chaos case, a straight
//! run is compared against (a) a run restored from a snapshot at *every*
//! epoch boundary and (b) a run that crashes at a seeded mid-epoch
//! point, discards the partial work, and resumes from the last boundary
//! snapshot. Live adaptation engines ride along through every kill:
//! their profile, duty-cycle position, and quarantine state are carried,
//! so restored sessions resume specialization.
//!
//! Three substrates: plain sessions through the real `Server` durable
//! image (`snapshot_to_bytes` → new process → `restore_from_bytes`), CTP
//! endpoints (link state is endpoint-internal, so crash-discard-replay
//! is sound), and SecComm endpoint pairs over a persistent
//! `LossyChannel` (the channel is the outside world — it survives the
//! crash while both endpoints rebuild, so no mid-epoch sweep there:
//! bytes already on the wire cannot be un-sent).
//!
//! Comparisons are external-only (globals + substrate state): dispatch
//! cost counters and the live trace die with the process by design.

#[path = "common/oracle.rs"]
mod oracle;

use oracle::{
    arm_flight_recorder, assert_equivalent, capture_session, chaos_cases, chaos_seed,
    observe_external, restore_session, CaseContext, ChaosCase, Observed, SplitMix, POLICIES,
};
use pdo::{AdaptConfig, AdaptiveEngine, OptimizeOptions};
use pdo_cactus::EventProgram;
use pdo_ctp::{ctp_program, CtpEndpoint, CtpParams};
use pdo_events::wire::WireStats;
use pdo_events::{FaultInjector, FaultPolicy, RuntimeConfig};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, LossyChannel, CONFIG_FULL};
use pdo_server::{Server, ServerConfig, SessionId};
use std::cell::RefCell;
use std::rc::Rc;

type Engine = Rc<RefCell<AdaptiveEngine>>;

/// When (if ever) the run kills and restores its sessions.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Restart {
    /// Uninterrupted reference run.
    Straight,
    /// Snapshot + kill + restore at every segment boundary (segments are
    /// epoch-aligned).
    Boundaries,
    /// Run segment `seg` partway to a mid-epoch point, crash, discard
    /// the partial work, restore the boundary snapshot, and replay.
    Crash { seg: usize, partial_ns: u64 },
}

// --- plain sessions through the Server's durable image -------------------

const SEGMENTS: usize = 4;
const SEG_NS: u64 = 5_000; // five 1 000 ns adaptation epochs per segment

/// Two independent events; handler `k` of each adds `k` to its event's
/// accumulator.
fn two_chain_module() -> (Module, [EventId; 2]) {
    let mut m = Module::new();
    let a = m.add_event("A");
    let b = m.add_event("B");
    let ga = m.add_global("acc_a", Value::Int(0));
    let gb = m.add_global("acc_b", Value::Int(0));
    let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId, d: i64| {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        m.add_function(fb.finish())
    };
    adder(&mut m, "a1", ga, 1);
    adder(&mut m, "a2", ga, 2);
    adder(&mut m, "b1", gb, 1);
    adder(&mut m, "b2", gb, 2);
    (m, [a, b])
}

fn bindings(m: &Module, a: EventId, b: EventId) -> Vec<(EventId, FuncId, i32)> {
    vec![
        (a, m.function_by_name("a1").unwrap(), 0),
        (a, m.function_by_name("a2").unwrap(), 1),
        (b, m.function_by_name("b1").unwrap(), 0),
        (b, m.function_by_name("b2").unwrap(), 1),
    ]
}

fn server_adapt() -> AdaptConfig {
    let mut opts = OptimizeOptions::new(10);
    opts.fuel_boundaries = true;
    AdaptConfig {
        epoch_ns: 1_000,
        min_fresh_events: 20,
        opts,
        trace_sleep_epochs: 1,
        ..AdaptConfig::default()
    }
}

/// One timed raise: (session index, event, delay). Delays may exceed the
/// segment, leaving timers outstanding at the boundary — the snapshot
/// carries them.
type Raise = (usize, EventId, u64);

/// Seeded workload: per segment, a burst of timed raises plus (on odd
/// draws) one async raise submitted *after* the drain, so it sits in the
/// FIFO across the snapshot.
fn server_workload(seed: u64, events: [EventId; 2]) -> Vec<(Vec<Raise>, bool)> {
    let mut rng = SplitMix::new(seed ^ 0x09E5_7A97);
    (0..SEGMENTS)
        .map(|_| {
            let n = 4 + rng.below(8);
            let raises = (0..n)
                .map(|_| {
                    (
                        rng.below(2) as usize,
                        events[rng.below(2) as usize],
                        1 + rng.below(2 * SEG_NS),
                    )
                })
                .collect();
            (raises, rng.below(2) == 1)
        })
        .collect()
}

/// Runs the seeded workload on a two-session server under `restart` and
/// returns each session's final globals.
fn run_server(
    m: &Module,
    events: [EventId; 2],
    case: &ChaosCase,
    policy: FaultPolicy,
    workload: &[(Vec<Raise>, bool)],
    restart: Restart,
) -> Vec<Vec<Value>> {
    let config = || ServerConfig {
        shards: 2,
        adapt: server_adapt(),
        ..Default::default()
    };
    let mut server = Server::new(config());
    let binds = bindings(m, events[0], events[1]);
    let rt_config = RuntimeConfig {
        fault_policy: policy,
        ..RuntimeConfig::default()
    };
    let ids: Vec<SessionId> = (0..2)
        .map(|_| server.open_session(m.clone(), rt_config, &binds).unwrap())
        .collect();
    // Each session gets the full dispatch-fault plan; the injector's
    // fired-occurrence counts travel inside the durable image.
    for &id in &ids {
        let plan = case.plan.clone();
        server
            .with_runtime(id, move |rt| {
                rt.set_fault_injector(FaultInjector::from_plan(plan));
            })
            .unwrap();
    }

    let submit_segment = |server: &mut Server, ids: &[SessionId], raises: &[Raise]| {
        for &(who, event, delay) in raises {
            server.submit(ids[who], event, delay, &[]).unwrap();
        }
    };
    let kill_restore = |server: Server, bytes: &[u8]| -> Server {
        drop(server); // the crash
        let mut revived = Server::new(config());
        revived.restore_from_bytes(bytes).expect("image restores");
        revived
    };

    for (s, (raises, async_tail)) in workload.iter().enumerate() {
        if let Restart::Crash { seg, partial_ns } = restart {
            if seg == s {
                let bytes = server.snapshot_to_bytes();
                // Doomed partial replay of this segment: everything it
                // does dies with the process.
                submit_segment(&mut server, &ids, raises);
                server.run_until(s as u64 * SEG_NS + partial_ns).unwrap();
                server = kill_restore(server, &bytes);
            }
        }
        submit_segment(&mut server, &ids, raises);
        server.run_until((s as u64 + 1) * SEG_NS).unwrap();
        if *async_tail {
            let event = events[0];
            server
                .with_runtime(ids[0], move |rt| {
                    rt.raise(event, RaiseMode::Async, &[]).unwrap();
                })
                .unwrap();
        }
        if restart == Restart::Boundaries {
            let bytes = server.snapshot_to_bytes();
            server = kill_restore(server, &bytes);
        }
    }
    // Final settle: drain trailing timers and the queued async raises.
    server
        .run_until(SEGMENTS as u64 * SEG_NS + 3 * SEG_NS)
        .unwrap();

    let n_globals = m.globals.len();
    ids.iter()
        .map(|&id| {
            server
                .with_runtime(id, move |rt| {
                    (0..n_globals)
                        .map(|i| rt.global(pdo_ir::GlobalId::from_index(i)).clone())
                        .collect::<Vec<Value>>()
                })
                .unwrap()
        })
        .collect()
}

#[test]
fn server_crash_restart_is_invisible_to_plain_sessions() {
    let (m, events) = two_chain_module();
    let base = chaos_seed() ^ 0x0D1E_0F5E;
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 4, 40);
        let workload = server_workload(case.seed, events);
        let mut crash_rng = SplitMix::new(case.seed ^ 0x000C_4A54);
        let crash = Restart::Crash {
            seg: crash_rng.below(SEGMENTS as u64) as usize,
            partial_ns: 1 + crash_rng.below(SEG_NS - 2),
        };
        for policy in POLICIES {
            let straight = run_server(&m, events, &case, policy, &workload, Restart::Straight);
            let boundaries = run_server(&m, events, &case, policy, &workload, Restart::Boundaries);
            assert_eq!(
                straight, boundaries,
                "restore-at-every-boundary diverged ({policy:?})\n\
                 replay: CHAOS_SEED={} CHAOS_CASES=1 cargo test --test chaos_restart",
                case.seed
            );
            let crashed = run_server(&m, events, &case, policy, &workload, crash);
            assert_eq!(
                straight, crashed,
                "mid-epoch crash sweep diverged ({policy:?}, {crash:?})\n\
                 replay: CHAOS_SEED={} CHAOS_CASES=1 cargo test --test chaos_restart",
                case.seed
            );
        }
    }
}

// --- CTP endpoints --------------------------------------------------------

const CTP_MESSAGES: usize = 5;
const CTP_STEP_NS: u64 = 60_000_000;

/// Epochs aligned with the per-message deadlines, so every boundary
/// restore happens with a drained trace window; the duty cycle exercises
/// the carried `sleep_remaining` counter across kills.
fn ctp_adapt() -> AdaptConfig {
    let mut opts = OptimizeOptions::new(8);
    opts.fuel_boundaries = true;
    AdaptConfig {
        epoch_ns: CTP_STEP_NS,
        min_fresh_events: 16,
        opts,
        trace_sleep_epochs: 1,
        ..AdaptConfig::default()
    }
}

#[derive(Debug, Clone, PartialEq)]
struct CtpObs {
    delivered: Vec<u8>,
    stats: pdo_ctp::CtpStats,
    error: Option<String>,
}

fn ctp_fault_events(program: &EventProgram) -> Vec<EventId> {
    [
        "SendMsg",
        "SegmentAcked",
        "SegmentTimeout",
        "ControllerClkL",
    ]
    .iter()
    .map(|name| program.module.event_by_name(name).expect("CTP event"))
    .collect()
}

fn ctp_payloads(case_seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SplitMix::new(case_seed ^ 0x7A71_0AD5);
    (0..CTP_MESSAGES)
        .map(|_| {
            let len = 1 + rng.below(300) as usize;
            (0..len).map(|_| rng.below(256) as u8).collect()
        })
        .collect()
}

/// What a CTP crash preserves: the runtime/engine capture plus the
/// endpoint-internal link state (unacked segments, in-flight wire,
/// retry ledger, receiver reassembly).
struct CtpCapture {
    cap: oracle::SessionCapture,
    link: pdo_ctp::CtpLinkState,
}

fn capture_ctp(e: &CtpEndpoint, engine: &Engine, prog: &EventProgram) -> CtpCapture {
    CtpCapture {
        cap: capture_session(e.runtime(), prog.module.globals.len(), engine),
        link: e.export_link(),
    }
}

/// Builds a fresh endpoint from a capture: link state through the
/// endpoint (no `open()` — restored sessions resume, they don't re-run
/// setup), everything else through the shared oracle restore.
fn restore_ctp(
    snap: CtpCapture,
    prog: &EventProgram,
    params: CtpParams,
    policy: FaultPolicy,
) -> (CtpEndpoint, Engine) {
    let mut ne = CtpEndpoint::new(prog, params).expect("rebuilt endpoint");
    ne.restore_link(snap.link);
    let ng = restore_session(
        ne.runtime_mut(),
        prog.module.clone(),
        ctp_adapt(),
        policy,
        snap.cap,
    );
    (ne, ng)
}

fn run_ctp(
    prog: &EventProgram,
    case: &ChaosCase,
    policy: FaultPolicy,
    payloads: &[Vec<u8>],
    restart: Restart,
) -> Observed<CtpObs> {
    let params = CtpParams {
        link_faults: case.wire,
        ..CtpParams::default()
    };
    let mut e = CtpEndpoint::new(prog, params).expect("endpoint");
    arm_flight_recorder(e.runtime_mut());
    e.runtime_mut().set_fault_policy(policy);
    e.runtime_mut()
        .set_fault_injector(FaultInjector::from_plan(case.plan.iter().copied()));
    let mut engine = AdaptiveEngine::attach_new(e.runtime_mut(), ctp_adapt());

    let mut error = None;
    'run: {
        if let Err(err) = e.open() {
            error = Some(err);
            break 'run;
        }
        for (i, p) in payloads.iter().enumerate() {
            if let Restart::Crash { seg, partial_ns } = restart {
                if seg == i {
                    // Boundary capture, then a doomed partial segment
                    // whose outcome (errors included) dies with the
                    // process; the restore rewinds to the capture.
                    let snap = capture_ctp(&e, &engine, prog);
                    let _ = e.send(p);
                    let _ = e.run_until(i as u64 * CTP_STEP_NS + partial_ns);
                    drop(engine);
                    drop(e);
                    let (ne, ng) = restore_ctp(snap, prog, params, policy);
                    e = ne;
                    engine = ng;
                }
            }
            if let Err(err) = e.send(p) {
                error = Some(err);
                break 'run;
            }
            if let Err(err) = e.run_until((i as u64 + 1) * CTP_STEP_NS) {
                error = Some(err);
                break 'run;
            }
            if restart == Restart::Boundaries {
                let snap = capture_ctp(&e, &engine, prog);
                drop(engine);
                drop(e);
                let (ne, ng) = restore_ctp(snap, prog, params, policy);
                e = ne;
                engine = ng;
            }
        }
        if let Err(err) = e.drain(400_000_000) {
            error = Some(err);
        }
    }

    let obs = CtpObs {
        delivered: e.received_payload(),
        stats: e.stats(),
        error: error.map(|err| format!("{err:?}")),
    };
    drop(engine);
    observe_external(e.runtime(), prog.module.globals.len(), obs)
}

#[test]
fn ctp_crash_restart_is_invisible() {
    let program = ctp_program();
    let events = ctp_fault_events(&program);
    let base = chaos_seed() ^ 0x0D1E_C791;
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 5, 20);
        let payloads = ctp_payloads(case.seed);
        let mut crash_rng = SplitMix::new(case.seed ^ 0x000C_4A54);
        let crash = Restart::Crash {
            seg: crash_rng.below(CTP_MESSAGES as u64) as usize,
            partial_ns: 1 + crash_rng.below(CTP_STEP_NS - 2),
        };
        for policy in POLICIES {
            let reference = run_ctp(&program, &case, policy, &payloads, Restart::Straight);
            for (form, restart) in [
                ("ctp-boundaries", Restart::Boundaries),
                ("ctp-crash", crash),
            ] {
                let observed = run_ctp(&program, &case, policy, &payloads, restart);
                let ctx = CaseContext {
                    substrate: "restart",
                    chain_form: form,
                    policy,
                    case: &case,
                };
                assert_equivalent(&ctx, &reference, &observed);
            }
        }
    }
}

// --- SecComm endpoint pairs over a persistent channel ---------------------

const SEC_MESSAGES: usize = 8;
const SEC_STEP_NS: u64 = 30_000_000;

fn sec_adapt() -> AdaptConfig {
    let mut opts = OptimizeOptions::new(8);
    opts.fuel_boundaries = true;
    AdaptConfig {
        epoch_ns: SEC_STEP_NS,
        min_fresh_events: 16,
        opts,
        trace_sleep_epochs: 1,
        ..AdaptConfig::default()
    }
}

#[derive(Debug, Clone, PartialEq)]
struct SecObs {
    delivered: Vec<Vec<u8>>,
    mac_dropped: u64,
    mac_failures: u64,
    wire: WireStats,
    errors: Vec<String>,
}

fn sec_payloads(case_seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SplitMix::new(case_seed ^ 0x5EC_C033);
    (0..SEC_MESSAGES)
        .map(|_| {
            let len = rng.below(240) as usize;
            (0..len).map(|_| rng.below(256) as u8).collect()
        })
        .collect()
}

/// Kills one side and rebuilds it around the surviving channel.
fn rebuild_sec(
    old: &Endpoint,
    engine: Engine,
    prog: &EventProgram,
    keys: &Keys,
    policy: FaultPolicy,
) -> (Endpoint, Engine) {
    let cap = capture_session(old.runtime(), prog.module.globals.len(), &engine);
    let wire = old.export_wire();
    drop(engine);
    let mut ne = Endpoint::new(prog, keys).expect("rebuilt endpoint");
    ne.restore_wire(wire);
    let ng = restore_session(
        ne.runtime_mut(),
        prog.module.clone(),
        sec_adapt(),
        policy,
        cap,
    );
    (ne, ng)
}

fn run_sec(
    prog: &EventProgram,
    case: &ChaosCase,
    policy: FaultPolicy,
    payloads: &[Vec<u8>],
    restart: Restart,
) -> (Observed<()>, Observed<SecObs>) {
    let keys = Keys::default();
    let from_user = prog.module.event_by_name("msgFromUser").expect("event");
    let from_net = prog.module.event_by_name("msgFromNet").expect("event");
    let mut tx = Endpoint::new(prog, &keys).expect("tx");
    let mut rx = Endpoint::new(prog, &keys).expect("rx");
    let prepare = |ep: &mut Endpoint, side: EventId| -> Engine {
        let rt = ep.runtime_mut();
        arm_flight_recorder(rt);
        rt.set_fault_policy(policy);
        rt.set_fault_injector(FaultInjector::from_plan(
            case.plan.iter().filter(|s| s.event == side).copied(),
        ));
        AdaptiveEngine::attach_new(rt, sec_adapt())
    };
    let mut tx_engine = prepare(&mut tx, from_user);
    let mut rx_engine = prepare(&mut rx, from_net);

    let mut ch = LossyChannel::new(tx, rx, case.wire);
    let mut errors = Vec::new();
    for (i, payload) in payloads.iter().enumerate() {
        if let Err(e) = ch.send(payload) {
            errors.push(format!("send {i}: {e:?}"));
        }
        ch.tick(SEC_STEP_NS);
        if restart == Restart::Boundaries {
            // Both processes die at the epoch boundary; the channel — the
            // outside world — survives and the rebuilt endpoints resume
            // the conversation with carried keys, wire state, and
            // MAC-failure counters.
            let (ntx, ntg) = rebuild_sec(ch.tx(), tx_engine, prog, &keys, policy);
            let (nrx, nrg) = rebuild_sec(ch.rx(), rx_engine, prog, &keys, policy);
            tx_engine = ntg;
            rx_engine = nrg;
            let _old = ch.swap_endpoints(ntx, nrx);
        }
    }
    if let Err(e) = ch.settle() {
        errors.push(format!("settle: {e:?}"));
    }

    let obs = SecObs {
        delivered: ch.delivered().to_vec(),
        mac_dropped: ch.mac_dropped(),
        mac_failures: ch.rx().mac_failures(),
        wire: ch.wire_stats(),
        errors,
    };
    drop((tx_engine, rx_engine));
    let base_globals = prog.module.globals.len();
    (
        observe_external(ch.tx().runtime(), base_globals, ()),
        observe_external(ch.rx().runtime(), base_globals, obs),
    )
}

#[test]
fn seccomm_crash_restart_is_invisible() {
    let proto = seccomm_protocol();
    let program = proto.instantiate(CONFIG_FULL).expect("full config");
    let events: Vec<EventId> = ["msgFromUser", "msgFromNet"]
        .iter()
        .map(|name| program.module.event_by_name(name).expect("event"))
        .collect();
    let base = chaos_seed() ^ 0x00D1_E5EC;
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 5, SEC_MESSAGES as u64);
        let payloads = sec_payloads(case.seed);
        for policy in POLICIES {
            let (ref_tx, ref_rx) = run_sec(&program, &case, policy, &payloads, Restart::Straight);
            let (obs_tx, obs_rx) = run_sec(&program, &case, policy, &payloads, Restart::Boundaries);
            let ctx = CaseContext {
                substrate: "restart",
                chain_form: "seccomm-boundaries",
                policy,
                case: &case,
            };
            assert_equivalent(&ctx, &ref_tx, &obs_tx);
            assert_equivalent(&ctx, &ref_rx, &obs_rx);
        }
    }
}
