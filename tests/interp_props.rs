//! Property tests for the interpreter and the assembler: determinism, and
//! execution equivalence across a print/parse round-trip.

mod common;

use common::{build_module, gen_function, GEN_GLOBALS};
use pdo_ir::display::print_module;
use pdo_ir::interp::{call, BasicEnv};
use pdo_ir::parse::parse_module;
use pdo_ir::{FuncId, GlobalId, Module, Value};
use proptest::prelude::*;

fn observe(m: &Module, args: &[Value]) -> (Result<Value, String>, Vec<Value>, u64) {
    let mut env = BasicEnv::new(m);
    env.fuel = Some(100_000);
    let r = call(m, &mut env, FuncId(0), args).map_err(|e| e.to_string());
    let globals = (0..GEN_GLOBALS)
        .map(|g| env.global(GlobalId(u32::from(g))).clone())
        .collect();
    (r, globals, env.cost.instrs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn execution_is_deterministic(
        f in gen_function(),
        seed in -10i64..10,
    ) {
        let m = build_module(&f);
        let args: Vec<Value> = (0..f.params).map(|i| Value::Int(seed + i64::from(i))).collect();
        let a = observe(&m, &args);
        let b = observe(&m, &args);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn printed_and_reparsed_module_executes_identically(
        f in gen_function(),
        seed in -10i64..10,
    ) {
        let m = build_module(&f);
        let text = print_module(&m);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let args: Vec<Value> = (0..f.params).map(|i| Value::Int(seed - i64::from(i))).collect();
        let a = observe(&m, &args);
        let b = observe(&reparsed, &args);
        prop_assert_eq!(a, b, "module text was:\n{}", text);
    }

    #[test]
    fn generated_modules_always_verify(f in gen_function()) {
        let m = build_module(&f);
        prop_assert!(pdo_ir::verify_module(&m).is_ok());
    }
}
