//! Property tests for the profiling pipeline: GraphBuilder invariants,
//! reduction monotonicity, and chain well-formedness.

use pdo_events::{Trace, TraceRecord};
use pdo_ir::{EventId, RaiseMode};
use pdo_profile::{event_chains, event_paths, EventGraph};
use proptest::prelude::*;

fn trace_strategy() -> impl Strategy<Value = Trace> {
    prop::collection::vec((0u32..8, 0u8..3), 0..200).prop_map(|seq| Trace {
        records: seq
            .into_iter()
            .map(|(e, m)| TraceRecord::Raise {
                event: EventId(e),
                mode: match m {
                    0 => RaiseMode::Sync,
                    1 => RaiseMode::Async,
                    _ => RaiseMode::Timed,
                },
                depth: 0,
                at: 0,
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn edge_weights_sum_to_pairs(trace in trace_strategy()) {
        let g = EventGraph::from_trace(&trace);
        let total: u64 = g.edges.values().map(|d| d.weight).sum();
        let raises = trace.raise_count() as u64;
        prop_assert_eq!(total, raises.saturating_sub(1));
        // Node occurrence counts sum to the raise count.
        let nodes: u64 = g.nodes.values().sum();
        prop_assert_eq!(nodes, raises);
    }

    #[test]
    fn edge_mode_counts_are_consistent(trace in trace_strategy()) {
        let g = EventGraph::from_trace(&trace);
        for data in g.edges.values() {
            prop_assert_eq!(data.sync + data.asynchronous, data.weight);
            prop_assert!(data.weight > 0);
        }
    }

    #[test]
    fn reduction_is_monotone(trace in trace_strategy(), t1 in 1u64..10, dt in 0u64..10) {
        let g = EventGraph::from_trace(&trace);
        let loose = g.reduce(t1);
        let tight = g.reduce(t1 + dt);
        // Every edge surviving the tighter threshold survives the looser one.
        for (k, v) in &tight.edges {
            prop_assert_eq!(loose.edges.get(k), Some(v));
        }
        // Reduction at threshold 1 keeps everything except isolated nodes.
        let full = g.reduce(1);
        prop_assert_eq!(full.edge_count(), g.edge_count());
    }

    #[test]
    fn chains_are_well_formed(trace in trace_strategy(), t in 1u64..6) {
        let g = EventGraph::from_trace(&trace).reduce(t);
        let chains = event_chains(&g);
        for chain in &chains {
            prop_assert!(chain.len() >= 2);
            // No repeated vertex inside a chain.
            let mut seen = std::collections::BTreeSet::new();
            for &v in chain {
                prop_assert!(seen.insert(v), "duplicate vertex in chain");
            }
            // Every interior vertex has exactly one successor, and every
            // chain edge is purely synchronous.
            for window in chain.windows(2) {
                let (a, b) = (window[0], window[1]);
                let succs: Vec<_> = g.successors(a).collect();
                prop_assert_eq!(succs.len(), 1, "interior vertex must have unique successor");
                let data = g.edges.get(&(a, b)).expect("edge exists");
                prop_assert!(data.is_pure_sync(), "chain edge must be pure sync");
            }
        }
        // Chains are vertex-disjoint.
        let mut all = std::collections::BTreeSet::new();
        for chain in &chains {
            for &v in chain {
                prop_assert!(all.insert(v), "chains must not share vertices");
            }
        }
    }

    #[test]
    fn paths_are_supersets_of_chains(trace in trace_strategy(), t in 1u64..6) {
        let g = EventGraph::from_trace(&trace).reduce(t);
        // Every chain is a valid path prefix set: paths ignore the sync
        // requirement, so chain heads with a unique successor always appear
        // somewhere in a path too. (Weak but useful sanity relation: the
        // *number* of path vertices is at least the number of chain
        // vertices.)
        let chain_vertices: usize = event_chains(&g).iter().map(Vec::len).sum();
        let path_vertices: usize = event_paths(&g).iter().map(Vec::len).sum();
        prop_assert!(path_vertices >= chain_vertices);
    }

    #[test]
    fn graph_is_deterministic(trace in trace_strategy()) {
        let g1 = EventGraph::from_trace(&trace);
        let g2 = EventGraph::from_trace(&trace);
        prop_assert_eq!(g1, g2);
    }
}
