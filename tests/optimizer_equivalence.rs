//! Property test: profile-directed optimization preserves observable
//! behaviour on randomly generated event programs.
//!
//! Programs are generated as layered DAGs (handlers may only synchronously
//! raise strictly higher-numbered events, so every raise sequence
//! terminates). For each generated program, binding plan, and workload, the
//! test runs the original runtime and the optimized runtime (chains
//! installed) and asserts the final global state is identical — including
//! after a random mid-run re-binding that invalidates some guards.

use pdo::{optimize, OptimizeOptions};
use pdo_events::{Runtime, TraceConfig};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, GlobalId, Module, RaiseMode, Value};
use pdo_profile::Profile;
use proptest::prelude::*;

const GLOBALS: u32 = 3;

/// One primitive op inside a generated handler body.
#[derive(Debug, Clone)]
enum Op {
    /// `g += k` under the lock.
    BumpLocked { global: u32, k: i64 },
    /// `g = g * 3 + k` without a lock.
    Mix { global: u32, k: i64 },
    /// Synchronously raise a higher event (offset from own + 1).
    RaiseSync { offset: u32 },
    /// Asynchronously raise a higher event.
    RaiseAsync { offset: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..GLOBALS, -5i64..5).prop_map(|(global, k)| Op::BumpLocked { global, k }),
        (0..GLOBALS, -5i64..5).prop_map(|(global, k)| Op::Mix { global, k }),
        (0u32..3).prop_map(|offset| Op::RaiseSync { offset }),
        (0u32..3).prop_map(|offset| Op::RaiseAsync { offset }),
    ]
}

#[derive(Debug, Clone)]
struct ProgramSpec {
    /// events[i] = handlers, each a list of ops.
    events: Vec<Vec<Vec<Op>>>,
    /// Workload: (event index, sync?) raises from the app.
    workload: Vec<(u32, bool)>,
    /// Optimizer configuration toggles.
    threshold: u64,
    partitioned: bool,
    merge_all: bool,
    speculative: bool,
    inline: bool,
    compiler_passes: bool,
    /// Re-bind experiment: unbind this (event, handler-position) mid-run.
    rebind: Option<(u32, u32)>,
}

fn spec_strategy() -> impl Strategy<Value = ProgramSpec> {
    let handler = prop::collection::vec(op_strategy(), 1..5);
    let event = prop::collection::vec(handler, 0..3);
    let events = prop::collection::vec(event, 2..5);
    (
        events,
        prop::collection::vec((0u32..4, any::<bool>()), 1..12),
        1u64..6,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        prop::option::of((0u32..4, 0u32..2)),
    )
        .prop_map(
            |(
                events,
                workload,
                threshold,
                partitioned,
                merge_all,
                speculative,
                inline,
                compiler_passes,
                rebind,
            )| ProgramSpec {
                events,
                workload,
                threshold,
                partitioned,
                merge_all,
                speculative,
                inline,
                compiler_passes,
                rebind,
            },
        )
}

struct Built {
    module: Module,
    bindings: Vec<(EventId, FuncId, i32)>,
    globals: Vec<GlobalId>,
}

fn build(spec: &ProgramSpec) -> Built {
    let mut m = Module::new();
    let n_events = spec.events.len();
    let events: Vec<EventId> = (0..n_events)
        .map(|i| m.add_event(format!("E{i}")))
        .collect();
    let globals: Vec<GlobalId> = (0..GLOBALS)
        .map(|i| m.add_global(format!("g{i}"), Value::Int(0)))
        .collect();

    let mut bindings = Vec::new();
    for (ei, handlers) in spec.events.iter().enumerate() {
        for (hi, ops) in handlers.iter().enumerate() {
            let mut b = FunctionBuilder::new(format!("h_{ei}_{hi}"), 0);
            for op in ops {
                match op {
                    Op::BumpLocked { global, k } => {
                        let g = globals[*global as usize];
                        b.lock(g);
                        let v = b.load_global(g);
                        let kk = b.const_int(*k);
                        let s = b.bin(BinOp::Add, v, kk);
                        b.store_global(g, s);
                        b.unlock(g);
                    }
                    Op::Mix { global, k } => {
                        let g = globals[*global as usize];
                        let v = b.load_global(g);
                        let three = b.const_int(3);
                        let t = b.bin(BinOp::Mul, v, three);
                        let kk = b.const_int(*k);
                        let s = b.bin(BinOp::Add, t, kk);
                        b.store_global(g, s);
                    }
                    Op::RaiseSync { offset } => {
                        let target = ei + 1 + *offset as usize;
                        if target < n_events {
                            b.raise(events[target], RaiseMode::Sync, &[]);
                        }
                    }
                    Op::RaiseAsync { offset } => {
                        let target = ei + 1 + *offset as usize;
                        if target < n_events {
                            b.raise(events[target], RaiseMode::Async, &[]);
                        }
                    }
                }
            }
            b.ret(None);
            let f = m.add_function(b.finish());
            bindings.push((events[ei], f, hi as i32));
        }
    }
    Built {
        module: m,
        bindings,
        globals,
    }
}

fn runtime_of(module: &Module, bindings: &[(EventId, FuncId, i32)]) -> Runtime {
    let mut rt = Runtime::new(module.clone());
    for &(e, f, o) in bindings {
        rt.bind(e, f, o).expect("bind");
    }
    rt
}

fn run_workload(
    rt: &mut Runtime,
    spec: &ProgramSpec,
    n_events: usize,
    bindings: &[(EventId, FuncId, i32)],
) -> Vec<Value> {
    for (i, &(ev, sync)) in spec.workload.iter().enumerate() {
        let ev = EventId(ev % n_events as u32);
        let mode = if sync {
            RaiseMode::Sync
        } else {
            RaiseMode::Async
        };
        rt.raise(ev, mode, &[]).expect("raise");
        rt.run_until_idle().expect("drain");
        // Optional mid-run re-binding halfway through the workload.
        if i == spec.workload.len() / 2 {
            if let Some((re, rh)) = spec.rebind {
                let event = EventId(re % n_events as u32);
                let bound: Vec<FuncId> = bindings
                    .iter()
                    .filter(|(e, ..)| *e == event)
                    .map(|&(_, f, _)| f)
                    .collect();
                if !bound.is_empty() {
                    let victim = bound[rh as usize % bound.len()];
                    rt.unbind(event, victim);
                }
            }
        }
    }
    (0..GLOBALS)
        .map(|g| rt.global(GlobalId(g)).clone())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimized_program_has_identical_observable_state(spec in spec_strategy()) {
        let built = build(&spec);
        let n_events = spec.events.len();

        // Reference run.
        let mut orig = runtime_of(&built.module, &built.bindings);
        let orig_state = run_workload(&mut orig, &spec, n_events, &built.bindings);

        // Profile run (fresh runtime, same plan).
        let mut prof = runtime_of(&built.module, &built.bindings);
        prof.set_trace_config(TraceConfig::full());
        for &(ev, sync) in &spec.workload {
            let ev = EventId(ev % n_events as u32);
            let mode = if sync { RaiseMode::Sync } else { RaiseMode::Async };
            prof.raise(ev, mode, &[]).expect("raise");
            prof.run_until_idle().expect("drain");
        }
        let profile = Profile::from_trace(&prof.take_trace(), spec.threshold);

        // Optimize.
        let mut opts = OptimizeOptions::new(spec.threshold);
        opts.partitioned = spec.partitioned;
        opts.merge_all = spec.merge_all;
        opts.speculative = spec.speculative;
        opts.inline = spec.inline;
        opts.compiler_passes = spec.compiler_passes;
        let opt = optimize(&built.module, prof.registry(), &profile, &opts);
        pdo_ir::verify_module(&opt.module).expect("optimized module verifies");

        // Optimized run, same workload including the mid-run re-binding.
        let mut fast = runtime_of(&opt.module, &built.bindings);
        opt.install_chains(&mut fast);
        let fast_state = run_workload(&mut fast, &spec, n_events, &built.bindings);

        prop_assert_eq!(orig_state, fast_state);
        let _ = built.globals;
    }
}
