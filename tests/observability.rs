//! End-to-end observability (DESIGN.md §12): the exposition text format
//! is pinned exactly, and a live `pdo-server` run — plain, CTP, and
//! SecComm sessions under one roof — must surface every layer's series
//! in one scrape: per-event dispatch-latency histograms split fast/slow,
//! adaptation gauges, and wire/CTP/SecComm fault counters, plus
//! post-mortem flight-recorder dumps.

use pdo::AdaptConfig;
use pdo_ctp::{ctp_program, CtpParams};
use pdo_events::wire::WireFaults;
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, Value};
use pdo_obs::{Histogram, MetricsSnapshot};
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_FULL};
use pdo_server::{Server, ServerConfig};

/// The render format is a contract (scrapers parse it): pin it exactly.
/// Samples stay below 16 so the log-linear histogram is exact and the
/// quantiles are integers, independent of bucket geometry.
#[test]
fn exposition_text_format_is_pinned() {
    let mut snap = MetricsSnapshot::new();
    snap.gauge("pdo_adapt_chains_live", "Live chains", &[("shard", "0")], 2);
    snap.counter(
        "pdo_wire_faults_total",
        "Wire faults",
        &[("kind", "dropped"), ("shard", "0")],
        3,
    );
    snap.counter(
        "pdo_wire_faults_total",
        "Wire faults",
        &[("kind", "corrupted"), ("shard", "0")],
        1,
    );
    let mut h = Histogram::new();
    for v in 1..=10u64 {
        h.record(v);
    }
    snap.histogram(
        "pdo_dispatch_latency_ns",
        "Dispatch latency",
        &[("event", "1"), ("path", "fast"), ("shard", "0")],
        &h,
    );
    let expected = "\
# HELP pdo_adapt_chains_live Live chains
# TYPE pdo_adapt_chains_live gauge
pdo_adapt_chains_live{shard=\"0\"} 2
# HELP pdo_dispatch_latency_ns Dispatch latency
# TYPE pdo_dispatch_latency_ns summary
pdo_dispatch_latency_ns{event=\"1\",path=\"fast\",shard=\"0\",quantile=\"0.5\"} 5
pdo_dispatch_latency_ns{event=\"1\",path=\"fast\",shard=\"0\",quantile=\"0.9\"} 9
pdo_dispatch_latency_ns{event=\"1\",path=\"fast\",shard=\"0\",quantile=\"0.99\"} 10
pdo_dispatch_latency_ns_sum{event=\"1\",path=\"fast\",shard=\"0\"} 55
pdo_dispatch_latency_ns_count{event=\"1\",path=\"fast\",shard=\"0\"} 10
pdo_dispatch_latency_ns_max{event=\"1\",path=\"fast\",shard=\"0\"} 10
# HELP pdo_wire_faults_total Wire faults
# TYPE pdo_wire_faults_total counter
pdo_wire_faults_total{kind=\"corrupted\",shard=\"0\"} 1
pdo_wire_faults_total{kind=\"dropped\",shard=\"0\"} 3
";
    assert_eq!(snap.render(), expected);
}

/// Two events, two handlers each — the sharded-server adaptation
/// workload: enough repetition for chains to install mid-run, so both
/// dispatch lanes (slow before, fast after) accumulate samples.
fn adapt_module() -> (Module, [EventId; 2]) {
    let mut m = Module::new();
    let a = m.add_event("A");
    let b = m.add_event("B");
    let ga = m.add_global("acc_a", Value::Int(0));
    let gb = m.add_global("acc_b", Value::Int(0));
    let adder = |m: &mut Module, name: &str, g, d: i64| {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        m.add_function(fb.finish())
    };
    adder(&mut m, "a1", ga, 1);
    adder(&mut m, "a2", ga, 2);
    adder(&mut m, "b1", gb, 1);
    adder(&mut m, "b2", gb, 2);
    (m, [a, b])
}

fn bindings(m: &Module, a: EventId, b: EventId) -> Vec<(EventId, FuncId, i32)> {
    vec![
        (a, m.function_by_name("a1").unwrap(), 0),
        (a, m.function_by_name("a2").unwrap(), 1),
        (b, m.function_by_name("b1").unwrap(), 0),
        (b, m.function_by_name("b2").unwrap(), 1),
    ]
}

#[test]
fn live_server_scrape_covers_every_layer() {
    // Threaded on purpose: the scrape and the flight-recorder dump must
    // cross the shard command channels and still cover every layer.
    let mut server = Server::new(ServerConfig {
        shards: 2,
        threads: 2,
        adapt: AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: pdo::OptimizeOptions::new(10),
            ..Default::default()
        },
        ..Default::default()
    });

    // Plain session: hammer both events so the engine installs chains
    // mid-run (slow-path samples before, fast-path after).
    let (m, [a, b]) = adapt_module();
    let plain = server
        .open_session(m.clone(), Default::default(), &bindings(&m, a, b))
        .unwrap();
    for i in 0..80u64 {
        server.submit(plain, a, i * 100 + 100, &[]).unwrap();
        server.submit(plain, b, i * 100 + 100, &[]).unwrap();
    }
    server.run_until(80 * 100 + 1).unwrap();

    // CTP session over a seeded faulty link: wire fault counters, CTP
    // transport counters, and backoff gauges. Link faults can surface as
    // session errors (that is the point); metrics survive regardless.
    let ctp = server
        .open_ctp_session(
            &ctp_program(),
            CtpParams {
                link_faults: WireFaults {
                    drop_per_mille: 200,
                    dup_per_mille: 150,
                    reorder_per_mille: 200,
                    corrupt_per_mille: 150,
                    seed: 7,
                },
                ..Default::default()
            },
        )
        .unwrap();
    for i in 0..6u64 {
        let payload = vec![i as u8; 40 + i as usize * 17];
        let _ = server.with_ctp(ctp, move |ep| ep.send(&payload)).unwrap();
        let _ = server.run_until(8_001 + (i + 1) * 50_000_000);
    }

    // SecComm session: a corrupted wire message pushed through the
    // inbound chain must bump the MAC-failure counter.
    let keys = Keys::default();
    let sec_program = seccomm_protocol().instantiate(CONFIG_FULL).unwrap();
    let sec = server.open_seccomm_session(&sec_program, &keys).unwrap();
    let mut sender = Endpoint::new(&sec_program, &keys).unwrap();
    let mut wire = sender.push(b"tamper with me").unwrap();
    let mid = wire.len() / 2;
    wire[mid] ^= 0xFF;
    assert!(server
        .with_seccomm(sec, move |ep| ep.pop(&wire))
        .unwrap()
        .is_err());

    let snap = server.metrics();
    let text = snap.render();

    // Dispatch latency histograms, both lanes, from the live run.
    assert!(text.contains("# TYPE pdo_dispatch_latency_ns summary"));
    assert!(
        text.contains("path=\"fast\"") && text.contains("path=\"slow\""),
        "both dispatch lanes must have latency series:\n{text}"
    );

    // Adaptation gauges.
    let chains_live: i64 = (0..2)
        .map(|s| {
            snap.gauge_value("pdo_adapt_chains_live", &[("shard", &s.to_string())])
                .unwrap_or(0)
        })
        .sum();
    assert!(chains_live >= 1, "the plain session adapted:\n{text}");
    assert!(text.contains("# TYPE pdo_adapt_sampling gauge"));

    // Wire fault counters from the CTP link, on the CTP session's shard.
    let ctp_shard = server.shard_of(ctp).to_string();
    let wire_faults: u64 = ["dropped", "duplicated", "reordered", "corrupted"]
        .iter()
        .map(|kind| {
            snap.counter_value(
                "pdo_wire_faults_total",
                &[("kind", kind), ("shard", &ctp_shard)],
            )
            .expect("wire fault counters are exported per kind")
        })
        .sum();
    assert!(
        wire_faults > 0,
        "the seeded faulty link misbehaved:\n{text}"
    );
    assert!(
        snap.counter_value("pdo_ctp_segments_sent_total", &[("shard", &ctp_shard)])
            .is_some_and(|v| v > 0),
        "CTP transport counters present:\n{text}"
    );
    assert!(snap
        .gauge_value("pdo_ctp_backoff_level", &[("shard", &ctp_shard)])
        .is_some());

    // SecComm MAC failures.
    let sec_shard = server.shard_of(sec).to_string();
    assert_eq!(
        snap.counter_value("pdo_seccomm_mac_failures_total", &[("shard", &sec_shard)]),
        Some(1)
    );

    // Session gauge sums to the live session count.
    let sessions: i64 = (0..2)
        .map(|s| {
            snap.gauge_value("pdo_server_sessions", &[("shard", &s.to_string())])
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(sessions, 3);

    // The post-mortem dump shows per-session adaptation activity.
    let dump = server.dump_flight_recorders(32);
    assert!(dump.contains("--- session"), "dump has per-session headers");
    assert!(
        dump.contains("chain-installed"),
        "adaptation transitions land in the flight recorder:\n{dump}"
    );
}
