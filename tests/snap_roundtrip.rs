//! Durable image round-trip properties (DESIGN.md §14): for seeded
//! fleets of every session kind, `snapshot_to_bytes` → fresh server →
//! `restore_from_bytes` → `snapshot_to_bytes` reproduces the image byte
//! for byte — the format has one canonical encoding per state, and a
//! restore loses nothing the format carries. And no corruption — every
//! truncation prefix, seeded bit flips, garbage — ever panics or
//! half-restores: it is a typed `ServerError::Snapshot` with the server
//! left empty.

#[path = "common/oracle.rs"]
mod oracle;

use oracle::SplitMix;
use pdo::{AdaptConfig, OptimizeOptions};
use pdo_ctp::{ctp_program, CtpParams};
use pdo_events::RuntimeConfig;
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, Value};
use pdo_seccomm::{seccomm_protocol, Keys, CONFIG_FULL};
use pdo_server::{Server, ServerConfig, ServerError};
use proptest::prelude::*;

fn two_chain_module() -> (Module, [EventId; 2]) {
    let mut m = Module::new();
    let a = m.add_event("A");
    let b = m.add_event("B");
    let ga = m.add_global("acc_a", Value::Int(0));
    let gb = m.add_global("acc_b", Value::Int(0));
    let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId, d: i64| {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        m.add_function(fb.finish())
    };
    adder(&mut m, "a1", ga, 1);
    adder(&mut m, "a2", ga, 2);
    adder(&mut m, "b1", gb, 1);
    adder(&mut m, "b2", gb, 2);
    (m, [a, b])
}

fn bindings(m: &Module, a: EventId, b: EventId) -> Vec<(EventId, FuncId, i32)> {
    vec![
        (a, m.function_by_name("a1").unwrap(), 0),
        (a, m.function_by_name("a2").unwrap(), 1),
        (b, m.function_by_name("b1").unwrap(), 0),
        (b, m.function_by_name("b2").unwrap(), 1),
    ]
}

fn config() -> ServerConfig {
    ServerConfig {
        shards: 2,
        adapt: AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: OptimizeOptions::new(10),
            ..AdaptConfig::default()
        },
        ..Default::default()
    }
}

/// Builds a server holding sessions of the selected kind (3 = all three
/// at once) and drives a seeded workload, ending at an epoch boundary so
/// snapshots are exact: timers may still be outstanding and async raises
/// queued — the image must carry them.
fn seeded_server(seed: u64, kind: usize) -> Server {
    let mut rng = SplitMix::new(seed);
    let mut server = Server::new(config());
    if kind == 0 || kind == 3 {
        let (m, [a, b]) = two_chain_module();
        let binds = bindings(&m, a, b);
        for _ in 0..1 + rng.below(3) {
            let id = server
                .open_session(m.clone(), RuntimeConfig::default(), &binds)
                .unwrap();
            for _ in 0..rng.below(30) {
                let event = if rng.below(2) == 0 { a } else { b };
                server.submit(id, event, 1 + rng.below(8_000), &[]).unwrap();
            }
        }
        server.run_until(5_000).unwrap();
        // A queued async raise rides across the snapshot in the FIFO.
        if rng.below(2) == 0 {
            let ids = server.sessions();
            server
                .with_runtime(ids[0], move |rt| {
                    rt.raise(a, pdo_ir::RaiseMode::Async, &[]).unwrap();
                })
                .unwrap();
        }
    }
    if kind == 1 || kind == 3 {
        let program = ctp_program();
        let id = server
            .open_ctp_session(&program, CtpParams::default())
            .unwrap();
        for i in 0..2 + rng.below(3) {
            let len = 1 + rng.below(250) as usize;
            let payload: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            server
                .with_ctp(id, move |ep| ep.send(&payload))
                .unwrap()
                .unwrap();
            server.run_until((i + 1) * 60_000_000).unwrap();
        }
    }
    if kind == 2 || kind == 3 {
        let program = seccomm_protocol().instantiate(CONFIG_FULL).unwrap();
        let keys = Keys::default();
        let tx = server.open_seccomm_session(&program, &keys).unwrap();
        let rx = server.open_seccomm_session(&program, &keys).unwrap();
        for _ in 0..1 + rng.below(5) {
            let len = rng.below(120) as usize;
            let msg: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            let expect = msg.clone();
            let wire = server
                .with_seccomm(tx, move |ep| ep.push(&msg))
                .unwrap()
                .unwrap();
            let plain = server
                .with_seccomm(rx, move |ep| ep.pop(&wire))
                .unwrap()
                .unwrap();
            assert_eq!(plain, expect);
        }
        server.run_until(2_000_000_000).unwrap();
    }
    server
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// snapshot → restore → snapshot is byte-identical for every session
    /// kind alone and for a mixed fleet.
    #[test]
    fn snapshot_restore_snapshot_is_byte_identical(seed in 0u64..1_000_000) {
        for kind in 0..4usize {
            let mut server = seeded_server(seed.wrapping_add(kind as u64), kind);
            let bytes = server.snapshot_to_bytes();
            let mut revived = Server::new(config());
            revived
                .restore_from_bytes(&bytes)
                .expect("a fresh image restores");
            prop_assert_eq!(
                revived.snapshot_to_bytes(),
                bytes,
                "kind {} round trip",
                kind
            );
        }
    }

    /// Every truncation prefix and a seeded sweep of bit flips yield a
    /// typed error and an untouched (still empty) server — never a panic,
    /// never a partial restore.
    #[test]
    fn corrupt_images_are_typed_errors(seed in 0u64..1_000_000) {
        let mut server = seeded_server(seed, 0);
        let bytes = server.snapshot_to_bytes();
        for cut in 0..bytes.len() {
            let mut fresh = Server::new(config());
            match fresh.restore_from_bytes(&bytes[..cut]) {
                Err(ServerError::Snapshot(_)) => {}
                other => prop_assert!(false, "prefix {} must fail typed, got {:?}", cut, other),
            }
            prop_assert!(fresh.sessions().is_empty());
        }
        let mut rng = SplitMix::new(seed ^ 0x0B17_F11B);
        for _ in 0..128 {
            let pos = rng.below((bytes.len() * 8) as u64) as usize;
            let mut bad = bytes.clone();
            bad[pos / 8] ^= 1 << (pos % 8);
            let mut fresh = Server::new(config());
            match fresh.restore_from_bytes(&bad) {
                Err(ServerError::Snapshot(_)) => {}
                other => prop_assert!(false, "flip {} must fail typed, got {:?}", pos, other),
            }
            prop_assert!(fresh.sessions().is_empty());
        }
        // Arbitrary garbage of assorted sizes.
        for len in [0usize, 1, 7, 19, 20, 64, 1024] {
            let garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            let mut fresh = Server::new(config());
            prop_assert!(matches!(
                fresh.restore_from_bytes(&garbage),
                Err(ServerError::Snapshot(_))
            ));
        }
    }
}
