//! Chaos equivalence on the synthetic media pipeline: the paper's
//! behavioral-equivalence guarantee holds *under injected faults*, not
//! just on the happy path.
//!
//! For any seeded plan of equivalence-safe faults (dispatch traps,
//! argument corruption, dropped/delayed timers, fuel exhaustion) and
//! either containment policy, the optimized program — monolithic or
//! partitioned chains — must be observationally identical to the
//! original: same global state, same emitted packets in the same order,
//! same recorded fault sequence, same robustness counters. Faults key on
//! *top-level* occurrences precisely so this property is well defined
//! (see `pdo_events::fault` module docs). Fuel exhaustion is
//! equivalence-safe here because the optimizer runs with
//! `fuel_boundaries` on: merged super-handlers charge the boundary budget
//! at `__pdo_fuel_boundary` markers placed exactly where generic dispatch
//! charges it (before each pre-merge handler), so the occurrence aborts
//! at the same program point in both runs.
//!
//! The oracle itself (case derivation, snapshots, the equivalence assert
//! with its replay seed) lives in `tests/common/oracle.rs` and is shared
//! with the real-substrate suites (`chaos_ctp`, `chaos_seccomm`,
//! `chaos_xwin`).

#[path = "common/oracle.rs"]
mod oracle;

use oracle::{
    assert_equivalent, chaos_cases, chaos_seed, observe, CaseContext, ChaosCase, Observed, POLICIES,
};
use pdo::{optimize, Optimization, OptimizeOptions};
use pdo_events::{
    FaultInjector, FaultKind, FaultPolicy, FaultSpec, Runtime, RuntimeConfig, TraceConfig,
};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_profile::Profile;
use std::cell::RefCell;
use std::rc::Rc;

/// Synchronous frames in a session (async extras ride on top).
const FRAMES: i64 = 24;

/// A small media pipeline: `Frame` updates counters and stages a value,
/// then synchronously raises `Encode` -> `Send`; `Send` emits a packet
/// through a native and arms a timed `Ack`. The chain `Frame -> Encode ->
/// Send` is exactly the shape the optimizer merges into a super-handler.
struct Pipeline {
    module: Module,
    frame: EventId,
    ack: EventId,
    bindings: Vec<(EventId, FuncId, i32)>,
}

fn pipeline() -> Pipeline {
    let mut m = Module::new();
    let frame = m.add_event("Frame");
    let encode = m.add_event("Encode");
    let send = m.add_event("Send");
    let ack = m.add_event("Ack");

    let g_frames = m.add_global("frames", Value::Int(0));
    let g_check = m.add_global("checksum", Value::Int(0));
    let g_staged = m.add_global("staged", Value::Int(0));
    let g_acks = m.add_global("acks", Value::Int(0));
    let g_ack_sum = m.add_global("ack_sum", Value::Int(0));
    let n_emit = m.add_native("emit");

    // Frame order 0: frames += 1; checksum = checksum * 31 + arg.
    let mut b = FunctionBuilder::new("frame_stat", 1);
    let v = b.load_global(g_frames);
    let one = b.const_int(1);
    let s = b.bin(BinOp::Add, v, one);
    b.store_global(g_frames, s);
    let c = b.load_global(g_check);
    let k = b.const_int(31);
    let scaled = b.bin(BinOp::Mul, c, k);
    let mixed = b.bin(BinOp::Add, scaled, b.param(0));
    b.store_global(g_check, mixed);
    b.ret(None);
    let h_stat = m.add_function(b.finish());

    // Frame order 10: staged = arg * 2 + 1, then the nested chain.
    let mut b = FunctionBuilder::new("frame_encode", 1);
    let two = b.const_int(2);
    let d = b.bin(BinOp::Mul, b.param(0), two);
    let one = b.const_int(1);
    let st = b.bin(BinOp::Add, d, one);
    b.store_global(g_staged, st);
    b.raise(encode, RaiseMode::Sync, &[]);
    b.ret(None);
    let h_encode = m.add_function(b.finish());

    // Encode: staged ^= 0x5A, then Send.
    let mut b = FunctionBuilder::new("encode_xform", 0);
    let v = b.load_global(g_staged);
    let mask = b.const_int(0x5A);
    let x = b.bin(BinOp::Xor, v, mask);
    b.store_global(g_staged, x);
    b.raise(send, RaiseMode::Sync, &[]);
    b.ret(None);
    let h_enc = m.add_function(b.finish());

    // Send: emit the staged packet, arm a timed Ack carrying it.
    let mut b = FunctionBuilder::new("send_emit", 0);
    let v = b.load_global(g_staged);
    let _ = b.call_native(n_emit, &[v]);
    let delay = b.const_int(1_000);
    b.raise(ack, RaiseMode::Timed, &[delay, v]);
    b.ret(None);
    let h_send = m.add_function(b.finish());

    // Ack: acks += 1; ack_sum += arg.
    let mut b = FunctionBuilder::new("ack_count", 1);
    let v = b.load_global(g_acks);
    let one = b.const_int(1);
    let s = b.bin(BinOp::Add, v, one);
    b.store_global(g_acks, s);
    let t = b.load_global(g_ack_sum);
    let u = b.bin(BinOp::Add, t, b.param(0));
    b.store_global(g_ack_sum, u);
    b.ret(None);
    let h_ack = m.add_function(b.finish());

    let bindings = vec![
        (frame, h_stat, 0),
        (frame, h_encode, 10),
        (encode, h_enc, 0),
        (send, h_send, 0),
        (ack, h_ack, 0),
    ];
    Pipeline {
        module: m,
        frame,
        ack,
        bindings,
    }
}

/// Runs the deterministic workload on `module` (optionally with compiled
/// chains installed) under `policy` and `plan`, and snapshots observables
/// through the shared oracle (`substrate` = the emitted packet stream).
fn run(
    p: &Pipeline,
    module: &Module,
    chains: Option<&Optimization>,
    policy: FaultPolicy,
    plan: &[FaultSpec],
) -> (Observed<Vec<Value>>, Runtime) {
    let mut rt = Runtime::with_config(
        module.clone(),
        RuntimeConfig {
            fault_policy: policy,
            ..Default::default()
        },
    );
    oracle::arm_flight_recorder(&mut rt);
    for &(e, h, order) in &p.bindings {
        rt.bind(e, h, order).expect("bind");
    }
    let emitted = Rc::new(RefCell::new(Vec::new()));
    let sink = Rc::clone(&emitted);
    rt.bind_native_by_name("emit", move |args| {
        sink.borrow_mut().push(args[0].clone());
        Ok(Value::Unit)
    })
    .expect("bind emit");
    if let Some(opt) = chains {
        opt.install_chains(&mut rt);
    }
    rt.set_trace_config(TraceConfig::full());
    rt.set_fault_injector(FaultInjector::from_plan(plan.iter().copied()));

    for i in 0..FRAMES {
        rt.raise(p.frame, RaiseMode::Sync, &[Value::Int(i)])
            .expect("containment policy must not abort a sync raise");
        if i % 5 == 0 {
            rt.raise(p.frame, RaiseMode::Async, &[Value::Int(100 + i)])
                .expect("async raise");
        }
    }
    rt.run_until_idle()
        .expect("containment policy must not abort the drain");

    let packets = emitted.borrow().clone();
    let observed = observe(&mut rt, p.module.globals.len(), packets);
    (observed, rt)
}

/// Profiles the happy path and optimizes; `partitioned` picks Fig 14
/// per-segment guards over one monolithic guard set.
fn optimized(p: &Pipeline, partitioned: bool) -> Optimization {
    let (_, mut rt) = run(p, &p.module, None, FaultPolicy::Abort, &[]);
    rt.set_trace_config(TraceConfig::full());
    for i in 0..FRAMES {
        rt.raise(p.frame, RaiseMode::Sync, &[Value::Int(i)])
            .expect("profiling raise");
    }
    rt.run_until_idle().expect("profiling drain");
    let profile = Profile::from_trace(&rt.take_trace(), 10);
    let mut opts = OptimizeOptions::new(10);
    opts.partitioned = partitioned;
    // Boundary markers make ExhaustFuel trip at the same program points in
    // merged code as in generic dispatch.
    opts.fuel_boundaries = true;
    let opt = optimize(&p.module, rt.registry(), &profile, &opts);
    assert!(
        !opt.chains.is_empty(),
        "the pipeline must produce at least one compiled chain"
    );
    opt
}

/// The capstone property: for any seeded fault plan and either
/// containment policy, original and optimized runs (monolithic and
/// partitioned) observe identical behavior.
#[test]
fn optimized_program_is_observationally_identical_under_faults() {
    let p = pipeline();
    let events = [p.frame, p.ack];
    let forms = [
        ("monolithic", optimized(&p, false)),
        ("partitioned", optimized(&p, true)),
    ];

    let base = chaos_seed();
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 8, 32);
        for policy in POLICIES {
            let (reference, _) = run(&p, &p.module, None, policy, &case.plan);
            for (form, opt) in &forms {
                let (observed, _) = run(&p, &opt.module, Some(opt), policy, &case.plan);
                let ctx = CaseContext {
                    substrate: "equivalence",
                    chain_form: form,
                    policy,
                    case: &case,
                };
                assert_equivalent(&ctx, &reference, &observed);
            }
        }
    }
}

#[test]
fn harness_is_meaningful_fastpath_used_when_unfaulted() {
    let p = pipeline();
    let opt = optimized(&p, false);
    let (reference, _) = run(&p, &p.module, None, FaultPolicy::SkipEvent, &[]);
    let (observed, rt) = run(&p, &opt.module, Some(&opt), FaultPolicy::SkipEvent, &[]);
    assert_eq!(observed, reference);
    assert!(
        rt.cost.fastpath_hits > 0,
        "an unfaulted run must actually exercise the compiled chains"
    );
    assert_eq!(reference.substrate.len() as i64, FRAMES + FRAMES / 5 + 1);
}

#[test]
fn despecialize_removes_chain_but_preserves_behavior() {
    let p = pipeline();
    let opt = optimized(&p, false);
    let plan = [FaultSpec {
        event: p.frame,
        occurrence: 2,
        kind: FaultKind::TrapDispatch,
    }];
    let (reference, _) = run(&p, &p.module, None, FaultPolicy::Despecialize, &plan);
    let (observed, rt) = run(
        &p,
        &opt.module,
        Some(&opt),
        FaultPolicy::Despecialize,
        &plan,
    );
    assert_eq!(observed, reference);
    assert!(
        rt.spec().get(p.frame).is_none(),
        "the faulting chain must be removed"
    );
    // The faulted occurrence was still drained (generically): every frame
    // landed in the counters.
    assert_eq!(observed.globals[0], Value::Int(FRAMES + FRAMES / 5 + 1));
    assert_eq!(
        observed.counters.injected_faults, 1,
        "one injected fault recorded"
    );
}
