//! Ingress wire-format properties (DESIGN.md §15), mirroring the durable
//! image's corruption discipline in `snap_roundtrip.rs`: for arbitrary
//! requests and replies of every frame type, encode → decode is
//! identity; and no corruption — every truncation prefix, seeded bit
//! flips, garbage — ever panics or wedges anything: it is a typed
//! [`IngressError`], and a live server behind a real socket keeps
//! serving other connections afterwards.

#[path = "common/oracle.rs"]
mod oracle;

use oracle::SplitMix;
use pdo_ingress::proto::{decode_reply, decode_request, encode_reply, encode_request, FrameBuffer};
use pdo_ingress::{
    Client, ErrorCode, Ingress, IngressConfig, IngressError, OpenKind, Reply, Request,
    SessionStats, TraceFormat, TraceSelector, WireMode, MAX_FRAME_LEN,
};
use pdo_ir::{BinOp, EventId, FunctionBuilder, Module, Value};
use pdo_server::{Server, ServerConfig};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A small but non-trivial module parameterized by `n` handlers, so
/// `Open{Plain}` frames carry real IR text of varying shape.
fn param_module(n: usize) -> (Module, EventId, Vec<(u32, u32, i32)>) {
    let mut m = Module::new();
    let e = m.add_event("tick");
    let g = m.add_global("acc", Value::Int(0));
    let mut binds = Vec::new();
    for k in 0..n.max(1) {
        let mut fb = FunctionBuilder::new(format!("h{k}"), 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(k as i64 + 1);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        let f = m.add_function(fb.finish());
        binds.push((e.0, f.0, k as i32));
    }
    (m, e, binds)
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Value::bytes),
        "[a-z0-9]{0,16}".prop_map(Value::str),
    ]
}

fn arb_mode() -> impl Strategy<Value = WireMode> {
    prop_oneof![
        Just(WireMode::Sync),
        Just(WireMode::Async),
        any::<u64>().prop_map(|delay_ns| WireMode::Timed { delay_ns }),
    ]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (1usize..5).prop_map(|n| {
            let (module, _, bindings) = param_module(n);
            Request::Open(OpenKind::Plain { module, bindings })
        }),
        Just(Request::Open(OpenKind::Ctp)),
        Just(Request::Open(OpenKind::SecComm)),
        (
            any::<u64>(),
            any::<u32>(),
            arb_mode(),
            proptest::collection::vec(arb_value(), 0..6)
        )
            .prop_map(|(session, event, mode, args)| Request::Raise {
                session,
                event,
                mode,
                args,
            }),
        any::<u64>().prop_map(|session| Request::Query { session }),
        any::<u64>().prop_map(|session| Request::Close { session }),
        Just(Request::MetricsScrape),
        (any::<u64>(), any::<bool>(), any::<bool>()).prop_map(|(v, by_id, chrome)| {
            Request::TraceDump {
                selector: if by_id {
                    TraceSelector::Id(v)
                } else {
                    TraceSelector::LastN(v)
                },
                format: if chrome {
                    TraceFormat::Chrome
                } else {
                    TraceFormat::Lines
                },
            }
        }),
    ]
}

fn arb_reply() -> impl Strategy<Value = Reply> {
    prop_oneof![
        any::<u64>().prop_map(|session| Reply::Opened { session }),
        Just(Reply::Done),
        proptest::array::uniform::<_, 9>(any::<u64>()).prop_map(|v: [u64; 9]| {
            Reply::Stats(SessionStats {
                session: v[0],
                shard: v[1] as u32,
                clock_ns: v[2],
                dispatched: v[3],
                fastpath_hits: v[4],
                guard_misses: v[5],
                chains_live: v[6],
                queued: v[7],
                timers: v[8],
            })
        }),
        any::<bool>().prop_map(|existed| Reply::Closed { existed }),
        any::<u64>().prop_map(|retry_after_ns| Reply::Shed { retry_after_ns }),
        ("[ -~]{0,40}", (1u8..7)).prop_map(|(message, c)| Reply::Error {
            code: ErrorCode::from_byte(c).unwrap(),
            message,
        }),
        // Scrape and trace bodies are free-form text on the wire; throw
        // newlines and quotes at them, not just printable ASCII.
        "(?s).{0,120}".prop_map(|text| Reply::MetricsText { text }),
        "(?s).{0,120}".prop_map(|body| Reply::Trace { body }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode is identity for every request frame type, under
    /// every request id.
    #[test]
    fn request_roundtrip(req in arb_request(), id in any::<u64>()) {
        let frame = encode_request(id, &req);
        let (rid, back) = decode_request(&frame).expect("own encoding decodes");
        prop_assert_eq!(rid, id);
        prop_assert_eq!(back, req);
    }

    /// encode → decode is identity for every reply frame type.
    #[test]
    fn reply_roundtrip(rep in arb_reply(), id in any::<u64>()) {
        let frame = encode_reply(id, &rep);
        let (rid, back) = decode_reply(&frame).expect("own encoding decodes");
        prop_assert_eq!(rid, id);
        prop_assert_eq!(back, rep);
    }

    /// Every truncation prefix of a valid frame is either "need more
    /// bytes" through the stream reassembler — never a spurious frame —
    /// and a typed error through the direct decoder. Seeded bit flips
    /// are always typed errors: the checksum (or the framing fields it
    /// protects) catches every one.
    #[test]
    fn corrupt_frames_are_typed_errors(req in arb_request(), seed in any::<u64>()) {
        let frame = encode_request(7, &req);

        // Every prefix: the reassembler asks for more; the decoder fails
        // typed with a stream-fatal classification.
        for cut in 0..frame.len() {
            let mut fb = FrameBuffer::new();
            fb.extend(&frame[..cut]);
            match fb.next_frame(MAX_FRAME_LEN) {
                Ok(None) => {}
                other => prop_assert!(false, "prefix {} must want more, got {:?}", cut, other),
            }
            match decode_request(&frame[..cut]) {
                Err(e) => prop_assert!(e.is_stream_fatal(), "prefix {} classifies fatal", cut),
                Ok(v) => prop_assert!(false, "prefix {} must fail, got {:?}", cut, v),
            }
        }

        // Seeded bit-flip sweep.
        let mut rng = SplitMix::new(seed ^ 0x1461_55E5);
        for _ in 0..64 {
            let pos = rng.below((frame.len() * 8) as u64) as usize;
            let mut bad = frame.clone();
            bad[pos / 8] ^= 1 << (pos % 8);
            match decode_request(&bad) {
                Err(IngressError::Frame(_) | IngressError::Payload(_)) => {}
                other => prop_assert!(false, "flip {} must fail typed, got {:?}", pos, other),
            }
        }

        // Garbage of assorted sizes through the reassembler: typed error
        // or more-bytes, never a panic, never a decoded frame.
        for len in [0usize, 1, 7, 19, 20, 64, 512] {
            let garbage: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
            let mut fb = FrameBuffer::new();
            fb.extend(&garbage);
            if let Ok(Some(f)) = fb.next_frame(MAX_FRAME_LEN) {
                prop_assert!(
                    decode_request(&f).is_err(),
                    "random garbage cannot decode as a request"
                );
            }
        }
    }
}

/// The live half of the corruption bar: seeded bit-flipped and truncated
/// frames, sent over real loopback connections, never wedge the server —
/// each bad connection ends in a typed reply, a close, or a stall of
/// that connection only, and a fresh client is always served afterwards.
#[test]
fn corrupted_wire_traffic_leaves_the_server_serving() {
    let mut server = Server::new(ServerConfig::default());
    let mut ingress = Ingress::bind(IngressConfig::default(), server.shards()).unwrap();
    let addr = ingress.tcp_addr().unwrap();

    let good = encode_request(
        3,
        &Request::Raise {
            session: 0,
            event: 0,
            mode: WireMode::Async,
            args: vec![Value::Int(9), Value::str("x")],
        },
    );
    let mut rng = SplitMix::new(0x0D15_EA5E);
    let stop = Arc::new(AtomicBool::new(false));
    let attacker_stop = Arc::clone(&stop);
    let attacker = std::thread::spawn(move || {
        for round in 0..24 {
            let mut c = Client::connect_tcp(addr).unwrap();
            c.set_read_timeout(Some(Duration::from_millis(200)))
                .unwrap();
            let mut bad = good.clone();
            if round % 3 == 2 {
                // Truncated frame: the acceptor waits for the rest until
                // we hang up, then sees EOF.
                let cut = 1 + rng.below((bad.len() - 1) as u64) as usize;
                bad.truncate(cut);
            } else {
                let pos = rng.below((bad.len() * 8) as u64) as usize;
                bad[pos / 8] ^= 1 << (pos % 8);
            }
            c.send_raw(&bad).unwrap();
            // Whatever comes back — a typed Error reply, EOF/close, or a
            // read timeout — the failure stays on this connection. A
            // success reply would mean the checksum let corruption
            // through.
            match c.recv_reply() {
                Ok((_, Reply::Error { .. })) => {}
                Ok((rid, other)) => panic!("corrupt frame got success {rid} {other:?}"),
                Err(_) => {}
            }
        }
        attacker_stop.store(true, Ordering::SeqCst);
    });

    // Engine runs while the attacker hammers; bad frames are handled
    // acceptor-side, valid decoded commands drain here.
    ingress.serve(&mut server, &stop).unwrap();
    attacker.join().unwrap();

    // The server still serves a well-behaved client end to end.
    let stop2 = Arc::new(AtomicBool::new(false));
    let health_stop = Arc::clone(&stop2);
    let health = std::thread::spawn(move || {
        let mut c = Client::connect_tcp(addr).unwrap();
        let session = c.open(OpenKind::Ctp).unwrap();
        let stats = c.query(session).unwrap();
        assert_eq!(stats.session, session);
        assert!(c.close(session).unwrap());
        health_stop.store(true, Ordering::SeqCst);
    });
    ingress.serve(&mut server, &stop2).unwrap();
    health.join().unwrap();

    let m = ingress.metrics();
    let corrupt = m
        .counter_value("pdo_ingress_corrupt_streams_total", &[])
        .unwrap_or(0);
    assert!(corrupt >= 1, "the sweep produced at least one fatal stream");
}

/// A `Query` for a session that never existed — or existed and was
/// closed — must come back as a typed `Error{UnknownSession}` reply on a
/// live connection: not a hang, not a stream-fatal close, and certainly
/// not an engine panic (the engine used to resolve the shard with
/// `Server::shard_of`, which panics on unplaced ids).
#[test]
fn query_on_unknown_or_closed_session_is_a_typed_error() {
    let mut server = Server::new(ServerConfig::default());
    let mut ingress = Ingress::bind(IngressConfig::default(), server.shards()).unwrap();
    let addr = ingress.tcp_addr().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let client_stop = Arc::clone(&stop);
    let client = std::thread::spawn(move || {
        let mut c = Client::connect_tcp(addr).unwrap();

        // Never-opened id: typed error, connection survives.
        match c.request(&Request::Query { session: 424242 }).unwrap() {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
            other => panic!("query of unknown session must be a typed error, got {other:?}"),
        }

        // Open → close → query the stale id: same typed error, and the
        // connection is still healthy enough to run a full session
        // lifecycle afterwards.
        let session = c.open(OpenKind::Ctp).unwrap();
        assert!(c.close(session).unwrap());
        match c.request(&Request::Query { session }).unwrap() {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
            other => panic!("query of closed session must be a typed error, got {other:?}"),
        }
        let s2 = c.open(OpenKind::Ctp).unwrap();
        let stats = c.query(s2).unwrap();
        assert_eq!(stats.session, s2);
        assert!(c.close(s2).unwrap());
        client_stop.store(true, Ordering::SeqCst);
    });
    ingress.serve(&mut server, &stop).unwrap();
    client.join().unwrap();
}
