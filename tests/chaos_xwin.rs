//! Chaos conformance on the X client stack: a GUI workload (popup and
//! scroll gestures, plain clicks) delivered over a faulty server
//! connection that can lose, duplicate, reorder, and garble X events,
//! plus equivalence-safe dispatch faults on the X protocol events. An
//! optimized client — monolithic chains, partitioned chains, or a live
//! adaptation engine — must end with the identical display state, the
//! identical widget globals, and (for static chains) the identical fault
//! sequence and robustness counters as the plain client.

#[path = "common/oracle.rs"]
mod oracle;

use oracle::{
    assert_equivalent, chaos_cases, chaos_seed, observe, observe_external, CaseContext, ChaosCase,
    Observed, SplitMix, POLICIES,
};
use pdo::{optimize, AdaptConfig, AdaptiveEngine, Optimization, OptimizeOptions};
use pdo_cactus::EventProgram;
use pdo_events::wire::WireStats;
use pdo_events::{FaultInjector, FaultPolicy, TraceConfig};
use pdo_ir::EventId;
use pdo_profile::Profile;
use pdo_xwin::{x_client_program, FaultyXSession, XClient, XState};

/// Gestures per case.
const GESTURES: usize = 30;

/// One scripted gesture (derived deterministically per case).
#[derive(Debug, Clone, Copy)]
enum Gesture {
    Popup(i64, i64),
    PlainClick(i64, i64),
    Scroll(i64),
}

/// Externally visible client state after a session.
#[derive(Debug, Clone, PartialEq)]
struct XObs {
    state: XState,
    wire: WireStats,
    errors: Vec<String>,
}

fn case_gestures(case_seed: u64) -> Vec<Gesture> {
    let mut rng = SplitMix::new(case_seed ^ 0x0077_1DE5);
    (0..GESTURES)
        .map(|_| match rng.below(4) {
            0 | 1 => Gesture::Popup(rng.below(500) as i64, rng.below(500) as i64),
            2 => Gesture::PlainClick(rng.below(500) as i64, rng.below(500) as i64),
            _ => Gesture::Scroll(rng.below(800) as i64),
        })
        .collect()
}

fn fault_events(program: &EventProgram) -> Vec<EventId> {
    ["ButtonPress", "MotionNotify"]
        .iter()
        .map(|name| program.module.event_by_name(name).expect("X event"))
        .collect()
}

/// Profiles the happy-path GUI workload and optimizes, as the end-to-end
/// suite does; `fuel_boundaries` keeps fuel exhaustion equivalence-safe.
fn optimized(program: &EventProgram, partitioned: bool) -> Optimization {
    let mut client = XClient::new(program).expect("profiling client");
    client.runtime_mut().set_trace_config(TraceConfig::full());
    for i in 0..250 {
        client.popup(i, i).expect("popup");
        client.scroll(i).expect("scroll");
    }
    let profile = Profile::from_trace(&client.runtime_mut().take_trace(), 100);
    let mut opts = OptimizeOptions::new(100);
    opts.partitioned = partitioned;
    opts.fuel_boundaries = true;
    let opt = optimize(
        &program.module,
        client.runtime().registry(),
        &profile,
        &opts,
    );
    assert!(
        !opt.chains.is_empty(),
        "X client must produce compiled chains"
    );
    opt
}

fn adapt_config() -> AdaptConfig {
    let mut opts = OptimizeOptions::new(8);
    opts.fuel_boundaries = true;
    AdaptConfig {
        epoch_ns: 20_000_000,
        min_fresh_events: 16,
        opts,
        trace_sleep_epochs: 1,
        ..AdaptConfig::default()
    }
}

/// Runs one seeded session and snapshots it.
fn run_case(
    prog: &EventProgram,
    base_globals: usize,
    opt: Option<&Optimization>,
    case: &ChaosCase,
    policy: FaultPolicy,
    gestures: &[Gesture],
    adaptive: bool,
) -> Observed<XObs> {
    let mut client = XClient::new(prog).expect("client");
    oracle::arm_flight_recorder(client.runtime_mut());
    if let Some(o) = opt {
        o.install_chains(client.runtime_mut());
    }
    client.runtime_mut().set_fault_policy(policy);
    client
        .runtime_mut()
        .set_fault_injector(FaultInjector::from_plan(case.plan.iter().copied()));
    let engine = if adaptive {
        Some(AdaptiveEngine::attach_new(
            client.runtime_mut(),
            adapt_config(),
        ))
    } else {
        client.runtime_mut().set_trace_config(TraceConfig::full());
        None
    };

    let mut session = FaultyXSession::new(client, case.wire);
    let mut errors = Vec::new();
    for (i, g) in gestures.iter().enumerate() {
        let outcome = match *g {
            Gesture::Popup(x, y) => session.popup(x, y),
            Gesture::PlainClick(x, y) => session.plain_click(x, y),
            Gesture::Scroll(y) => session.scroll(y),
        };
        if let Err(e) = outcome {
            errors.push(format!("gesture {i}: {e:?}"));
        }
        // Advance the virtual clock between gestures (fires epoch hooks
        // when an engine is attached; a no-op otherwise).
        session.client_mut().runtime_mut().advance_clock(20_000_000);
    }
    if let Err(e) = session.settle() {
        errors.push(format!("settle: {e:?}"));
    }

    let obs = XObs {
        state: session.client().state(),
        wire: session.wire_stats(),
        errors,
    };
    drop(engine);
    if adaptive {
        observe_external(session.client().runtime(), base_globals, obs)
    } else {
        observe(session.client_mut().runtime_mut(), base_globals, obs)
    }
}

#[test]
fn xwin_chaos_conformance_static_chains() {
    let program = x_client_program();
    let base_globals = program.module.globals.len();
    let events = fault_events(&program);
    let forms: Vec<(&str, Optimization, EventProgram)> = [false, true]
        .into_iter()
        .map(|partitioned| {
            let opt = optimized(&program, partitioned);
            let opt_program = program.with_module(opt.module.clone());
            (
                if partitioned {
                    "partitioned"
                } else {
                    "monolithic"
                },
                opt,
                opt_program,
            )
        })
        .collect();

    let base = chaos_seed();
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 6, GESTURES as u64);
        let gestures = case_gestures(case.seed);
        for policy in POLICIES {
            let reference = run_case(
                &program,
                base_globals,
                None,
                &case,
                policy,
                &gestures,
                false,
            );
            for (form, opt, opt_program) in &forms {
                let observed = run_case(
                    opt_program,
                    base_globals,
                    Some(opt),
                    &case,
                    policy,
                    &gestures,
                    false,
                );
                let ctx = CaseContext {
                    substrate: "xwin",
                    chain_form: form,
                    policy,
                    case: &case,
                };
                assert_equivalent(&ctx, &reference, &observed);
            }
        }
    }
}

#[test]
fn xwin_chaos_conformance_adaptive_engine_live() {
    let program = x_client_program();
    let base_globals = program.module.globals.len();
    let events = fault_events(&program);

    let base = chaos_seed() ^ 0xADA9_71FE;
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 6, GESTURES as u64);
        let gestures = case_gestures(case.seed);
        for policy in POLICIES {
            let mut reference = run_case(
                &program,
                base_globals,
                None,
                &case,
                policy,
                &gestures,
                false,
            );
            // External outputs only: the engine drains trace/stats.
            reference.faults = Vec::new();
            reference.counters = pdo_events::ObservableStats::default();
            let observed = run_case(&program, base_globals, None, &case, policy, &gestures, true);
            let ctx = CaseContext {
                substrate: "xwin",
                chain_form: "adaptive",
                policy,
                case: &case,
            };
            assert_equivalent(&ctx, &reference, &observed);
        }
    }
}
