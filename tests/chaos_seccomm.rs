//! Chaos conformance on the real SecComm stack: encrypt/MAC round-trips
//! over a seeded lossy datagram link (drops, duplicates, reorders, and
//! corruption that must land as counted MAC-failure drops, never handler
//! faults), with equivalence-safe dispatch faults injected on both the
//! sender's and receiver's coordinator events. Optimized endpoints —
//! monolithic, partitioned, or hot-swapped by a live adaptation engine —
//! must deliver byte-identical plaintexts, the same drop counts, the same
//! error outcomes, and (for static chains) the same fault sequence and
//! robustness counters as the plain endpoints.

#[path = "common/oracle.rs"]
mod oracle;

use oracle::{
    assert_equivalent, chaos_cases, chaos_seed, observe, observe_external, CaseContext, ChaosCase,
    Observed, SplitMix, POLICIES,
};
use pdo::{optimize, AdaptConfig, AdaptiveEngine, Optimization, OptimizeOptions};
use pdo_cactus::EventProgram;
use pdo_events::wire::WireStats;
use pdo_events::{FaultInjector, FaultPolicy, Runtime, TraceConfig};
use pdo_ir::EventId;
use pdo_profile::Profile;
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, LossyChannel, CONFIG_FULL};
use std::cell::RefCell;
use std::rc::Rc;

/// Messages per case.
const MESSAGES: usize = 10;

/// Externally visible channel state after a session.
#[derive(Debug, Clone, PartialEq)]
struct SecObs {
    delivered: Vec<Vec<u8>>,
    mac_dropped: u64,
    mac_failures: u64,
    wire: WireStats,
    errors: Vec<String>,
}

fn case_payloads(case_seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SplitMix::new(case_seed ^ 0x5EC_C033);
    (0..MESSAGES)
        .map(|_| {
            let len = rng.below(240) as usize;
            (0..len).map(|_| rng.below(256) as u8).collect()
        })
        .collect()
}

/// Profiles happy-path round-trips and optimizes, as the end-to-end suite
/// does; `fuel_boundaries` keeps fuel exhaustion equivalence-safe.
fn optimized(program: &EventProgram, keys: &Keys, partitioned: bool) -> Optimization {
    let mut ep = Endpoint::new(program, keys).expect("profiling endpoint");
    ep.runtime_mut().set_trace_config(TraceConfig::full());
    let mut wires = Vec::new();
    for i in 0..60u32 {
        wires.push(ep.push(&[i as u8; 200]).expect("push"));
    }
    for w in &wires {
        let _ = ep.pop(w).expect("pop");
    }
    let profile = Profile::from_trace(&ep.runtime_mut().take_trace(), 30);
    let mut opts = OptimizeOptions::new(30);
    opts.partitioned = partitioned;
    opts.fuel_boundaries = true;
    let opt = optimize(&program.module, ep.runtime().registry(), &profile, &opts);
    assert!(
        !opt.chains.is_empty(),
        "SecComm must produce compiled chains"
    );
    opt
}

fn adapt_config() -> AdaptConfig {
    let mut opts = OptimizeOptions::new(8);
    opts.fuel_boundaries = true;
    AdaptConfig {
        epoch_ns: 30_000_000,
        min_fresh_events: 16,
        opts,
        trace_sleep_epochs: 1,
        ..AdaptConfig::default()
    }
}

type Engine = Rc<RefCell<AdaptiveEngine>>;

/// Configures one endpoint for a run: chains or engine, containment
/// policy, and the side's share of the dispatch-fault plan.
fn prepare(
    rt: &mut Runtime,
    opt: Option<&Optimization>,
    policy: FaultPolicy,
    case: &ChaosCase,
    side_event: EventId,
    adaptive: bool,
) -> Option<Engine> {
    oracle::arm_flight_recorder(rt);
    if let Some(o) = opt {
        o.install_chains(rt);
    }
    rt.set_fault_policy(policy);
    rt.set_fault_injector(FaultInjector::from_plan(
        case.plan.iter().filter(|s| s.event == side_event).copied(),
    ));
    if adaptive {
        Some(AdaptiveEngine::attach_new(rt, adapt_config()))
    } else {
        rt.set_trace_config(TraceConfig::full());
        None
    }
}

/// Runs one seeded session over a [`LossyChannel`] and snapshots both
/// sides. Returns `(tx snapshot, rx snapshot)`; the rx snapshot carries
/// the channel's external state.
fn run_case(
    prog: &EventProgram,
    base_globals: usize,
    opt: Option<&Optimization>,
    case: &ChaosCase,
    policy: FaultPolicy,
    payloads: &[Vec<u8>],
    adaptive: bool,
) -> (Observed<()>, Observed<SecObs>) {
    let keys = Keys::default();
    let from_user = prog.module.event_by_name("msgFromUser").expect("event");
    let from_net = prog.module.event_by_name("msgFromNet").expect("event");
    let mut tx = Endpoint::new(prog, &keys).expect("tx");
    let mut rx = Endpoint::new(prog, &keys).expect("rx");
    let tx_engine = prepare(tx.runtime_mut(), opt, policy, case, from_user, adaptive);
    let rx_engine = prepare(rx.runtime_mut(), opt, policy, case, from_net, adaptive);

    let mut ch = LossyChannel::new(tx, rx, case.wire);
    let mut errors = Vec::new();
    for (i, payload) in payloads.iter().enumerate() {
        if let Err(e) = ch.send(payload) {
            errors.push(format!("send {i}: {e:?}"));
        }
        // Advance both virtual clocks between bursts (fires epoch hooks
        // when an engine is attached; a no-op otherwise).
        ch.tick(30_000_000);
    }
    if let Err(e) = ch.settle() {
        errors.push(format!("settle: {e:?}"));
    }

    let obs = SecObs {
        delivered: ch.delivered().to_vec(),
        mac_dropped: ch.mac_dropped(),
        mac_failures: ch.rx_mut().mac_failures(),
        wire: ch.wire_stats(),
        errors,
    };
    drop((tx_engine, rx_engine));
    if adaptive {
        (
            observe_external(ch.tx_mut().runtime(), base_globals, ()),
            observe_external(ch.rx_mut().runtime(), base_globals, obs),
        )
    } else {
        (
            observe(ch.tx_mut().runtime_mut(), base_globals, ()),
            observe(ch.rx_mut().runtime_mut(), base_globals, obs),
        )
    }
}

fn fault_events(program: &EventProgram) -> Vec<EventId> {
    ["msgFromUser", "msgFromNet"]
        .iter()
        .map(|name| program.module.event_by_name(name).expect("event"))
        .collect()
}

#[test]
fn seccomm_chaos_conformance_static_chains() {
    let proto = seccomm_protocol();
    let program = proto.instantiate(CONFIG_FULL).expect("full config");
    let base_globals = program.module.globals.len();
    let events = fault_events(&program);
    let keys = Keys::default();
    let forms: Vec<(&str, Optimization, EventProgram)> = [false, true]
        .into_iter()
        .map(|partitioned| {
            let opt = optimized(&program, &keys, partitioned);
            let opt_program = program.with_module(opt.module.clone());
            (
                if partitioned {
                    "partitioned"
                } else {
                    "monolithic"
                },
                opt,
                opt_program,
            )
        })
        .collect();

    let base = chaos_seed();
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 6, MESSAGES as u64);
        let payloads = case_payloads(case.seed);
        for policy in POLICIES {
            let (ref_tx, ref_rx) = run_case(
                &program,
                base_globals,
                None,
                &case,
                policy,
                &payloads,
                false,
            );
            for (form, opt, opt_program) in &forms {
                let (obs_tx, obs_rx) = run_case(
                    opt_program,
                    base_globals,
                    Some(opt),
                    &case,
                    policy,
                    &payloads,
                    false,
                );
                let ctx = CaseContext {
                    substrate: "seccomm",
                    chain_form: form,
                    policy,
                    case: &case,
                };
                assert_equivalent(&ctx, &ref_tx, &obs_tx);
                assert_equivalent(&ctx, &ref_rx, &obs_rx);
            }
        }
    }
}

#[test]
fn seccomm_chaos_conformance_adaptive_engine_live() {
    let proto = seccomm_protocol();
    let program = proto.instantiate(CONFIG_FULL).expect("full config");
    let base_globals = program.module.globals.len();
    let events = fault_events(&program);

    let base = chaos_seed() ^ 0xADA9_71FE;
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 6, MESSAGES as u64);
        let payloads = case_payloads(case.seed);
        for policy in POLICIES {
            let (mut ref_tx, mut ref_rx) = run_case(
                &program,
                base_globals,
                None,
                &case,
                policy,
                &payloads,
                false,
            );
            // External outputs only: the engines drain trace/stats.
            ref_tx.redact();
            ref_rx.redact();
            let (obs_tx, obs_rx) =
                run_case(&program, base_globals, None, &case, policy, &payloads, true);
            let ctx = CaseContext {
                substrate: "seccomm",
                chain_form: "adaptive",
                policy,
                case: &case,
            };
            assert_equivalent(&ctx, &ref_tx, &obs_tx);
            assert_equivalent(&ctx, &ref_rx, &obs_rx);
        }
    }
}

/// Clears the engine-drained fields so a full snapshot compares against an
/// external-only one.
trait Redact {
    fn redact(&mut self);
}

impl<S> Redact for Observed<S> {
    fn redact(&mut self) {
        self.faults = Vec::new();
        self.counters = pdo_events::ObservableStats::default();
    }
}
