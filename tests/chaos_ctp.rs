//! Chaos conformance on the real CTP stack: for any seeded case of wire
//! faults (drop/duplicate/reorder/corrupt, under the endpoint's FEC +
//! retransmission machinery) and equivalence-safe dispatch faults, a video
//! transfer through an optimized endpoint — monolithic chains, partitioned
//! chains, or a live adaptation engine hot-swapping chains mid-session —
//! must be observationally identical to the plain endpoint: same delivered
//! payload, same link statistics, same final globals, same fault sequence
//! and robustness counters (external outputs only for adaptive sessions,
//! whose engine drains the trace and stats every epoch).

#[path = "common/oracle.rs"]
mod oracle;

use oracle::{
    arm_flight_recorder, assert_equivalent, chaos_cases, chaos_seed, observe, observe_external,
    CaseContext, ChaosCase, Observed, SplitMix, POLICIES,
};
use pdo::{optimize, AdaptConfig, AdaptiveEngine, Optimization, OptimizeOptions};
use pdo_cactus::EventProgram;
use pdo_ctp::{ctp_program, CtpEndpoint, CtpError, CtpParams, VideoPlayer};
use pdo_events::{FaultInjector, FaultPolicy, TraceConfig};
use pdo_ir::EventId;
use pdo_profile::Profile;

/// Application messages per case.
const MESSAGES: usize = 6;

/// Externally visible CTP state: what the receiver model reassembled, the
/// link statistics, and any surfaced session error (e.g. PeerUnreachable).
#[derive(Debug, Clone, PartialEq)]
struct CtpObs {
    delivered: Vec<u8>,
    stats: pdo_ctp::CtpStats,
    error: Option<String>,
}

/// Events whose top-level occurrences the fault plans key on.
fn fault_events(program: &EventProgram) -> Vec<EventId> {
    [
        "SendMsg",
        "SegmentAcked",
        "SegmentTimeout",
        "ControllerClkL",
    ]
    .iter()
    .map(|name| program.module.event_by_name(name).expect("CTP event"))
    .collect()
}

/// Deterministic per-case application payloads.
fn case_payloads(case_seed: u64) -> Vec<Vec<u8>> {
    let mut rng = SplitMix::new(case_seed ^ 0x7A71_0AD5);
    (0..MESSAGES)
        .map(|_| {
            let len = 1 + rng.below(300) as usize;
            (0..len).map(|_| rng.below(256) as u8).collect()
        })
        .collect()
}

/// Profiles the happy-path video workload and optimizes, as the end-to-end
/// suite does; `fuel_boundaries` keeps fuel exhaustion equivalence-safe.
fn optimized(program: &EventProgram, partitioned: bool) -> Optimization {
    let params = CtpParams {
        clk_period_ns: 40_000_000,
        ..CtpParams::default()
    };
    let mut e = CtpEndpoint::new(program, params).expect("profiling endpoint");
    e.open().expect("open");
    e.runtime_mut().set_trace_config(TraceConfig::full());
    let mut player = VideoPlayer::new(e, 25);
    player.play(120).expect("profiling session");
    let mut e = player.into_endpoint();
    let profile = Profile::from_trace(&e.runtime_mut().take_trace(), 90);
    let mut opts = OptimizeOptions::new(90);
    opts.partitioned = partitioned;
    opts.fuel_boundaries = true;
    let opt = optimize(&program.module, e.runtime().registry(), &profile, &opts);
    assert!(!opt.chains.is_empty(), "CTP must produce compiled chains");
    opt
}

/// Adaptation config for the live-engine runs: epochs short enough that
/// chains deploy (and faults land) mid-session, with a trace duty cycle so
/// swaps also happen off sampled epochs.
fn adapt_config() -> AdaptConfig {
    let mut opts = OptimizeOptions::new(8);
    opts.fuel_boundaries = true;
    AdaptConfig {
        epoch_ns: 40_000_000,
        min_fresh_events: 16,
        opts,
        trace_sleep_epochs: 1,
        ..AdaptConfig::default()
    }
}

/// Runs one seeded session and snapshots it. `opt` installs static chains;
/// `adaptive` attaches a live engine instead (external-only snapshot).
fn run_case(
    prog: &EventProgram,
    base_globals: usize,
    opt: Option<&Optimization>,
    case: &ChaosCase,
    policy: FaultPolicy,
    payloads: &[Vec<u8>],
    adaptive: bool,
) -> Observed<CtpObs> {
    let params = CtpParams {
        link_faults: case.wire,
        ..CtpParams::default()
    };
    let mut e = CtpEndpoint::new(prog, params).expect("endpoint");
    arm_flight_recorder(e.runtime_mut());
    if let Some(o) = opt {
        o.install_chains(e.runtime_mut());
    }
    e.runtime_mut().set_fault_policy(policy);
    e.runtime_mut()
        .set_fault_injector(FaultInjector::from_plan(case.plan.iter().copied()));
    let engine = if adaptive {
        Some(AdaptiveEngine::attach_new(e.runtime_mut(), adapt_config()))
    } else {
        e.runtime_mut().set_trace_config(TraceConfig::full());
        None
    };

    let outcome = (|| -> Result<(), CtpError> {
        e.open()?;
        for (i, p) in payloads.iter().enumerate() {
            e.send(p)?;
            e.run_until((i as u64 + 1) * 60_000_000)?;
        }
        e.drain(400_000_000)?;
        Ok(())
    })();
    let obs = CtpObs {
        delivered: e.received_payload(),
        stats: e.stats(),
        error: outcome.err().map(|err| format!("{err:?}")),
    };
    drop(engine);
    if adaptive {
        observe_external(e.runtime(), base_globals, obs)
    } else {
        observe(e.runtime_mut(), base_globals, obs)
    }
}

#[test]
fn ctp_chaos_conformance_static_chains() {
    let program = ctp_program();
    let base_globals = program.module.globals.len();
    let events = fault_events(&program);
    let forms: Vec<(&str, Optimization, EventProgram)> = [false, true]
        .into_iter()
        .map(|partitioned| {
            let opt = optimized(&program, partitioned);
            let opt_program = program.with_module(opt.module.clone());
            (
                if partitioned {
                    "partitioned"
                } else {
                    "monolithic"
                },
                opt,
                opt_program,
            )
        })
        .collect();

    let base = chaos_seed();
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 6, 24);
        let payloads = case_payloads(case.seed);
        for policy in POLICIES {
            let reference = run_case(
                &program,
                base_globals,
                None,
                &case,
                policy,
                &payloads,
                false,
            );
            for (form, opt, opt_program) in &forms {
                let observed = run_case(
                    opt_program,
                    base_globals,
                    Some(opt),
                    &case,
                    policy,
                    &payloads,
                    false,
                );
                let ctx = CaseContext {
                    substrate: "ctp",
                    chain_form: form,
                    policy,
                    case: &case,
                };
                assert_equivalent(&ctx, &reference, &observed);
            }
        }
    }
}

#[test]
fn ctp_chaos_conformance_adaptive_engine_live() {
    let program = ctp_program();
    let base_globals = program.module.globals.len();
    let events = fault_events(&program);

    let base = chaos_seed() ^ 0xADA9_71FE;
    for i in 0..chaos_cases() {
        let case = ChaosCase::derive(base.wrapping_add(i), &events, 6, 24);
        let payloads = case_payloads(case.seed);
        for policy in POLICIES {
            // External outputs only: the engine drains trace/stats, so the
            // reference snapshot must be taken the same way.
            let mut reference = run_case(
                &program,
                base_globals,
                None,
                &case,
                policy,
                &payloads,
                false,
            );
            reference.faults = Vec::new();
            reference.counters = pdo_events::ObservableStats::default();
            let observed = run_case(&program, base_globals, None, &case, policy, &payloads, true);
            let ctx = CaseContext {
                substrate: "ctp",
                chain_form: "adaptive",
                policy,
                case: &case,
            };
            assert_equivalent(&ctx, &reference, &observed);
        }
    }
}
