//! Observability: scrape a live sharded server and dump its flight
//! recorders.
//!
//! ```text
//! cargo run --example observability
//! ```
//!
//! Builds a two-shard [`pdo_server::Server`] hosting three kinds of
//! session — a plain event program under adaptive specialization, a CTP
//! video endpoint over a deliberately faulty link, and a SecComm secure
//! channel fed one tampered packet — drives load into all of them, then:
//!
//! 1. scrapes one server-wide [`pdo_obs::MetricsSnapshot`] and prints its
//!    Prometheus-style text exposition (dispatch-latency histograms split
//!    fast/slow, adaptation gauges, wire/CTP/SecComm fault counters, all
//!    labelled by shard), and
//! 2. prints each session's flight-recorder tail — the post-mortem view
//!    of what the dispatcher and the adaptation loop just did.

use pdo::AdaptConfig;
use pdo_ctp::{ctp_program, CtpParams};
use pdo_events::wire::WireFaults;
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, Value};
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_FULL};
use pdo_server::{Server, ServerConfig};

/// One event, two handlers — repetitive enough that the adaptation
/// engine compiles a chain mid-run.
fn hot_module() -> (Module, EventId, Vec<(EventId, FuncId, i32)>) {
    let mut m = Module::new();
    let tick = m.add_event("Tick");
    let acc = m.add_global("acc", Value::Int(0));
    let mut handlers = Vec::new();
    for (name, d) in [("count", 1i64), ("weight", 2)] {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(acc);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(acc, o);
        fb.ret(None);
        handlers.push(m.add_function(fb.finish()));
    }
    let bindings = handlers
        .iter()
        .enumerate()
        .map(|(i, &h)| (tick, h, i as i32))
        .collect();
    (m, tick, bindings)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two shards on two worker threads: every runtime below is built and
    // driven on a shard-owned thread; this coordinator only ships
    // commands and closures over the per-shard channels.
    let mut server = Server::new(ServerConfig {
        shards: 2,
        threads: 2,
        adapt: AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: pdo::OptimizeOptions::new(10),
            ..Default::default()
        },
        ..Default::default()
    });

    // Plain session: hammer one event until a chain installs.
    let (m, tick, bindings) = hot_module();
    let plain = server.open_session(m, Default::default(), &bindings)?;
    for i in 0..80u64 {
        server.submit(plain, tick, i * 100 + 100, &[])?;
    }
    server.run_until(80 * 100 + 1)?;

    // CTP session over a faulty link: drops, duplicates, reordering, and
    // corruption all show up as wire fault counters. Link-level trouble
    // may surface as a session error — the metrics survive regardless.
    let ctp = server.open_ctp_session(
        &ctp_program(),
        CtpParams {
            link_faults: WireFaults {
                drop_per_mille: 200,
                dup_per_mille: 150,
                reorder_per_mille: 200,
                corrupt_per_mille: 150,
                seed: 7,
            },
            ..Default::default()
        },
    )?;
    for i in 0..6u64 {
        let payload = vec![i as u8; 40 + i as usize * 17];
        let _ = server.with_ctp(ctp, move |ep| ep.send(&payload))?;
        let _ = server.run_until(8_001 + (i + 1) * 50_000_000);
    }

    // SecComm session: one tampered packet bumps the MAC-failure counter.
    let keys = Keys::default();
    let sec_program = seccomm_protocol().instantiate(CONFIG_FULL)?;
    let sec = server.open_seccomm_session(&sec_program, &keys)?;
    let mut sender = Endpoint::new(&sec_program, &keys)?;
    let mut wire = sender.push(b"tamper with me")?;
    let mid = wire.len() / 2;
    wire[mid] ^= 0xFF;
    let _ = server.with_seccomm(sec, move |ep| ep.pop(&wire))?;

    // --- 1. The scrape: one snapshot, every layer, every shard. ---------
    println!("==== metrics scrape ====");
    print!("{}", server.metrics().render());

    // --- 2. The post-mortem: per-session flight-recorder tails. ---------
    println!("\n==== flight recorders (last 16 records per session) ====");
    print!("{}", server.dump_flight_recorders(16));
    Ok(())
}
