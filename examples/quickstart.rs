//! Quickstart: the full profile-directed optimization cycle on a small
//! event program.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! 1. Declare events, state, and handlers (in the handler IR).
//! 2. Run a profiling session with tracing enabled.
//! 3. Build the event/handler profile and optimize.
//! 4. Run the optimized program on its guarded fast path and compare the
//!    dispatch cost counters.

use pdo::{optimize, OptimizeOptions};
use pdo_events::{Runtime, TraceConfig};
use pdo_ir::{BinOp, FunctionBuilder, Module, RaiseMode, Value};
use pdo_profile::Profile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. The program: one event, three handlers sharing state. -------
    let mut module = Module::new();
    let packet_in = module.add_event("PacketIn");
    let checksum_ok = module.add_event("ChecksumOk");
    let stats = module.add_global("packets", Value::Int(0));
    let bytes_total = module.add_global("bytes", Value::Int(0));

    // Handler 1: count the packet.
    let mut b = FunctionBuilder::new("count_packet", 1);
    b.lock(stats);
    let v = b.load_global(stats);
    let one = b.const_int(1);
    let v2 = b.bin(BinOp::Add, v, one);
    b.store_global(stats, v2);
    b.unlock(stats);
    b.ret(None);
    let count_packet = module.add_function(b.finish());

    // Handler 2: account its bytes, then raise ChecksumOk synchronously —
    // an event chain in the making.
    let mut b = FunctionBuilder::new("account_bytes", 1);
    b.lock(bytes_total);
    let t = b.load_global(bytes_total);
    let len = b.bytes_len(b.param(0));
    let t2 = b.bin(BinOp::Add, t, len);
    b.store_global(bytes_total, t2);
    b.unlock(bytes_total);
    b.raise(checksum_ok, RaiseMode::Sync, &[b.param(0)]);
    b.ret(None);
    let account_bytes = module.add_function(b.finish());

    // ChecksumOk handler: verify the first byte (toy checksum).
    let mut b = FunctionBuilder::new("verify", 1);
    let zero = b.const_int(0);
    let _first = b.bytes_get(b.param(0), zero);
    b.ret(None);
    let verify = module.add_function(b.finish());

    // --- 2. Profile a run. ----------------------------------------------
    let mut rt = Runtime::new(module.clone());
    rt.bind(packet_in, count_packet, 0)?;
    rt.bind(packet_in, account_bytes, 1)?;
    rt.bind(checksum_ok, verify, 0)?;
    rt.set_trace_config(TraceConfig::full());
    for i in 0..1000u32 {
        let payload = Value::bytes(vec![i as u8; 64]);
        rt.raise(packet_in, RaiseMode::Sync, &[payload])?;
    }
    let profile = Profile::from_trace(&rt.take_trace(), 500);
    println!(
        "profiled: {} events in the graph, {} chains",
        profile.event_graph.node_count(),
        profile.chains().len()
    );

    // --- 3. Optimize. ----------------------------------------------------
    let opt = optimize(&module, rt.registry(), &profile, &OptimizeOptions::new(500));
    println!("{}", opt.report.render(&opt.module));

    // --- 4. Run both and compare dispatch costs. --------------------------
    let run = |m: &Module, install: bool| -> Result<_, Box<dyn std::error::Error>> {
        let mut rt = Runtime::new(m.clone());
        rt.bind(packet_in, count_packet, 0)?;
        rt.bind(packet_in, account_bytes, 1)?;
        rt.bind(checksum_ok, verify, 0)?;
        if install {
            opt.install_chains(&mut rt);
        }
        for i in 0..1000u32 {
            let payload = Value::bytes(vec![i as u8; 64]);
            rt.raise(packet_in, RaiseMode::Sync, &[payload])?;
        }
        Ok((rt.global(stats).clone(), rt.cost))
    };

    let (packets_orig, cost_orig) = run(&module, false)?;
    let (packets_opt, cost_opt) = run(&opt.module, true)?;
    assert_eq!(packets_orig, packets_opt, "same observable behaviour");

    println!("\ndispatch cost, original : {cost_orig}");
    println!("dispatch cost, optimized: {cost_opt}");
    println!(
        "\nabstract work: {} -> {} ({}% of original)",
        cost_orig.weighted_total(),
        cost_opt.weighted_total(),
        cost_opt.weighted_total() * 100 / cost_orig.weighted_total().max(1)
    );
    Ok(())
}
