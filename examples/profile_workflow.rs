//! The offline profiling workflow (paper §3.1): run instrumented, save the
//! profile as a JSON artifact, reload it, optimize against it — the two
//! phases can happen in different processes.
//!
//! ```text
//! cargo run --example profile_workflow
//! ```

use pdo::{optimize, OptimizeOptions};
use pdo_events::TraceConfig;
use pdo_profile::{load_profile, save_profile, Profile};
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_PAPER};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let proto = seccomm_protocol();
    let program = proto.instantiate(CONFIG_PAPER)?;
    let keys = Keys::default();
    let path = std::env::temp_dir().join("pdo-seccomm-profile.json");

    // ---- Phase 1: the instrumented run (could be its own process). ------
    {
        let mut ep = Endpoint::new(&program, &keys)?;
        ep.runtime_mut().set_trace_config(TraceConfig::full());
        let mut wires = Vec::new();
        for i in 0..200u32 {
            wires.push(ep.push(&[i as u8; 128])?);
        }
        for w in &wires {
            let _ = ep.pop(w)?;
        }
        let profile = Profile::from_trace(&ep.runtime_mut().take_trace(), 100);
        save_profile(&profile, &path)?;
        println!(
            "phase 1: saved profile to {} ({} graph nodes, {} handler-graph events)",
            path.display(),
            profile.event_graph.node_count(),
            profile.handler_graph.sequences.len(),
        );
    }

    // ---- Phase 2: offline optimization against the saved artifact. ------
    {
        let profile = load_profile(&path)?;
        println!(
            "phase 2: loaded profile (threshold {}), chains: {:?}",
            profile.threshold,
            profile
                .chains()
                .iter()
                .map(|c| c
                    .iter()
                    .map(|&e| program.module.event_name(e).to_string())
                    .collect::<Vec<_>>()
                    .join("->"))
                .collect::<Vec<_>>()
        );

        // The registry state must match the profiled configuration; build
        // it the same way (same binding plan => same versions).
        let reference = Endpoint::new(&program, &keys)?;
        let opt = optimize(
            &program.module,
            reference.runtime().registry(),
            &profile,
            &OptimizeOptions::new(profile.threshold),
        );
        println!("\n{}", opt.report.render(&opt.module));

        // Deploy.
        let opt_program = program.with_module(opt.module.clone());
        let mut ep = Endpoint::new(&opt_program, &keys)?;
        opt.install_chains(ep.runtime_mut());
        let wire = ep.push(b"deployed")?;
        assert_eq!(ep.pop(&wire)?, b"deployed");
        println!(
            "deployed: roundtrip ok, fast-path hits = {}",
            ep.runtime().cost.fastpath_hits
        );
    }

    let _ = std::fs::remove_file(&path);
    Ok(())
}
