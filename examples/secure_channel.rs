//! The SecComm scenario: a configurable secure channel whose push/pop
//! chains get merged into guarded super-handlers.
//!
//! ```text
//! cargo run --release --example secure_channel
//! ```

use pdo::{optimize, OptimizeOptions};
use pdo_events::TraceConfig;
use pdo_profile::Profile;
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_FULL, CONFIG_PAPER};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let proto = seccomm_protocol();
    println!(
        "micro-protocols available: {:?}",
        proto.micro_protocol_names()
    );

    // The paper's measured configuration: DES + XOR + coordinator.
    let program = proto.instantiate(CONFIG_PAPER)?;
    let keys = Keys::default();

    // Profile.
    let mut ep = Endpoint::new(&program, &keys)?;
    let _ = ep.push(b"dummy")?; // initialization message, as in the paper
    ep.runtime_mut().set_trace_config(TraceConfig::full());
    let mut wires = Vec::new();
    for i in 0..100u32 {
        wires.push(ep.push(&vec![i as u8; 256])?);
    }
    for w in &wires {
        let _ = ep.pop(w)?;
    }
    let profile = Profile::from_trace(&ep.runtime_mut().take_trace(), 50);
    println!("\npush/pop chains observed:");
    for chain in profile.chains() {
        let names: Vec<&str> = chain
            .iter()
            .map(|&e| program.module.event_name(e))
            .collect();
        println!("  {}", names.join(" -> "));
    }

    // Optimize and compare.
    let opt = optimize(
        &program.module,
        ep.runtime().registry(),
        &profile,
        &OptimizeOptions::new(50),
    );
    println!("\n{}", opt.report.render(&opt.module));

    let opt_program = program.with_module(opt.module.clone());
    for (label, prog, install) in [
        ("original", &program, false),
        ("optimized", &opt_program, true),
    ] {
        let mut tx = Endpoint::new(prog, &keys)?;
        let mut rx = Endpoint::new(prog, &keys)?;
        if install {
            opt.install_chains(tx.runtime_mut());
            opt.install_chains(rx.runtime_mut());
        }
        let msg = vec![7u8; 512];
        let t0 = Instant::now();
        for _ in 0..2000 {
            let wire = tx.push(&msg)?;
            let back = rx.pop(&wire)?;
            assert_eq!(back, msg);
        }
        println!(
            "{label:>9}: 2000 roundtrips in {:.2} ms (fast-path hits: {})",
            t0.elapsed().as_secs_f64() * 1e3,
            tx.runtime().cost.fastpath_hits + rx.runtime().cost.fastpath_hits,
        );
    }

    // The richer configuration with integrity: tamper detection still works
    // through the optimized path.
    let full = proto.instantiate(CONFIG_FULL)?;
    let mut tx = Endpoint::new(&full, &keys)?;
    let mut rx = Endpoint::new(&full, &keys)?;
    let mut wire = tx.push(b"important")?;
    let n = wire.len();
    wire[n - 1] ^= 0xFF;
    match rx.pop(&wire) {
        Err(e) => println!("\nfull config: tampering detected as expected: {e}"),
        Ok(_) => unreachable!("MAC must catch the flip"),
    }
    Ok(())
}
