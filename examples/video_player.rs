//! The paper's video-player scenario end to end: profile the CTP-based
//! player, optimize its hot event chains, and compare sessions.
//!
//! ```text
//! cargo run --release --example video_player
//! ```

use pdo::{optimize, OptimizeOptions};
use pdo_ctp::{ctp_program, CtpEndpoint, CtpParams, VideoPlayer};
use pdo_events::TraceConfig;
use pdo_profile::Profile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = ctp_program();
    let params = CtpParams {
        ack_drop_every: 50,
        clk_period_ns: 40_000_000, // controller fires once per 25fps frame
        ..Default::default()
    };

    // Profile a session.
    let mut endpoint = CtpEndpoint::new(&program, params)?;
    endpoint.open()?;
    endpoint.runtime_mut().set_trace_config(TraceConfig::full());
    let mut player = VideoPlayer::new(endpoint, 25);
    player.play(200)?;
    let mut endpoint = player.into_endpoint();
    let trace = endpoint.runtime_mut().take_trace();
    let profile = Profile::from_trace(&trace, 150);

    println!("event graph ({} nodes):", profile.event_graph.node_count());
    println!("{}", profile.event_graph.edge_listing(&program.module));
    println!("event chains at threshold 150:");
    for chain in profile.chains() {
        let names: Vec<&str> = chain
            .iter()
            .map(|&e| program.module.event_name(e))
            .collect();
        println!("  {}", names.join(" -> "));
    }

    // Optimize.
    let opt = optimize(
        &program.module,
        endpoint.runtime().registry(),
        &profile,
        &OptimizeOptions::new(150),
    );
    println!("\n{}", opt.report.render(&opt.module));

    // Compare sessions.
    let opt_program = program.with_module(opt.module.clone());
    let sessions = [
        ("original", &program, false),
        ("optimized", &opt_program, true),
    ];
    for (label, prog, install) in sessions {
        let mut e = CtpEndpoint::new(prog, params)?;
        if install {
            opt.install_chains(e.runtime_mut());
        }
        e.open()?;
        let mut p = VideoPlayer::new(e, 25);
        let stats = p.play(200)?;
        let cost = p.endpoint_mut().runtime().cost;
        println!(
            "{label:>9}: {} segments, busy {:.2} ms, abstract work {}, fast-path hits {}",
            stats.segments_sent,
            stats.busy_ns as f64 / 1e6,
            cost.weighted_total(),
            cost.fastpath_hits,
        );
    }
    Ok(())
}
