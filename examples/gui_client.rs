//! The X-client scenario: xterm's menu Popup and gvim's scrollbar Scroll,
//! optimized at the action-handler level (paper §4.3).
//!
//! ```text
//! cargo run --release --example gui_client
//! ```

use pdo::{optimize, OptimizeOptions};
use pdo_events::TraceConfig;
use pdo_profile::Profile;
use pdo_xwin::{x_client_program, XClient};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = x_client_program();

    // Profile 250 of each gesture, as in the paper's measurements.
    let mut client = XClient::new(&program)?;
    client.runtime_mut().set_trace_config(TraceConfig::full());
    for i in 0..250 {
        client.popup(i, i + 1)?;
        client.scroll(i)?;
    }
    let profile = Profile::from_trace(&client.runtime_mut().take_trace(), 100);

    let opt = optimize(
        &program.module,
        client.runtime().registry(),
        &profile,
        &OptimizeOptions::new(100),
    );
    println!("{}", opt.report.render(&opt.module));

    let opt_program = program.with_module(opt.module.clone());
    for (label, prog, install) in [
        ("original", &program, false),
        ("optimized", &opt_program, true),
    ] {
        let mut c = XClient::new(prog)?;
        if install {
            opt.install_chains(c.runtime_mut());
        }
        let t0 = Instant::now();
        for i in 0..5000 {
            c.popup(i % 640, i % 480)?;
        }
        let popup_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        for i in 0..5000 {
            c.scroll(i % 400)?;
        }
        let scroll_ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{label:>9}: 5000 popups in {popup_ms:.2} ms, 5000 scrolls in {scroll_ms:.2} ms \
             (menus placed: {}, thumb draws: {})",
            c.state().menus_placed,
            c.state().thumb_draws,
        );
    }

    // Dynamic re-binding: drop one motion callback at runtime. The guarded
    // fast path detects the change and falls back — behaviour stays
    // correct without re-optimization.
    let mut c = XClient::new(&opt_program)?;
    opt.install_chains(c.runtime_mut());
    c.popup(1, 2)?;
    let cb_event = opt_program
        .module
        .event_by_name("PopupMotionCallback")
        .expect("event");
    let cb2 = opt_program
        .module
        .function_by_name("popup_track_cb2")
        .expect("handler");
    c.runtime_mut().unbind(cb_event, cb2);
    c.popup(3, 4)?;
    println!(
        "\nafter unbinding one callback: motion tracks = {} (2 + 1), fast-path misses = {}",
        c.state().motion_tracks,
        c.runtime().cost.fastpath_misses,
    );
    Ok(())
}
