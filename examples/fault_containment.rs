//! Robustness tour: link-level faults with retry/backoff, handler-fault
//! containment, and self-healing specialization.
//!
//! ```text
//! cargo run --release --example fault_containment
//! ```

use pdo::{optimize, OptimizeOptions, QuarantineConfig, SelfHealer};
use pdo_ctp::{ctp_program, CtpEndpoint, CtpError, CtpParams, LinkFaults};
use pdo_events::{
    FaultInjector, FaultKind, FaultPolicy, FaultSpec, Runtime, RuntimeConfig, TraceConfig,
};
use pdo_ir::{BinOp, FunctionBuilder, Module, RaiseMode, Value};
use pdo_profile::Profile;
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, SecCommError, CONFIG_FULL};
use std::cell::RefCell;
use std::rc::Rc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    lossy_link()?;
    dead_link();
    despecialize_and_heal();
    tampered_packets()?;
    Ok(())
}

/// 1. A 15%-drop, 3%-corrupt, 2%-reorder link: the positive-ack protocol
///    retransmits with exponential backoff until everything lands, and the
///    receiver releases the payloads in order.
fn lossy_link() -> Result<(), CtpError> {
    let params = CtpParams {
        ack_drop_every: 0,
        link_faults: LinkFaults {
            drop_per_mille: 150,
            corrupt_per_mille: 30,
            reorder_per_mille: 20,
            seed: 0xC0FFEE,
            ..Default::default()
        },
        max_retries: 12,
        ..Default::default()
    };
    let mut e = CtpEndpoint::new(&ctp_program(), params).expect("endpoint");
    e.open()?;
    let mut sent = Vec::new();
    for i in 0..30u8 {
        let msg = vec![i; 700];
        e.send(&msg)?;
        sent.extend_from_slice(&msg);
        e.run_until(u64::from(i + 1) * 50_000_000)?;
    }
    e.drain(30_000_000_000)?;
    let s = e.stats();
    println!(
        "lossy link : sent {} segments, {} retransmissions",
        s.segments_sent, s.retransmissions
    );
    println!(
        "             link dropped {} / corrupted {} / reordered {}",
        s.link_dropped, s.link_corrupted, s.link_reordered
    );
    println!(
        "             receiver: {} delivered, {} dup discarded, {} parity-dropped",
        s.rx_delivered, s.rx_duplicates, s.rx_corrupt_dropped
    );
    assert_eq!(
        e.received_payload(),
        sent,
        "all payloads, in order, no dups"
    );
    assert_eq!(s.segments_acked, s.segments_sent);
    println!("             every payload delivered in order ✔\n");
    Ok(())
}

/// 2. A dead link (100% drop): retries back off exponentially, then the
///    endpoint surfaces `PeerUnreachable` instead of hanging.
fn dead_link() {
    let params = CtpParams {
        ack_drop_every: 0,
        link_faults: LinkFaults {
            drop_per_mille: 1000,
            seed: 1,
            ..Default::default()
        },
        max_retries: 3,
        ..Default::default()
    };
    let mut e = CtpEndpoint::new(&ctp_program(), params).expect("endpoint");
    e.open().expect("open (nothing sent yet)");
    e.send(b"into the void")
        .expect("send enqueues before the link verdict");
    let err = e
        .drain(60_000_000_000)
        .expect_err("a dead link must not converge");
    println!(
        "dead link  : {} retransmissions, then: {err}\n",
        e.stats().retransmissions
    );
    assert!(matches!(err, CtpError::PeerUnreachable));
}

/// 3. Handler-fault containment + self-healing: injected traps despecialize
///    the chain (generic fallback keeps every event correct), the quarantine
///    backs the chain off on the virtual clock, and the healer re-installs it.
///
/// The healer is attached through the runtime's *epoch hook*, so the whole
/// quarantine/backoff/re-install cycle runs inside `run_until` on
/// virtual-clock epoch boundaries — the caller never invokes `after_epoch`.
fn despecialize_and_heal() {
    let mut m = Module::new();
    let e = m.add_event("Tick");
    let g = m.add_global("count", Value::Int(0));
    let mut b = FunctionBuilder::new("tick", 0);
    let v = b.load_global(g);
    let one = b.const_int(1);
    let s = b.bin(BinOp::Add, v, one);
    b.store_global(g, s);
    b.ret(None);
    let h = m.add_function(b.finish());

    // Profile and optimize the happy path.
    let mut rt = Runtime::new(m.clone());
    rt.bind(e, h, 0).unwrap();
    rt.set_trace_config(TraceConfig::full());
    for _ in 0..40 {
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
    }
    let profile = Profile::from_trace(&rt.take_trace(), 20);
    let opt = optimize(&m, rt.registry(), &profile, &OptimizeOptions::new(20));

    // Deploy with containment, then inject three dispatch traps.
    let mut fast = Runtime::with_config(
        opt.module.clone(),
        RuntimeConfig {
            fault_policy: FaultPolicy::Despecialize,
            ..Default::default()
        },
    );
    fast.bind(e, h, 0).unwrap();
    opt.install_chains(&mut fast);

    // The healer runs on epoch boundaries of the virtual clock, inside
    // `run_until` — no caller-driven `after_epoch`.
    let healer = Rc::new(RefCell::new(SelfHealer::new(
        QuarantineConfig {
            fault_threshold: 2,
            base_backoff_ns: 1_000_000,
            ..Default::default()
        },
        &opt,
        fast.registry(),
    )));
    let log: Rc<RefCell<Vec<(u64, pdo::HealReport)>>> = Rc::default();
    {
        let healer = Rc::clone(&healer);
        let log = Rc::clone(&log);
        fast.set_epoch_hook(500_000, move |rt, at| {
            let report = healer.borrow_mut().after_epoch(rt);
            if !report.is_empty() {
                log.borrow_mut().push((at, report));
            }
        });
    }

    fast.set_fault_injector(FaultInjector::from_plan((0..3).map(|i| FaultSpec {
        event: e,
        occurrence: i,
        kind: FaultKind::TrapDispatch,
    })));
    for _ in 0..6 {
        fast.raise(e, RaiseMode::Sync, &[]).unwrap(); // contained: no abort
    }
    println!(
        "containment: 3 traps injected, chain removed = {}, all 6 ticks counted = {:?}",
        fast.spec().get(e).is_none(),
        fast.global(g)
    );
    assert_eq!(fast.global(g), &Value::Int(6));

    // Keep the session running on timed ticks: epochs fire inside
    // `run_until`, the healer quarantines, the backoff expires, the chain
    // comes back — all with zero healer calls from here.
    for i in 1..=15i64 {
        fast.raise(e, RaiseMode::Timed, &[Value::Int(i * 200_000)])
            .unwrap();
    }
    fast.run_until_idle().unwrap();

    let log = log.borrow();
    let (at_q, first) = &log[0];
    let (_, until) = first.quarantined[0];
    println!(
        "healing    : epoch at t={at_q}ns quarantined the chain until t={until}ns \
         (backoff on the virtual clock)"
    );
    let reinstalled_at = log
        .iter()
        .find(|(_, r)| r.reinstalled.contains(&e))
        .map(|(at, _)| *at)
        .expect("a later epoch re-installs the chain");
    fast.raise(e, RaiseMode::Sync, &[]).unwrap();
    println!(
        "             epoch at t={reinstalled_at}ns re-installed it -> fast-path hits = {}\n",
        fast.cost.fastpath_hits
    );
    assert_eq!(fast.global(g), &Value::Int(6 + 15 + 1));
    assert!(fast.cost.fastpath_hits >= 1);
}

/// 4. SecComm integrity: packets failing KeyedMD5 verification are dropped
///    and counted — the decode chain never runs on garbage, and the endpoint
///    keeps serving the next good packet.
fn tampered_packets() -> Result<(), SecCommError> {
    let proto = seccomm_protocol();
    let program = proto.instantiate(CONFIG_FULL).expect("full config");
    let keys = Keys::default();
    let mut tx = Endpoint::new(&program, &keys)?;
    let mut rx = Endpoint::new(&program, &keys)?;

    let good = tx.push(b"the real message")?;
    let mut evil = tx.push(b"the real message")?;
    evil[0] ^= 0x80;

    let verdict = rx.pop(&evil);
    println!("seccomm    : tampered packet -> {}", verdict.unwrap_err());
    println!(
        "             mac_failures = {}, next good packet still decodes: {:?}",
        rx.mac_failures(),
        String::from_utf8_lossy(&rx.pop(&good)?)
    );
    assert_eq!(rx.mac_failures(), 1);
    Ok(())
}
