//! # pdo-repro — workspace facade
//!
//! This crate hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`), and re-exports the workspace's public
//! surface so downstream code can depend on one crate:
//!
//! ```
//! use pdo_repro::prelude::*;
//!
//! let mut module = Module::new();
//! let tick = module.add_event("Tick");
//! assert_eq!(module.event_name(tick), "Tick");
//! ```
//!
//! See the [README](https://example.org/pdo) for the full tour, `DESIGN.md`
//! for the system inventory, and `EXPERIMENTS.md` for the paper-vs-measured
//! results.

pub use pdo as optimizer;
pub use pdo_cactus as cactus;
pub use pdo_ctp as ctp;
pub use pdo_events as events;
pub use pdo_ir as ir;
pub use pdo_passes as passes;
pub use pdo_profile as profile;
pub use pdo_seccomm as seccomm;
pub use pdo_xwin as xwin;

/// The most commonly used items, in one import.
pub mod prelude {
    pub use pdo::{optimize, Optimization, OptimizeOptions};
    pub use pdo_cactus::{CompositeBuilder, CompositeProtocol, EventProgram};
    pub use pdo_events::{Runtime, RuntimeConfig, RuntimeError, Trace, TraceConfig};
    pub use pdo_ir::{
        BinOp, EventId, FuncId, FunctionBuilder, GlobalId, Module, NativeId, RaiseMode, Value,
    };
    pub use pdo_profile::Profile;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_provides_a_working_surface() {
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("n", Value::Int(0));
        let mut b = FunctionBuilder::new("h", 0);
        let v = b.load_global(g);
        let one = b.const_value(Value::Int(1));
        let s = b.bin(BinOp::Add, v, one);
        b.store_global(g, s);
        b.ret(None);
        let h = m.add_function(b.finish());

        let mut rt = Runtime::new(m);
        rt.bind(e, h, 0).unwrap();
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
    }
}
