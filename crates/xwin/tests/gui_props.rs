//! Property tests for the X client: display-state accounting over random
//! gesture sequences, and sync/queued delivery equivalence.

use pdo_xwin::{x_client_program, XClient};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy)]
enum Gesture {
    Popup(i64, i64),
    PlainClick(i64, i64),
    Scroll(i64),
}

fn gesture_strategy() -> impl Strategy<Value = Gesture> {
    prop_oneof![
        (0i64..640, 0i64..480).prop_map(|(x, y)| Gesture::Popup(x, y)),
        (0i64..640, 0i64..480).prop_map(|(x, y)| Gesture::PlainClick(x, y)),
        (0i64..400).prop_map(Gesture::Scroll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn display_state_accounts_for_every_gesture(
        gestures in prop::collection::vec(gesture_strategy(), 0..40)
    ) {
        let program = x_client_program();
        let mut c = XClient::new(&program).expect("client");
        let mut popups = 0u64;
        let mut scrolls = 0u64;
        for g in &gestures {
            match *g {
                Gesture::Popup(x, y) => {
                    c.popup(x, y).expect("popup");
                    popups += 1;
                }
                Gesture::PlainClick(x, y) => c.plain_click(x, y).expect("click"),
                Gesture::Scroll(y) => {
                    c.scroll(y).expect("scroll");
                    scrolls += 1;
                }
            }
        }
        let st = c.state();
        prop_assert_eq!(st.menus_created, popups);
        prop_assert_eq!(st.menus_placed, popups);
        prop_assert_eq!(st.thumb_draws, scrolls);
        prop_assert_eq!(st.position_updates, scrolls);
        // Popups fire two motion callbacks, scrolls one.
        prop_assert_eq!(st.motion_tracks, popups * 2 + scrolls);
    }

    #[test]
    fn queued_delivery_matches_synchronous_delivery(
        ys in prop::collection::vec(0i64..400, 1..20)
    ) {
        let program = x_client_program();
        let mut sync_client = XClient::new(&program).expect("client");
        let mut queued_client = XClient::new(&program).expect("client");
        for &y in &ys {
            sync_client.scroll(y).expect("scroll");
            queued_client.queue_scroll_and_pump(y).expect("queued scroll");
        }
        prop_assert_eq!(sync_client.state(), queued_client.state());
    }
}
