//! # pdo-xwin — an X Windows-model GUI event substrate
//!
//! The paper's third evaluation target is X clients (§2.3, §4.3): `xterm`'s
//! menu **Popup** (Ctrl + mouse button → two Athena action handlers, the
//! second invoking two mouse-motion callbacks) and `gvim`'s scrollbar
//! **Scroll** (two action handlers moving and displaying the thumb, each
//! invoking widget callbacks).
//!
//! X's three handler mechanisms all map onto the general model (§2.3):
//!
//! * **event handlers** — procedures bound to event names: here, handlers
//!   bound to the X protocol events (`ButtonPress`, `MotionNotify`, …);
//! * **action procedures** — an extra level of indirection: a *translation*
//!   handler maps the X event to an action event (`ActionPopup`,
//!   `ActionScroll`) whose own handlers are the action procedures;
//! * **callback functions** — lists bound to a callback name: callback
//!   events (`PopupMotionCallback`, `ThumbCallback`, `PositionCallback`)
//!   with one binding per registered callback.
//!
//! [`x_client_program`] builds a client with both workloads; [`XClient`]
//! drives it. Widget state (menus, scrollbar geometry) lives behind
//! natives, like Xlib calls under the toolkit.
//!
//! ```
//! use pdo_xwin::{x_client_program, XClient};
//!
//! let program = x_client_program();
//! let mut client = XClient::new(&program)?;
//! client.popup(100, 120)?;
//! client.scroll(42)?;
//! assert_eq!(client.state().menus_placed, 1);
//! assert_eq!(client.state().thumb_draws, 1);
//! # Ok::<(), pdo_xwin::XError>(())
//! ```

use pdo_cactus::EventProgram;
use pdo_events::wire::{FaultyWire, WireFaults, WireStats};
use pdo_events::{Runtime, RuntimeError};
use pdo_ir::{BinOp, EventId, FunctionBuilder, Module, RaiseMode, Value};
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// The 14 core X protocol events this client understands (Xlib defines 33;
/// these are the ones the workloads exercise or queue).
pub const X_EVENTS: [&str; 14] = [
    "ButtonPress",
    "ButtonRelease",
    "KeyPress",
    "KeyRelease",
    "MotionNotify",
    "EnterNotify",
    "LeaveNotify",
    "FocusIn",
    "FocusOut",
    "Expose",
    "ConfigureNotify",
    "MapNotify",
    "UnmapNotify",
    "ClientMessage",
];

/// The Ctrl modifier bit in `ButtonPress` arguments.
pub const MOD_CTRL: i64 = 0b100;

/// X client failure.
#[derive(Debug)]
pub enum XError {
    /// The event runtime failed.
    Runtime(RuntimeError),
    /// The program lacks an expected symbol.
    MissingSymbol(String),
}

impl fmt::Display for XError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XError::Runtime(e) => write!(f, "runtime error: {e}"),
            XError::MissingSymbol(s) => write!(f, "missing symbol `{s}`"),
        }
    }
}

impl std::error::Error for XError {}

impl From<RuntimeError> for XError {
    fn from(e: RuntimeError) -> Self {
        XError::Runtime(e)
    }
}

/// Observable widget-side effects (the "display").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XState {
    /// SimpleMenu widgets created.
    pub menus_created: u64,
    /// Menus placed on screen.
    pub menus_placed: u64,
    /// Mouse-motion callback activations observed.
    pub motion_tracks: u64,
    /// Scrollbar thumb coordinate queries.
    pub thumb_queries: u64,
    /// Thumb redraws on screen.
    pub thumb_draws: u64,
    /// Position callbacks observed.
    pub position_updates: u64,
    /// Last thumb position drawn.
    pub last_thumb_pos: i64,
}

/// Builds the X client program: X events, translations, the Popup and
/// Scroll action handlers, and their callbacks.
pub fn x_client_program() -> EventProgram {
    let mut m = Module::new();
    for name in X_EVENTS {
        m.add_event(name);
    }
    let button_press = m.event_by_name("ButtonPress").expect("declared");
    let motion_notify = m.event_by_name("MotionNotify").expect("declared");

    // Action and callback "names" — the extra indirection layers.
    let action_popup = m.add_event("ActionPopup");
    let action_scroll = m.add_event("ActionScroll");
    let popup_motion_cb = m.add_event("PopupMotionCallback");
    let thumb_cb = m.add_event("ThumbCallback");
    let position_cb = m.add_event("PositionCallback");

    let g_menu = m.add_global("menu_id", Value::Int(0));
    let g_thumb = m.add_global("thumb_pos", Value::Int(0));
    let g_track_acc = m.add_global("track_acc", Value::Int(0));

    let n_menu_create = m.add_native("menu_create");
    let n_menu_configure = m.add_native("menu_configure");
    let n_menu_place = m.add_native("menu_place");
    let n_track_motion = m.add_native("track_motion");
    let n_thumb_coords = m.add_native("thumb_coords");
    let n_draw_thumb = m.add_native("draw_thumb");
    let n_position_update = m.add_native("position_update");

    let mut bindings = Vec::new();

    // Translation: ButtonPress + Ctrl → ActionPopup (xterm's
    // `Ctrl<Btn1Down>: popup-menu()` translation).
    {
        let mut f = FunctionBuilder::new("xlate_button_press", 3); // x, y, mods
        let fire = f.new_block();
        let skip = f.new_block();
        let ctrl = f.const_int(MOD_CTRL);
        let masked = f.bin(BinOp::BitAnd, f.param(2), ctrl);
        let zero = f.const_int(0);
        let is_ctrl = f.bin(BinOp::Ne, masked, zero);
        f.branch(is_ctrl, fire, skip);
        f.switch_to(fire);
        f.raise(action_popup, RaiseMode::Sync, &[f.param(0), f.param(1)]);
        f.ret(None);
        f.switch_to(skip);
        f.ret(None);
        bindings.push((button_press, m.add_function(f.finish()), 0));
    }

    // Translation: MotionNotify on the scrollbar widget → ActionScroll.
    {
        let mut f = FunctionBuilder::new("xlate_motion", 2); // widget, y
        f.raise(action_scroll, RaiseMode::Sync, &[f.param(1)]);
        f.ret(None);
        bindings.push((motion_notify, m.add_function(f.finish()), 0));
    }

    // Popup action handler 1: initialize the SimpleMenu widget.
    {
        let mut f = FunctionBuilder::new("action_init_menu", 2); // x, y
        let menu = f.call_native(n_menu_create, &[]);
        f.lock(g_menu);
        f.store_global(g_menu, menu);
        f.unlock(g_menu);
        let _ = f.call_native(n_menu_configure, &[menu, f.param(0), f.param(1)]);
        f.ret(None);
        bindings.push((action_popup, m.add_function(f.finish()), 0));
    }
    // Popup action handler 2: construct and display the menu; the display
    // step fires the mouse-motion callback list (two callbacks).
    {
        let mut f = FunctionBuilder::new("action_show_menu", 2);
        f.lock(g_menu);
        let menu = f.load_global(g_menu);
        f.unlock(g_menu);
        let _ = f.call_native(n_menu_place, &[menu, f.param(0), f.param(1)]);
        f.raise(popup_motion_cb, RaiseMode::Sync, &[f.param(0), f.param(1)]);
        f.ret(None);
        bindings.push((action_popup, m.add_function(f.finish()), 1));
    }
    // The two registered motion callbacks.
    for (i, name) in ["popup_track_cb1", "popup_track_cb2"]
        .into_iter()
        .enumerate()
    {
        let mut f = FunctionBuilder::new(name, 2);
        let t = f.call_native(n_track_motion, &[f.param(0), f.param(1)]);
        f.lock(g_track_acc);
        let acc = f.load_global(g_track_acc);
        let sum = f.bin(BinOp::Add, acc, t);
        f.store_global(g_track_acc, sum);
        f.unlock(g_track_acc);
        f.ret(None);
        bindings.push((popup_motion_cb, m.add_function(f.finish()), i as i32));
    }

    // Scroll action handler 1: fetch thumb coordinates from the framework
    // and stash them; fires the thumb callback.
    {
        let mut f = FunctionBuilder::new("action_move_thumb", 1); // y
        let coords = f.call_native(n_thumb_coords, &[f.param(0)]);
        f.lock(g_thumb);
        f.store_global(g_thumb, coords);
        f.unlock(g_thumb);
        f.raise(thumb_cb, RaiseMode::Sync, &[coords]);
        f.ret(None);
        bindings.push((action_scroll, m.add_function(f.finish()), 0));
    }
    // Scroll action handler 2: display the new position; fires the
    // position callback.
    {
        let mut f = FunctionBuilder::new("action_update_position", 1);
        f.lock(g_thumb);
        let pos = f.load_global(g_thumb);
        f.unlock(g_thumb);
        let _ = f.call_native(n_draw_thumb, &[pos]);
        f.raise(position_cb, RaiseMode::Sync, &[pos]);
        f.ret(None);
        bindings.push((action_scroll, m.add_function(f.finish()), 1));
    }
    // Widget callbacks for the scroll path.
    {
        let mut f = FunctionBuilder::new("thumb_widget_cb", 1);
        let _ = f.call_native(n_track_motion, &[f.param(0), f.param(0)]);
        f.ret(None);
        bindings.push((thumb_cb, m.add_function(f.finish()), 0));
    }
    {
        let mut f = FunctionBuilder::new("position_widget_cb", 1);
        let _ = f.call_native(n_position_update, &[f.param(0)]);
        f.ret(None);
        bindings.push((position_cb, m.add_function(f.finish()), 0));
    }

    EventProgram {
        module: m,
        bindings,
    }
}

/// A runnable X client.
pub struct XClient {
    rt: Runtime,
    state: Rc<RefCell<XState>>,
    button_press: EventId,
    motion_notify: EventId,
}

impl fmt::Debug for XClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("XClient").field("rt", &self.rt).finish()
    }
}

impl XClient {
    /// Builds a client for `program` (plain or optimizer-extended).
    ///
    /// # Errors
    ///
    /// Fails when the program lacks the X symbols or binding fails.
    pub fn new(program: &EventProgram) -> Result<XClient, XError> {
        let mut rt = program.runtime()?;
        let state = Rc::new(RefCell::new(XState::default()));
        install_natives(&mut rt, &state)?;
        let ev = |name: &str| {
            program
                .module
                .event_by_name(name)
                .ok_or_else(|| XError::MissingSymbol(name.to_string()))
        };
        Ok(XClient {
            button_press: ev("ButtonPress")?,
            motion_notify: ev("MotionNotify")?,
            rt,
            state,
        })
    }

    /// Delivers Ctrl+ButtonPress at `(x, y)` — the xterm Popup gesture.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn popup(&mut self, x: i64, y: i64) -> Result<(), XError> {
        self.rt.raise(
            self.button_press,
            RaiseMode::Sync,
            &[Value::Int(x), Value::Int(y), Value::Int(MOD_CTRL)],
        )?;
        Ok(())
    }

    /// Delivers a plain (un-modified) button press; translations ignore it.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn plain_click(&mut self, x: i64, y: i64) -> Result<(), XError> {
        self.rt.raise(
            self.button_press,
            RaiseMode::Sync,
            &[Value::Int(x), Value::Int(y), Value::Int(0)],
        )?;
        Ok(())
    }

    /// Delivers scrollbar motion at `y` — the gvim Scroll gesture.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn scroll(&mut self, y: i64) -> Result<(), XError> {
        self.rt.raise(
            self.motion_notify,
            RaiseMode::Sync,
            &[Value::Int(1), Value::Int(y)],
        )?;
        Ok(())
    }

    /// Queues an event asynchronously (X clients queue server events) and
    /// processes the queue.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn queue_scroll_and_pump(&mut self, y: i64) -> Result<(), XError> {
        self.rt.raise(
            self.motion_notify,
            RaiseMode::Async,
            &[Value::Int(1), Value::Int(y)],
        )?;
        self.rt.run_until_idle()?;
        Ok(())
    }

    /// Delivers a wire-level X event (see [`XEvent`]) to the client's
    /// dispatch loop, as the gesture helpers above do internally.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn deliver(&mut self, ev: &XEvent) -> Result<(), XError> {
        self.rt.raise(ev.event, RaiseMode::Sync, &ev.args)?;
        Ok(())
    }

    /// The current display state.
    pub fn state(&self) -> XState {
        *self.state.borrow()
    }

    /// The underlying runtime (tracing, cost counters, chains).
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        &mut self.rt
    }

    /// Read-only runtime access.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }
}

/// One X protocol event as it crosses the server→client connection: the
/// event code plus its arguments, ready for [`XClient::deliver`].
#[derive(Debug, Clone, PartialEq)]
pub struct XEvent {
    /// The X event (one of [`X_EVENTS`] or the action/callback events).
    pub event: EventId,
    /// The event's arguments, e.g. `(x, y, mods)` for `ButtonPress`.
    pub args: Vec<Value>,
}

/// Garbles an event in flight: the last integer argument is the one the
/// translations dispatch on (`mods` for `ButtonPress`, `y` for
/// `MotionNotify`), so a corrupted event stays well-formed but can take a
/// different path through the client — exactly the hazard the conformance
/// oracle must show optimized clients handle identically.
fn corrupt_event(ev: &mut XEvent) {
    for arg in ev.args.iter_mut().rev() {
        if let Value::Int(i) = arg {
            *i ^= 0x55;
            return;
        }
    }
}

/// An [`XClient`] fed through a seeded faulty connection: X events can be
/// lost, duplicated, reordered, and corrupted between the "server" (the
/// gesture methods) and the client's dispatch loop.
pub struct FaultyXSession {
    client: XClient,
    wire: FaultyWire<XEvent>,
}

impl fmt::Debug for FaultyXSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultyXSession")
            .field("client", &self.client)
            .field("wire", &self.wire.stats())
            .finish()
    }
}

impl FaultyXSession {
    /// Wraps `client` behind a connection with `faults`.
    pub fn new(client: XClient, faults: WireFaults) -> FaultyXSession {
        FaultyXSession {
            client,
            wire: FaultyWire::new(faults),
        }
    }

    /// Sends an X event across the faulty connection; every copy that
    /// arrives is dispatched by the client.
    ///
    /// # Errors
    ///
    /// Propagates handler faults from dispatched arrivals.
    pub fn deliver(&mut self, ev: XEvent) -> Result<(), XError> {
        let t = self.wire.transmit(ev, corrupt_event);
        for arrival in t.arrivals {
            self.client.deliver(&arrival.item)?;
        }
        Ok(())
    }

    /// Ctrl+ButtonPress at `(x, y)` across the faulty connection.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn popup(&mut self, x: i64, y: i64) -> Result<(), XError> {
        let event = self.client.button_press;
        self.deliver(XEvent {
            event,
            args: vec![Value::Int(x), Value::Int(y), Value::Int(MOD_CTRL)],
        })
    }

    /// Un-modified button press across the faulty connection.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn plain_click(&mut self, x: i64, y: i64) -> Result<(), XError> {
        let event = self.client.button_press;
        self.deliver(XEvent {
            event,
            args: vec![Value::Int(x), Value::Int(y), Value::Int(0)],
        })
    }

    /// Scrollbar motion at `y` across the faulty connection.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn scroll(&mut self, y: i64) -> Result<(), XError> {
        let event = self.client.motion_notify;
        self.deliver(XEvent {
            event,
            args: vec![Value::Int(1), Value::Int(y)],
        })
    }

    /// Dispatches an event the connection is still holding for reordering.
    ///
    /// # Errors
    ///
    /// Propagates handler faults.
    pub fn settle(&mut self) -> Result<(), XError> {
        for arrival in self.wire.flush() {
            self.client.deliver(&arrival.item)?;
        }
        Ok(())
    }

    /// Fault counters of the connection.
    pub fn wire_stats(&self) -> WireStats {
        self.wire.stats()
    }

    /// The wrapped client.
    pub fn client(&self) -> &XClient {
        &self.client
    }

    /// The wrapped client (chain installation, adaptation hooks).
    pub fn client_mut(&mut self) -> &mut XClient {
        &mut self.client
    }
}

fn install_natives(rt: &mut Runtime, state: &Rc<RefCell<XState>>) -> Result<(), XError> {
    let int_arg = |args: &[Value], i: usize| -> Result<i64, String> {
        args.get(i)
            .and_then(Value::as_int)
            .ok_or_else(|| format!("expected int argument {i}"))
    };

    let s = Rc::clone(state);
    rt.bind_native_by_name("menu_create", move |_| {
        let mut st = s.borrow_mut();
        st.menus_created += 1;
        Ok(Value::Int(st.menus_created as i64))
    })
    .map_err(XError::Runtime)?;

    rt.bind_native_by_name("menu_configure", move |args| {
        let _ = int_arg(args, 0)?;
        Ok(Value::Unit)
    })
    .map_err(XError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("menu_place", move |args| {
        let _ = int_arg(args, 0)?;
        s.borrow_mut().menus_placed += 1;
        Ok(Value::Unit)
    })
    .map_err(XError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("track_motion", move |args| {
        let x = int_arg(args, 0)?;
        let y = int_arg(args, 1)?;
        s.borrow_mut().motion_tracks += 1;
        Ok(Value::Int(x + y))
    })
    .map_err(XError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("thumb_coords", move |args| {
        let y = int_arg(args, 0)?;
        s.borrow_mut().thumb_queries += 1;
        // The framework maps pointer y to a thumb position.
        Ok(Value::Int(y * 3 / 4))
    })
    .map_err(XError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("draw_thumb", move |args| {
        let pos = int_arg(args, 0)?;
        let mut st = s.borrow_mut();
        st.thumb_draws += 1;
        st.last_thumb_pos = pos;
        Ok(Value::Unit)
    })
    .map_err(XError::Runtime)?;

    let s = Rc::clone(state);
    rt.bind_native_by_name("position_update", move |args| {
        let _ = int_arg(args, 0)?;
        s.borrow_mut().position_updates += 1;
        Ok(Value::Unit)
    })
    .map_err(XError::Runtime)?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_events::TraceConfig;

    fn client() -> XClient {
        XClient::new(&x_client_program()).unwrap()
    }

    #[test]
    fn popup_runs_both_action_handlers_and_callbacks() {
        let mut c = client();
        c.popup(10, 20).unwrap();
        let st = c.state();
        assert_eq!(st.menus_created, 1);
        assert_eq!(st.menus_placed, 1);
        // Two registered motion callbacks ran.
        assert_eq!(st.motion_tracks, 2);
    }

    #[test]
    fn plain_click_does_not_popup() {
        let mut c = client();
        c.plain_click(10, 20).unwrap();
        let st = c.state();
        assert_eq!(st.menus_created, 0);
        assert_eq!(st.menus_placed, 0);
    }

    #[test]
    fn scroll_moves_and_draws_thumb() {
        let mut c = client();
        c.scroll(100).unwrap();
        let st = c.state();
        assert_eq!(st.thumb_queries, 1);
        assert_eq!(st.thumb_draws, 1);
        assert_eq!(st.last_thumb_pos, 75);
        assert_eq!(st.position_updates, 1);
        // ThumbCallback's widget callback also tracked motion once.
        assert_eq!(st.motion_tracks, 1);
    }

    #[test]
    fn queued_events_processed_on_pump() {
        let mut c = client();
        c.queue_scroll_and_pump(40).unwrap();
        assert_eq!(c.state().thumb_draws, 1);
        assert_eq!(c.state().last_thumb_pos, 30);
    }

    #[test]
    fn repeated_popups_accumulate() {
        let mut c = client();
        for i in 0..250 {
            c.popup(i, i + 1).unwrap();
        }
        let st = c.state();
        assert_eq!(st.menus_placed, 250);
        assert_eq!(st.motion_tracks, 500);
    }

    #[test]
    fn scroll_chain_visible_in_trace() {
        let mut c = client();
        c.runtime_mut().set_trace_config(TraceConfig::full());
        c.scroll(10).unwrap();
        let trace = c.runtime_mut().take_trace();
        // MotionNotify, ActionScroll, ThumbCallback, PositionCallback.
        assert_eq!(trace.raise_count(), 4);
    }

    #[test]
    fn all_x_events_declared() {
        let program = x_client_program();
        for name in X_EVENTS {
            assert!(program.module.event_by_name(name).is_some());
        }
    }

    #[test]
    fn faulty_session_with_perfect_wire_matches_direct_client() {
        let mut direct = client();
        let mut session = FaultyXSession::new(client(), WireFaults::default());
        for i in 0..10 {
            direct.popup(i, i + 1).unwrap();
            session.popup(i, i + 1).unwrap();
            direct.scroll(10 * i).unwrap();
            session.scroll(10 * i).unwrap();
        }
        session.settle().unwrap();
        assert_eq!(session.client().state(), direct.state());
        assert_eq!(session.wire_stats(), WireStats::default());
    }

    #[test]
    fn faulty_session_drops_lose_gestures() {
        let mut session = FaultyXSession::new(
            client(),
            WireFaults {
                drop_per_mille: 1000,
                seed: 5,
                ..WireFaults::default()
            },
        );
        for i in 0..8 {
            session.popup(i, i).unwrap();
        }
        assert_eq!(session.client().state(), XState::default());
        assert_eq!(session.wire_stats().dropped, 8);
    }

    #[test]
    fn corrupted_events_garble_dispatch_but_never_fault() {
        let mut session = FaultyXSession::new(
            client(),
            WireFaults {
                corrupt_per_mille: 1000,
                seed: 2,
                ..WireFaults::default()
            },
        );
        // Corruption flips the Ctrl bit out of `mods`: the popup gesture
        // arrives as a plain click and no menu appears.
        session.popup(10, 20).unwrap();
        assert_eq!(session.client().state().menus_created, 0);
        // Corruption garbles `y`: the thumb lands where the garbled
        // coordinate says (100 ^ 0x55 = 49 → 49 * 3 / 4 = 36).
        session.scroll(100).unwrap();
        assert_eq!(session.client().state().last_thumb_pos, 36);
        assert_eq!(session.wire_stats().corrupted, 2);
    }

    #[test]
    fn faulty_session_is_deterministic_per_seed() {
        let faults = WireFaults {
            drop_per_mille: 250,
            dup_per_mille: 250,
            reorder_per_mille: 250,
            corrupt_per_mille: 250,
            seed: 77,
        };
        let run = |faults: WireFaults| {
            let mut session = FaultyXSession::new(client(), faults);
            for i in 0..40 {
                session.popup(i, i + 2).unwrap();
                session.scroll(i * 7).unwrap();
            }
            session.settle().unwrap();
            (session.client().state(), session.wire_stats())
        };
        assert_eq!(run(faults), run(faults));
    }
}
