//! # pdo-cactus — a Cactus-style composite-protocol framework
//!
//! Cactus (paper §2.3) structures a network service as a *composite
//! protocol*: a set of user-defined events plus *micro-protocols*, each
//! implementing one service property as a collection of event handlers.
//! A concrete service instance is configured by **choosing which
//! micro-protocols to include**; their handlers are bound to the shared
//! events at instantiation time.
//!
//! This crate provides that composition layer on top of `pdo-events`:
//!
//! * [`CompositeBuilder`] — declares events, globals, natives, and
//!   micro-protocols with their handlers;
//! * [`CompositeProtocol`] — the finished, immutable protocol definition;
//! * [`CompositeProtocol::instantiate`] — selects micro-protocols and
//!   yields an [`EventProgram`] (module + binding plan);
//! * [`EventProgram::runtime`] — builds a runtime with the bindings
//!   applied, ready for natives installation and execution.
//!
//! The `pdo-ctp` (transport protocol + video player) and `pdo-seccomm`
//! (secure channel) crates are built on this layer.

pub mod program;

pub use program::EventProgram;

use pdo_ir::{EventId, FuncId, FunctionBuilder, GlobalId, Module, NativeId, Value};

/// One micro-protocol: a named set of handler bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MicroProtocol {
    /// The micro-protocol's name (e.g. `DESPrivacy`).
    pub name: String,
    /// `(event, handler, order)` bindings contributed when selected.
    pub bindings: Vec<(EventId, FuncId, i32)>,
}

/// A complete composite-protocol definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeProtocol {
    /// Protocol name (diagnostics only).
    pub name: String,
    /// The shared IR module: events, globals, natives, handler functions.
    pub module: Module,
    /// All available micro-protocols.
    pub micro_protocols: Vec<MicroProtocol>,
}

/// Failure to instantiate a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A requested micro-protocol name is not part of the composite.
    UnknownMicroProtocol(String),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::UnknownMicroProtocol(n) => {
                write!(f, "unknown micro-protocol `{n}`")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl CompositeProtocol {
    /// Instantiates the configuration selecting `micro_protocols` by name,
    /// in the given order (earlier micro-protocols bind first, which
    /// matters for equal order keys).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::UnknownMicroProtocol`] for unknown names.
    pub fn instantiate(&self, micro_protocols: &[&str]) -> Result<EventProgram, ConfigError> {
        let mut bindings = Vec::new();
        for &name in micro_protocols {
            let mp = self
                .micro_protocols
                .iter()
                .find(|m| m.name == name)
                .ok_or_else(|| ConfigError::UnknownMicroProtocol(name.to_string()))?;
            bindings.extend(mp.bindings.iter().copied());
        }
        Ok(EventProgram {
            module: self.module.clone(),
            bindings,
        })
    }

    /// Instantiates with every micro-protocol, in declaration order.
    pub fn instantiate_all(&self) -> EventProgram {
        let names: Vec<&str> = self
            .micro_protocols
            .iter()
            .map(|m| m.name.as_str())
            .collect();
        self.instantiate(&names).expect("own names are known")
    }

    /// Names of all micro-protocols.
    pub fn micro_protocol_names(&self) -> Vec<&str> {
        self.micro_protocols
            .iter()
            .map(|m| m.name.as_str())
            .collect()
    }
}

/// Builds a [`CompositeProtocol`].
///
/// ```
/// use pdo_cactus::CompositeBuilder;
/// use pdo_ir::Value;
///
/// let mut b = CompositeBuilder::new("demo");
/// let tick = b.event("Tick");
/// let count = b.global("count", Value::Int(0));
/// b.micro_protocol("Counter", |mp| {
///     mp.handler(tick, 0, "count_tick", 1, |f| {
///         let v = f.load_global(count);
///         let one = f.const_int(1);
///         let s = f.bin(pdo_ir::BinOp::Add, v, one);
///         f.store_global(count, s);
///         f.ret(None);
///     });
/// });
/// let proto = b.finish();
/// assert_eq!(proto.micro_protocol_names(), vec!["Counter"]);
/// ```
#[derive(Debug)]
pub struct CompositeBuilder {
    name: String,
    module: Module,
    micro_protocols: Vec<MicroProtocol>,
}

impl CompositeBuilder {
    /// Starts a new composite protocol.
    pub fn new(name: impl Into<String>) -> Self {
        CompositeBuilder {
            name: name.into(),
            module: Module::new(),
            micro_protocols: Vec::new(),
        }
    }

    /// Declares an event.
    pub fn event(&mut self, name: impl Into<String>) -> EventId {
        self.module.add_event(name)
    }

    /// Declares a shared global with an initial value.
    pub fn global(&mut self, name: impl Into<String>, init: Value) -> GlobalId {
        self.module.add_global(name, init)
    }

    /// Declares a native slot (bound to Rust code at session setup).
    pub fn native(&mut self, name: impl Into<String>) -> NativeId {
        self.module.add_native(name)
    }

    /// Adds a free function (not bound to any event) for use as a helper.
    pub fn function(
        &mut self,
        name: &str,
        params: u16,
        build: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let mut fb = FunctionBuilder::new(name, params);
        build(&mut fb);
        self.module.add_function(fb.finish())
    }

    /// Declares a micro-protocol; its handlers are registered through the
    /// provided [`MicroProtocolBuilder`].
    pub fn micro_protocol(
        &mut self,
        name: impl Into<String>,
        build: impl FnOnce(&mut MicroProtocolBuilder<'_>),
    ) {
        let mut mp = MicroProtocolBuilder {
            module: &mut self.module,
            bindings: Vec::new(),
        };
        build(&mut mp);
        self.micro_protocols.push(MicroProtocol {
            name: name.into(),
            bindings: mp.bindings,
        });
    }

    /// Finalizes the protocol definition.
    pub fn finish(self) -> CompositeProtocol {
        CompositeProtocol {
            name: self.name,
            module: self.module,
            micro_protocols: self.micro_protocols,
        }
    }
}

/// Registers one micro-protocol's handlers.
#[derive(Debug)]
pub struct MicroProtocolBuilder<'a> {
    module: &'a mut Module,
    bindings: Vec<(EventId, FuncId, i32)>,
}

impl MicroProtocolBuilder<'_> {
    /// Defines a handler function and binds it to `event` with `order`.
    pub fn handler(
        &mut self,
        event: EventId,
        order: i32,
        name: &str,
        params: u16,
        build: impl FnOnce(&mut FunctionBuilder),
    ) -> FuncId {
        let mut fb = FunctionBuilder::new(name, params);
        build(&mut fb);
        let func = self.module.add_function(fb.finish());
        self.bindings.push((event, func, order));
        func
    }

    /// Binds an already-defined function to an additional event (a handler
    /// may be bound to more than one event, §2.1).
    pub fn bind(&mut self, event: EventId, func: FuncId, order: i32) {
        self.bindings.push((event, func, order));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::{BinOp, RaiseMode};

    fn counting_protocol() -> (CompositeProtocol, EventId, GlobalId) {
        let mut b = CompositeBuilder::new("demo");
        let tick = b.event("Tick");
        let count = b.global("count", Value::Int(0));
        b.micro_protocol("Ones", |mp| {
            mp.handler(tick, 0, "add_one", 1, |f| {
                let v = f.load_global(count);
                let one = f.const_int(1);
                let s = f.bin(BinOp::Add, v, one);
                f.store_global(count, s);
                f.ret(None);
            });
        });
        b.micro_protocol("Tens", |mp| {
            mp.handler(tick, 1, "add_ten", 1, |f| {
                let v = f.load_global(count);
                let ten = f.const_int(10);
                let s = f.bin(BinOp::Add, v, ten);
                f.store_global(count, s);
                f.ret(None);
            });
        });
        (b.finish(), tick, count)
    }

    #[test]
    fn configuration_selects_micro_protocols() {
        let (proto, tick, count) = counting_protocol();

        let ones_only = proto.instantiate(&["Ones"]).unwrap();
        let mut rt = ones_only.runtime().unwrap();
        rt.raise(tick, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(count), &Value::Int(1));

        let both = proto.instantiate_all();
        let mut rt2 = both.runtime().unwrap();
        rt2.raise(tick, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt2.global(count), &Value::Int(11));
    }

    #[test]
    fn unknown_micro_protocol_rejected() {
        let (proto, _, _) = counting_protocol();
        assert_eq!(
            proto.instantiate(&["Nope"]).unwrap_err(),
            ConfigError::UnknownMicroProtocol("Nope".into())
        );
    }

    #[test]
    fn handler_bound_to_two_events() {
        let mut b = CompositeBuilder::new("multi");
        let e1 = b.event("E1");
        let e2 = b.event("E2");
        let g = b.global("n", Value::Int(0));
        b.micro_protocol("Shared", |mp| {
            let h = mp.handler(e1, 0, "bump", 0, |f| {
                let v = f.load_global(g);
                let one = f.const_int(1);
                let s = f.bin(BinOp::Add, v, one);
                f.store_global(g, s);
                f.ret(None);
            });
            mp.bind(e2, h, 0);
        });
        let proto = b.finish();
        let prog = proto.instantiate_all();
        let mut rt = prog.runtime().unwrap();
        rt.raise(e1, RaiseMode::Sync, &[]).unwrap();
        rt.raise(e2, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(2));
    }

    #[test]
    fn selection_order_controls_equal_order_keys() {
        let (proto, tick, count) = counting_protocol();
        // Give both handlers equal order by re-declaring? Not possible here;
        // instead verify declaration-order binding for the "all" case.
        let prog = proto.instantiate(&["Tens", "Ones"]).unwrap();
        let mut rt = prog.runtime().unwrap();
        rt.raise(tick, RaiseMode::Sync, &[Value::Unit]).unwrap();
        // Orders are 0 (Ones) and 1 (Tens) regardless of selection order.
        assert_eq!(rt.global(count), &Value::Int(11));
    }
}
