//! An instantiated event program: module plus binding plan.

use pdo_events::{Runtime, RuntimeConfig, RuntimeError};
use pdo_ir::{EventId, FuncId, Module};

/// A configured program: the IR module and the handler bindings to apply.
///
/// Re-applying the same binding plan always produces the same registry
/// versions, which is what lets specializations produced from a profiled
/// session be installed into a fresh session (the guards compare binding
/// versions).
#[derive(Debug, Clone, PartialEq)]
pub struct EventProgram {
    /// The IR module (shared by all sessions of this program).
    pub module: Module,
    /// `(event, handler, order)` bindings in application order.
    pub bindings: Vec<(EventId, FuncId, i32)>,
}

impl EventProgram {
    /// Builds a runtime with the bindings applied (natives still unbound).
    ///
    /// # Errors
    ///
    /// Propagates binding failures (unknown events/handlers), which signal
    /// a malformed program.
    pub fn runtime(&self) -> Result<Runtime, RuntimeError> {
        self.runtime_with_config(RuntimeConfig::default())
    }

    /// As [`EventProgram::runtime`] with explicit limits.
    ///
    /// # Errors
    ///
    /// Propagates binding failures.
    pub fn runtime_with_config(&self, config: RuntimeConfig) -> Result<Runtime, RuntimeError> {
        let mut rt = Runtime::with_config(self.module.clone(), config);
        self.apply_bindings(&mut rt)?;
        Ok(rt)
    }

    /// Applies this program's bindings to an existing runtime — used to set
    /// up a runtime built from an *optimized* module (whose original
    /// function ids are unchanged).
    ///
    /// # Errors
    ///
    /// Propagates binding failures.
    pub fn apply_bindings(&self, rt: &mut Runtime) -> Result<(), RuntimeError> {
        for &(event, func, order) in &self.bindings {
            rt.bind(event, func, order)?;
        }
        Ok(())
    }

    /// A copy of this program executing `module` instead (e.g. the module
    /// produced by the optimizer, which extends the original).
    pub fn with_module(&self, module: Module) -> EventProgram {
        EventProgram {
            module,
            bindings: self.bindings.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::{BinOp, FunctionBuilder, RaiseMode, Value};

    fn program() -> (EventProgram, EventId, pdo_ir::GlobalId) {
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("n", Value::Int(0));
        let mut fb = FunctionBuilder::new("h", 0);
        let v = fb.load_global(g);
        let one = fb.const_int(1);
        let s = fb.bin(BinOp::Add, v, one);
        fb.store_global(g, s);
        fb.ret(None);
        let h = m.add_function(fb.finish());
        (
            EventProgram {
                module: m,
                bindings: vec![(e, h, 0)],
            },
            e,
            g,
        )
    }

    #[test]
    fn runtime_applies_bindings() {
        let (prog, e, g) = program();
        let mut rt = prog.runtime().unwrap();
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
    }

    #[test]
    fn identical_plans_yield_identical_versions() {
        let (prog, e, _) = program();
        let rt1 = prog.runtime().unwrap();
        let rt2 = prog.runtime().unwrap();
        assert_eq!(rt1.registry().version(e), rt2.registry().version(e));
    }

    #[test]
    fn bad_binding_rejected() {
        let (mut prog, _, _) = program();
        prog.bindings.push((EventId(9), FuncId(0), 0));
        assert!(prog.runtime().is_err());
    }

    #[test]
    fn with_module_keeps_bindings() {
        let (prog, e, g) = program();
        let extended = prog.with_module(prog.module.clone());
        let mut rt = extended.runtime().unwrap();
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
    }
}
