//! `pdo-server`: a sharded multi-session event server with an online
//! adaptive-specialization loop and thread-per-shard parallel execution.
//!
//! The paper's workflow is per-program and offline: trace one run,
//! optimize, redeploy. A realistic event server hosts *many* independent
//! sessions — transport connections, secure channels, plain event
//! programs — each with its own hot paths that shift over time. This
//! crate puts the whole pipeline online, multi-tenant, and parallel:
//!
//! - A [`Server`] owns `N` [shards](ServerConfig::shards). `Runtime` is
//!   `!Send` (handlers are boxed native closures over unsynchronized
//!   module state), so the server never moves a runtime between threads.
//!   Instead, with [`ServerConfig::threads`] > 1 each shard — including
//!   its runtimes and [`AdaptiveEngine`]s — is **constructed, driven,
//!   and dropped entirely inside one worker thread**; the coordinator
//!   talks to it over a per-shard `mpsc` command channel carrying only
//!   `Send` data (session specs, event batches, deadlines, report and
//!   metrics snapshots). With `threads = 1` the identical shard code
//!   runs inline with no threads at all, which is why parallelism is
//!   observationally invisible: both modes execute the same
//!   [`ShardState`] methods in the same per-shard order.
//! - New sessions are placed by **power-of-two-choices** over reported
//!   shard load (resident sessions, then cumulative dispatches) with
//!   splitmix64 supplying the two deterministic candidates, and the
//!   coordinator can [`rebalance`](Server::rebalance) by draining an
//!   idle session's spec from the hottest shard and restoring it on the
//!   coolest — all deterministic, no wall-clock input.
//! - Every session gets a per-session adaptive-specialization daemon (an
//!   [`AdaptiveEngine`]) attached through the runtime's epoch hook. The
//!   daemon samples the session's live trace window on virtual-clock
//!   epoch boundaries *inside* `Runtime::run_until`, re-profiles when
//!   enough fresh events accumulate (or a healed chain reports stale),
//!   and hot-swaps compiled chains under binding-version guards — no
//!   caller involvement anywhere. Repeated workload phases are served
//!   from the engine's `ChainCache` instead of re-running `optimize`.
//! - Protocol endpoints ([`CtpEndpoint`], SecComm [`Endpoint`]) are
//!   constructed *through* the server, so protocol sessions are
//!   shard-resident and adapt exactly like plain ones.
//! - [`Server::report`] snapshots per-shard and per-session counters;
//!   [`Server::metrics`] scrapes every layer into one
//!   [`MetricsSnapshot`], including per-shard queue-depth and busy-ns
//!   load series. Because shard-interior state never crosses the channel
//!   boundary, the borrow-style accessors of the single-threaded design
//!   (`runtime()`, `engine()`, `ctp_mut()`) are replaced by the
//!   closure-shipping [`Server::with_session`] family and the
//!   snapshot-returning [`Server::engine_stats`].

use pdo::{AdaptConfig, AdaptStats, AdaptiveEngine};
use pdo_cactus::EventProgram;
use pdo_ctp::{CtpEndpoint, CtpError, CtpParams};
use pdo_events::{FaultInjector, Runtime, RuntimeConfig, RuntimeError};
use pdo_ir::{EventId, FuncId, GlobalId, Module, RaiseMode, Value};
use pdo_obs::{
    Histogram, MetricsSnapshot, ObsHub, ObsKind, Span, SpanKind, TraceCtx, TraceStore,
    DEFAULT_RECORDER_CAPACITY,
};
use pdo_seccomm::{Endpoint as SecCommEndpoint, Keys, SecCommError};
use pdo_snap::SnapshotError;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;
use std::rc::Rc;
use std::sync::mpsc::{self, Receiver, Sender};
use std::thread::{self, JoinHandle};
use std::time::Instant;

mod snapshot;
use snapshot::{KindSnapshot, SessionSnapshot};

const WORKER_ALIVE: &str = "shard worker lives until Server::drop closes the channel";
const WORKER_REPLIES: &str = "shard worker replies to every command before exiting";
const SHARD_OWNED: &str = "commands are routed to the worker that owns the shard";

/// Identifies one session for the lifetime of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of shards sessions are placed onto (min 1).
    pub shards: usize,
    /// Number of worker threads driving the shards. `1` (the default)
    /// runs every shard inline on the caller's thread; larger values
    /// spawn `min(threads, shards)` workers and distribute shards
    /// round-robin (shard `i` → worker `i % workers`). Shard state is
    /// created and dropped on its owning thread — no `unsafe`, no
    /// `Send` bound on `Runtime`.
    pub threads: usize,
    /// Adaptation-loop configuration applied to every session opened
    /// through this server.
    pub adapt: AdaptConfig,
    /// Attach a `pdo-obs` hub to every session's runtime so
    /// [`Server::metrics`] can expose per-event dispatch latency
    /// histograms and flight-recorder dumps (on by default; dispatch
    /// counters are exported regardless).
    pub observability: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            threads: 1,
            adapt: AdaptConfig::default(),
            observability: true,
        }
    }
}

/// Server failure, tagged with the session it occurred on.
#[derive(Debug)]
pub enum ServerError {
    /// No session with that id exists.
    UnknownSession(SessionId),
    /// The session exists but is not of the requested protocol kind.
    WrongKind(SessionId),
    /// The session's event runtime failed.
    Runtime(SessionId, RuntimeError),
    /// A CTP session failed.
    Ctp(SessionId, CtpError),
    /// A SecComm session failed.
    SecComm(SessionId, SecCommError),
    /// A durable snapshot failed to encode, persist, read, or decode.
    /// Corrupt or truncated input always lands here — never a panic.
    Snapshot(SnapshotError),
    /// The server is quiesced ([`Server::quiesce`]): it stops admitting
    /// new sessions and new work until [`Server::resume_admission`].
    Quiesced,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownSession(s) => write!(f, "unknown session {s}"),
            ServerError::WrongKind(s) => write!(f, "session {s} is not of the requested kind"),
            ServerError::Runtime(s, e) => write!(f, "session {s}: runtime error: {e}"),
            ServerError::Ctp(s, e) => write!(f, "session {s}: {e}"),
            ServerError::SecComm(s, e) => write!(f, "session {s}: {e}"),
            ServerError::Snapshot(e) => write!(f, "{e}"),
            ServerError::Quiesced => write!(f, "server is quiesced (not admitting)"),
        }
    }
}

impl std::error::Error for ServerError {}

/// What lives inside a session: a plain event program or a protocol
/// endpoint built through the server. Protocol variants carry their
/// rebuild recipe (params/keys) so any session kind can be snapshotted
/// and reconstructed on another shard or after a restart.
enum SessionKind {
    Plain(Runtime),
    Ctp { ep: CtpEndpoint, params: CtpParams },
    SecComm { ep: SecCommEndpoint, keys: Keys },
}

/// One resident session: its runtime (possibly wrapped in a protocol
/// endpoint) plus the adaptation daemon attached to it. Lives entirely
/// on the shard's owning thread; only accessed across the channel
/// boundary through shipped closures ([`Server::with_session`]).
struct Session {
    kind: SessionKind,
    engine: Rc<RefCell<AdaptiveEngine>>,
}

impl Session {
    fn runtime(&self) -> &Runtime {
        match &self.kind {
            SessionKind::Plain(rt) => rt,
            SessionKind::Ctp { ep, .. } => ep.runtime(),
            SessionKind::SecComm { ep, .. } => ep.runtime(),
        }
    }

    fn runtime_mut(&mut self) -> &mut Runtime {
        kind_runtime_mut(&mut self.kind)
    }
}

fn kind_runtime_mut(kind: &mut SessionKind) -> &mut Runtime {
    match kind {
        SessionKind::Plain(rt) => rt,
        SessionKind::Ctp { ep, .. } => ep.runtime_mut(),
        SessionKind::SecComm { ep, .. } => ep.runtime_mut(),
    }
}

/// Everything needed to (re)build a session on a shard. This is the
/// `Send` payload that crosses the coordinator→worker channel; the
/// `!Send` runtime is constructed from it on the owning thread.
enum SessionSpec {
    Plain {
        module: Module,
        config: RuntimeConfig,
        bindings: Vec<(EventId, FuncId, i32)>,
    },
    Ctp {
        program: EventProgram,
        params: CtpParams,
    },
    SecComm {
        program: EventProgram,
        keys: Keys,
    },
    /// A session drained from another shard or decoded from a durable
    /// image (see [`Server::rebalance`] and
    /// [`Server::restore_from_bytes`]). Carries complete state: sched
    /// queue/timers, fault plan, endpoint link/wire state, and the
    /// adaptation daemon's profile so the session *resumes*
    /// specialization instead of cold-starting.
    Restore(Box<SessionSnapshot>),
}

/// Why [`Server::rebalance`] refused to migrate a session. Surfaced per
/// session in [`SessionReport::refusal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrateRefusal {
    /// The session's async FIFO is non-empty: it is mid-batch, and
    /// moving it would interleave the move into its dispatch order.
    QueuedEvents,
    /// The session's live trace window holds undrained records: it is
    /// mid-epoch, and moving it would discard that window's profile
    /// contribution.
    MidEpoch,
}

impl fmt::Display for MigrateRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrateRefusal::QueuedEvents => write!(f, "queued events"),
            MigrateRefusal::MidEpoch => write!(f, "mid-epoch trace window"),
        }
    }
}

/// A point-in-time load summary of one shard, used for
/// power-of-two-choices placement and hottest/coolest selection in
/// [`Server::rebalance`]. All fields except `busy_ns` are derived from
/// the virtual clock and deterministic counters; `busy_ns` is wall
/// clock (observability only — never an input to placement).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// The shard index.
    pub shard: usize,
    /// Resident sessions.
    pub sessions: usize,
    /// Cumulative events dispatched across the shard's sessions.
    pub dispatched: u64,
    /// Events currently queued or pending on timers across the shard.
    pub queue_depth: u64,
    /// Cumulative wall-clock time the shard spent inside `run_until`.
    pub busy_ns: u64,
    /// The furthest-advanced session clock on the shard (virtual ns).
    /// [`Server::quiesce`] drains every shard to the fleet-wide maximum.
    pub max_clock_ns: u64,
}

/// Adaptation and dispatch counters of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReport {
    /// The session.
    pub session: SessionId,
    /// The shard it resides on.
    pub shard: usize,
    /// Events dispatched (sync + async/timed raises).
    pub dispatched: u64,
    /// Specialized fast-path dispatches taken.
    pub fastpath_hits: u64,
    /// Specialized dispatches that failed their guards and fell back.
    pub guard_misses: u64,
    /// Compiled chains currently installed.
    pub chains_live: usize,
    /// The session daemon's adaptation counters.
    pub adapt: AdaptStats,
    /// Why the session would currently be refused migration (`None` =
    /// quiescent, migratable by [`Server::rebalance`]).
    pub refusal: Option<MigrateRefusal>,
}

/// Aggregated counters of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// Resident sessions.
    pub sessions: usize,
    /// Events dispatched across the shard.
    pub dispatched: u64,
    /// Fast-path dispatches across the shard.
    pub fastpath_hits: u64,
    /// Guard misses across the shard.
    pub guard_misses: u64,
    /// Compiled chains currently installed across the shard.
    pub chains_live: usize,
    /// Summed adaptation counters of the shard's session daemons.
    pub adapt: AdaptStats,
}

/// A point-in-time snapshot of the whole server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// One entry per shard (index = shard number).
    pub shards: Vec<ShardReport>,
    /// One entry per session, sorted by [`SessionId`] so the report is
    /// byte-stable regardless of shard layout or thread count.
    pub sessions: Vec<SessionReport>,
}

impl ServerReport {
    /// Total events dispatched across the server.
    pub fn dispatched(&self) -> u64 {
        self.shards.iter().map(|s| s.dispatched).sum()
    }

    /// Total fast-path dispatches across the server.
    pub fn fastpath_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.fastpath_hits).sum()
    }
}

// `ServerReport` deliberately has no `Display`: the renderable form of the
// server's state is [`Server::metrics`] → `MetricsSnapshot::render()`,
// which exposes the same counters (and more) in one standard text format
// instead of a second hand-rolled one.

/// Finalizer of splitmix64; the standard 64-bit mix used to derive the
/// two deterministic placement candidates from a session id.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard's complete state and behavior. **This is the single
/// implementation both execution modes run**: inline mode calls these
/// methods on the coordinator thread, threaded mode calls the very same
/// methods from the shard's worker thread — which is the whole argument
/// for why `threads = N` is observationally identical to `threads = 1`.
struct ShardState {
    index: usize,
    adapt: AdaptConfig,
    observability: bool,
    sessions: BTreeMap<SessionId, Session>,
    /// Cumulative wall-clock ns spent in `run_until` (obs only).
    busy_ns: u64,
    /// The shard's causal trace store, shared with every resident
    /// runtime. Tagged `index + 1` so span/trace ids minted by
    /// different shards (and by the ingress, tag `0xFFFF`) never
    /// collide when the coordinator merges them.
    tracer: TraceStore,
}

impl ShardState {
    fn new(index: usize, adapt: AdaptConfig, observability: bool) -> ShardState {
        let tracer = TraceStore::new((index as u16).wrapping_add(1));
        tracer.set_enabled(observability);
        ShardState {
            index,
            adapt,
            observability,
            sessions: BTreeMap::new(),
            busy_ns: 0,
            tracer,
        }
    }

    /// Builds the session described by `spec` on this thread and attaches
    /// its adaptation daemon.
    fn open(&mut self, id: SessionId, spec: SessionSpec) -> Result<(), ServerError> {
        let mut kind = match spec {
            SessionSpec::Plain {
                module,
                config,
                bindings,
            } => {
                let mut rt = Runtime::with_config(module, config);
                for (event, handler, order) in bindings {
                    rt.bind(event, handler, order)
                        .map_err(|e| ServerError::Runtime(id, e))?;
                }
                SessionKind::Plain(rt)
            }
            SessionSpec::Ctp { program, params } => {
                let mut ep =
                    CtpEndpoint::new(&program, params).map_err(|e| ServerError::Ctp(id, e))?;
                ep.open().map_err(|e| ServerError::Ctp(id, e))?;
                SessionKind::Ctp { ep, params }
            }
            SessionSpec::SecComm { program, keys } => SessionKind::SecComm {
                ep: SecCommEndpoint::new(&program, &keys)
                    .map_err(|e| ServerError::SecComm(id, e))?,
                keys,
            },
            SessionSpec::Restore(snap) => return self.restore(id, *snap),
        };
        let rt = kind_runtime_mut(&mut kind);
        if self.observability {
            rt.enable_observability();
            rt.set_tracer(self.tracer.clone());
        }
        let engine = AdaptiveEngine::attach_new(rt, self.adapt);
        self.sessions.insert(id, Session { kind, engine });
        Ok(())
    }

    /// Rebuilds a session from its snapshot: endpoint natives from the
    /// carried recipe, then globals, scheduler queue/timers, pending
    /// fault plan, virtual clock (before the epoch hook exists, so the
    /// catch-up doesn't fire a burst of stale epochs), endpoint link or
    /// wire state, and finally the adaptation daemon — restored, so the
    /// session resumes specialization where it left off.
    fn restore(&mut self, id: SessionId, snap: SessionSnapshot) -> Result<(), ServerError> {
        let SessionSnapshot {
            module,
            config,
            bindings,
            globals,
            clock_ns,
            sched,
            injector,
            engine,
            kind,
        } = snap;
        let mut kind = match kind {
            KindSnapshot::Plain => {
                let mut rt = Runtime::with_config(module.clone(), config);
                for &(event, handler, order) in &bindings {
                    rt.bind(event, handler, order)
                        .map_err(|e| ServerError::Runtime(id, e))?;
                }
                SessionKind::Plain(rt)
            }
            KindSnapshot::Ctp { params, link } => {
                let program = EventProgram {
                    module: module.clone(),
                    bindings: bindings.clone(),
                };
                // No `open()`: a restored session resumes, it does not
                // re-run session setup.
                let mut ep =
                    CtpEndpoint::new(&program, params).map_err(|e| ServerError::Ctp(id, e))?;
                ep.restore_link(*link);
                SessionKind::Ctp { ep, params }
            }
            KindSnapshot::SecComm { keys, wire } => {
                let program = EventProgram {
                    module: module.clone(),
                    bindings: bindings.clone(),
                };
                let mut ep = SecCommEndpoint::new(&program, &keys)
                    .map_err(|e| ServerError::SecComm(id, e))?;
                ep.restore_wire(*wire);
                SessionKind::SecComm { ep, keys }
            }
        };
        let rt = kind_runtime_mut(&mut kind);
        for (idx, value) in globals.into_iter().enumerate() {
            rt.set_global(GlobalId::from_index(idx), value);
        }
        rt.restore_sched(sched);
        if let Some(state) = injector {
            rt.set_fault_injector(FaultInjector::from_state(state));
        }
        // Endpoint kinds build their runtime internally; re-apply the one
        // config knob that can change after construction.
        rt.set_fault_policy(config.fault_policy);
        if clock_ns > 0 {
            rt.advance_clock(clock_ns);
        }
        if self.observability {
            rt.enable_observability();
            rt.set_tracer(self.tracer.clone());
        }
        let engine = AdaptiveEngine::attach_restored(rt, module, self.adapt, engine);
        self.sessions.insert(id, Session { kind, engine });
        Ok(())
    }

    fn close(&mut self, id: SessionId) -> bool {
        self.sessions.remove(&id).is_some()
    }

    fn raise(
        &mut self,
        id: SessionId,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
        ctx: Option<TraceCtx>,
    ) -> Result<(), ServerError> {
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        let before = Self::wire_counters(&session.kind);
        let result = session
            .runtime_mut()
            .raise_traced(event, mode, args, ctx)
            .map_err(|e| ServerError::Runtime(id, e));
        Self::record_wire_delta(&self.tracer, session, before);
        result
    }

    /// Wire-layer counters of a protocol session: protocol name, frames
    /// put on the wire, retransmissions. `None` for plain sessions.
    fn wire_counters(kind: &SessionKind) -> Option<(&'static str, u64, u64)> {
        match kind {
            SessionKind::Plain(_) => None,
            SessionKind::Ctp { ep, .. } => {
                let s = ep.stats();
                Some((
                    "ctp",
                    s.segments_sent.max(0) as u64,
                    s.retransmissions.max(0) as u64,
                ))
            }
            SessionKind::SecComm { ep, .. } => Some(("seccomm", ep.frames_sent(), 0)),
        }
    }

    /// Records a `Wire` span on the shard tracer when a protocol
    /// session's wire counters moved past `before`, parented to the
    /// dispatch that moved them (the runtime's last top-level trace
    /// context) so frame/retransmit activity hangs off the causal DAG
    /// of the stimulus that caused it.
    fn record_wire_delta(
        tracer: &TraceStore,
        session: &Session,
        before: Option<(&'static str, u64, u64)>,
    ) {
        if !tracer.enabled() {
            return;
        }
        let (Some((proto, f0, r0)), Some((_, f1, r1))) =
            (before, Self::wire_counters(&session.kind))
        else {
            return;
        };
        if f1 == f0 && r1 == r0 {
            return;
        }
        let rt = session.runtime();
        let now = rt.clock_ns();
        tracer.record_under(
            rt.last_trace_ctx(),
            now,
            now,
            SpanKind::Wire {
                proto: proto.to_string(),
                frames: f1.saturating_sub(f0),
                retransmits: r1.saturating_sub(r0),
            },
        );
    }

    /// Oldest-first copy of every span retained by the shard tracer.
    fn trace_spans(&self) -> Vec<Span> {
        self.tracer.spans()
    }

    /// Submits a batch of timed raises of `event`, one per delay, in one
    /// channel round trip.
    fn batch(&mut self, id: SessionId, event: EventId, delays: &[u64]) -> Result<(), ServerError> {
        let rt = self
            .sessions
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession(id))?
            .runtime_mut();
        for &delay_ns in delays {
            rt.raise(event, RaiseMode::Timed, &[Value::Int(delay_ns as i64)])
                .map_err(|e| ServerError::Runtime(id, e))?;
        }
        Ok(())
    }

    /// Advances every resident session to `deadline_ns` in id order:
    /// dispatches all due work, then pads each session's clock so
    /// adaptation epochs fire even when idle. Stops at the first failing
    /// session and reports it.
    fn run_until(&mut self, deadline_ns: u64) -> Result<(), ServerError> {
        let started = Instant::now();
        let result = self.run_until_inner(deadline_ns);
        self.busy_ns += started.elapsed().as_nanos() as u64;
        result
    }

    fn run_until_inner(&mut self, deadline_ns: u64) -> Result<(), ServerError> {
        for (&id, session) in &mut self.sessions {
            let before = Self::wire_counters(&session.kind);
            match &mut session.kind {
                SessionKind::Ctp { ep, .. } => {
                    // Pads its clock and checks link liveness itself.
                    ep.run_until(deadline_ns)
                        .map_err(|e| ServerError::Ctp(id, e))?;
                }
                SessionKind::Plain(rt) => {
                    rt.run_until(deadline_ns)
                        .map_err(|e| ServerError::Runtime(id, e))?;
                    let now = rt.clock_ns();
                    if deadline_ns > now {
                        rt.advance_clock(deadline_ns - now);
                    }
                }
                SessionKind::SecComm { ep, .. } => {
                    let rt = ep.runtime_mut();
                    rt.run_until(deadline_ns)
                        .map_err(|e| ServerError::Runtime(id, e))?;
                    let now = rt.clock_ns();
                    if deadline_ns > now {
                        ep.tick(deadline_ns - now);
                    }
                }
            }
            Self::record_wire_delta(&self.tracer, session, before);
        }
        Ok(())
    }

    fn load(&self) -> ShardLoad {
        let mut dispatched = 0u64;
        let mut queue_depth = 0u64;
        let mut max_clock_ns = 0u64;
        for session in self.sessions.values() {
            let rt = session.runtime();
            dispatched += rt.cost.registry_lookups + rt.cost.fastpath_hits;
            queue_depth += rt.pending() as u64;
            max_clock_ns = max_clock_ns.max(rt.clock_ns());
        }
        ShardLoad {
            shard: self.index,
            sessions: self.sessions.len(),
            dispatched,
            queue_depth,
            busy_ns: self.busy_ns,
            max_clock_ns,
        }
    }

    /// Why this session cannot migrate right now, or `None` if it is
    /// quiescent. Timers are *not* a refusal: the scheduler snapshot
    /// carries the timer wheel, so a session parked on perpetual timers
    /// (every protocol endpoint) still migrates cleanly.
    fn refusal_of(session: &Session) -> Option<MigrateRefusal> {
        let rt = session.runtime();
        if rt.queued_len() > 0 {
            Some(MigrateRefusal::QueuedEvents)
        } else if !rt.trace().records.is_empty() {
            Some(MigrateRefusal::MidEpoch)
        } else {
            None
        }
    }

    /// Captures one session's complete state: base module, bindings,
    /// globals, clock, scheduler queue/timers, pending fault plan, the
    /// adaptation daemon's profile/quarantine, and (for protocol kinds)
    /// the endpoint's link or wire state plus its rebuild recipe.
    fn snapshot_session(session: &Session) -> SessionSnapshot {
        let module = session.engine.borrow().base().clone();
        let rt = session.runtime();
        let mut bindings = Vec::new();
        for idx in 0..module.events.len() {
            let event = EventId::from_index(idx);
            for b in rt.registry().bindings(event) {
                bindings.push((event, b.handler, b.order));
            }
        }
        let globals = (0..module.globals.len())
            .map(|idx| rt.global(GlobalId::from_index(idx)).clone())
            .collect();
        let kind = match &session.kind {
            SessionKind::Plain(_) => KindSnapshot::Plain,
            SessionKind::Ctp { ep, params } => KindSnapshot::Ctp {
                params: *params,
                link: Box::new(ep.export_link()),
            },
            SessionKind::SecComm { ep, keys } => KindSnapshot::SecComm {
                keys: keys.clone(),
                wire: Box::new(ep.export_wire()),
            },
        };
        SessionSnapshot {
            config: rt.config(),
            bindings,
            globals,
            clock_ns: rt.clock_ns(),
            sched: rt.export_sched(),
            injector: rt.fault_injector().map(|f| f.export_state()),
            engine: session.engine.borrow().snapshot(),
            kind,
            module,
        }
    }

    /// Drains the lowest-id quiescent session of *any* kind: nothing in
    /// the async FIFO and no live trace window (see [`Self::refusal_of`]).
    /// The session is removed and its complete snapshot returned.
    fn drain_quiescent(&mut self) -> Option<(SessionId, SessionSnapshot)> {
        let id = self
            .sessions
            .iter()
            .find(|(_, s)| Self::refusal_of(s).is_none())
            .map(|(&id, _)| id)?;
        let session = self.sessions.remove(&id).expect("session found above");
        Some((id, Self::snapshot_session(&session)))
    }

    /// Snapshots every resident session in id order, without removing
    /// any. Used by [`Server::snapshot_to_bytes`]; unlike rebalance this
    /// is unconditional — the scheduler snapshot carries queued work, so
    /// nothing is lost (only the live trace window's profile
    /// contribution, which is empty at epoch boundaries).
    fn snapshot_all(&self) -> Vec<(SessionId, SessionSnapshot)> {
        self.sessions
            .iter()
            .map(|(&id, s)| (id, Self::snapshot_session(s)))
            .collect()
    }

    /// Scrapes this shard into a fresh snapshot: per-shard session and
    /// load series plus every session's runtime, adaptation, and
    /// protocol counters. Sessions iterate in id order so histograms
    /// merge deterministically.
    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        let sh = self.index.to_string();
        let labels: [(&str, &str); 1] = [("shard", &sh)];
        let load = self.load();
        snap.gauge(
            "pdo_server_sessions",
            "Sessions resident on the shard",
            &labels,
            load.sessions as i64,
        );
        snap.gauge(
            "pdo_server_queue_depth",
            "Events queued or pending on timers across the shard",
            &labels,
            load.queue_depth as i64,
        );
        snap.counter(
            "pdo_server_shard_busy_ns_total",
            "Cumulative wall-clock ns the shard spent inside run_until",
            &labels,
            load.busy_ns,
        );
        for session in self.sessions.values() {
            let rt = session.runtime();
            rt.export_metrics(&mut snap, &labels);
            session
                .engine
                .borrow()
                .export_metrics(rt, &mut snap, &labels);
            match &session.kind {
                SessionKind::Plain(_) => {}
                SessionKind::Ctp { ep, .. } => ep.stats().export_metrics(&mut snap, &labels),
                SessionKind::SecComm { ep, .. } => snap.counter(
                    "pdo_seccomm_mac_failures_total",
                    "Inbound SecComm messages rejected by MAC verification",
                    &labels,
                    ep.mac_failures(),
                ),
            }
        }
        snap
    }

    fn report(&self) -> (ShardReport, Vec<SessionReport>) {
        let mut agg = ShardReport {
            shard: self.index,
            sessions: self.sessions.len(),
            ..Default::default()
        };
        let mut rows = Vec::with_capacity(self.sessions.len());
        for (&id, session) in &self.sessions {
            let rt = session.runtime();
            let adapt = session.engine.borrow().stats();
            let row = SessionReport {
                session: id,
                shard: self.index,
                // One registry lookup per generic dispatch; fast-path
                // dispatches skip the registry, so the sum counts
                // every dispatched event exactly once.
                dispatched: rt.cost.registry_lookups + rt.cost.fastpath_hits,
                fastpath_hits: rt.cost.fastpath_hits,
                guard_misses: rt.cost.fastpath_misses,
                chains_live: rt.spec().len(),
                adapt,
                refusal: Self::refusal_of(session),
            };
            agg.dispatched += row.dispatched;
            agg.fastpath_hits += row.fastpath_hits;
            agg.guard_misses += row.guard_misses;
            agg.chains_live += row.chains_live;
            agg.adapt.absorb(&adapt);
            rows.push(row);
        }
        (agg, rows)
    }

    fn dump(&self, n: usize) -> Vec<(SessionId, String)> {
        let mut out = Vec::new();
        for (&id, session) in &self.sessions {
            if let Some(obs) = session.runtime().obs() {
                let dump = obs.dump(n);
                if !dump.is_empty() {
                    out.push((id, dump));
                }
            }
        }
        out
    }
}

/// A closure shipped to a shard's owning thread; receives the session
/// (with its shard index) if it exists, `None` otherwise.
type SessionFn = Box<dyn FnOnce(Option<(&mut Session, usize)>) + Send>;

/// The coordinator→worker command protocol. Every payload is `Send`;
/// replies come back on per-command `mpsc` channels so the coordinator
/// can interleave commands to many shards and collect replies in shard
/// order (which keeps aggregation deterministic).
enum Cmd {
    Open {
        shard: usize,
        id: SessionId,
        spec: SessionSpec,
        reply: Sender<Result<(), ServerError>>,
    },
    Close {
        shard: usize,
        id: SessionId,
        reply: Sender<bool>,
    },
    Raise {
        shard: usize,
        id: SessionId,
        event: EventId,
        mode: RaiseMode,
        args: Vec<Value>,
        ctx: Option<TraceCtx>,
        reply: Sender<Result<(), ServerError>>,
    },
    Batch {
        shard: usize,
        id: SessionId,
        event: EventId,
        delays: Vec<u64>,
        reply: Sender<Result<(), ServerError>>,
    },
    RunUntil {
        shard: usize,
        deadline_ns: u64,
        reply: Sender<(Result<(), ServerError>, ShardLoad)>,
    },
    Load {
        shard: usize,
        reply: Sender<ShardLoad>,
    },
    Metrics {
        shard: usize,
        reply: Sender<MetricsSnapshot>,
    },
    Report {
        shard: usize,
        reply: Sender<(ShardReport, Vec<SessionReport>)>,
    },
    Dump {
        shard: usize,
        n: usize,
        reply: Sender<Vec<(SessionId, String)>>,
    },
    Drain {
        shard: usize,
        reply: Sender<Option<(SessionId, SessionSnapshot)>>,
    },
    SnapshotAll {
        shard: usize,
        reply: Sender<Vec<(SessionId, SessionSnapshot)>>,
    },
    Traces {
        shard: usize,
        reply: Sender<Vec<Span>>,
    },
    With {
        shard: usize,
        id: SessionId,
        f: SessionFn,
    },
}

/// Worker thread body: builds its shards *here* (so every `!Send`
/// runtime is born on this thread), serves commands until the channel
/// closes, then drops the shards (still on this thread).
fn worker_main(rx: Receiver<Cmd>, shard_ids: Vec<usize>, adapt: AdaptConfig, observability: bool) {
    let mut shards: BTreeMap<usize, ShardState> = shard_ids
        .into_iter()
        .map(|i| (i, ShardState::new(i, adapt, observability)))
        .collect();
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Open {
                shard,
                id,
                spec,
                reply,
            } => {
                let _ = reply.send(shards.get_mut(&shard).expect(SHARD_OWNED).open(id, spec));
            }
            Cmd::Close { shard, id, reply } => {
                let _ = reply.send(shards.get_mut(&shard).expect(SHARD_OWNED).close(id));
            }
            Cmd::Raise {
                shard,
                id,
                event,
                mode,
                args,
                ctx,
                reply,
            } => {
                let _ = reply.send(
                    shards
                        .get_mut(&shard)
                        .expect(SHARD_OWNED)
                        .raise(id, event, mode, &args, ctx),
                );
            }
            Cmd::Batch {
                shard,
                id,
                event,
                delays,
                reply,
            } => {
                let _ = reply.send(
                    shards
                        .get_mut(&shard)
                        .expect(SHARD_OWNED)
                        .batch(id, event, &delays),
                );
            }
            Cmd::RunUntil {
                shard,
                deadline_ns,
                reply,
            } => {
                let state = shards.get_mut(&shard).expect(SHARD_OWNED);
                let result = state.run_until(deadline_ns);
                let _ = reply.send((result, state.load()));
            }
            Cmd::Load { shard, reply } => {
                let _ = reply.send(shards.get(&shard).expect(SHARD_OWNED).load());
            }
            Cmd::Metrics { shard, reply } => {
                let _ = reply.send(shards.get(&shard).expect(SHARD_OWNED).metrics());
            }
            Cmd::Report { shard, reply } => {
                let _ = reply.send(shards.get(&shard).expect(SHARD_OWNED).report());
            }
            Cmd::Dump { shard, n, reply } => {
                let _ = reply.send(shards.get(&shard).expect(SHARD_OWNED).dump(n));
            }
            Cmd::Drain { shard, reply } => {
                let _ = reply.send(shards.get_mut(&shard).expect(SHARD_OWNED).drain_quiescent());
            }
            Cmd::SnapshotAll { shard, reply } => {
                let _ = reply.send(shards.get(&shard).expect(SHARD_OWNED).snapshot_all());
            }
            Cmd::Traces { shard, reply } => {
                let _ = reply.send(shards.get(&shard).expect(SHARD_OWNED).trace_spans());
            }
            Cmd::With { shard, id, f } => {
                let state = shards.get_mut(&shard).expect(SHARD_OWNED);
                let index = state.index;
                f(state.sessions.get_mut(&id).map(|s| (s, index)));
            }
        }
    }
}

/// How the coordinator reaches its shards: direct calls (inline) or
/// per-shard command channels into worker threads. `txs[i]` is a clone
/// of the owning worker's sender, so routing is just an index.
enum Mode {
    Inline(Vec<ShardState>),
    Threaded {
        txs: Vec<Sender<Cmd>>,
        handles: Vec<JoinHandle<()>>,
    },
}

/// A borrow of one session, delivered to [`Server::with_session`]
/// closures *on the shard's owning thread*. This is the only way
/// shard-interior state is touched: the closure travels to the state,
/// never the state to the closure's thread.
pub struct SessionCtx<'a> {
    id: SessionId,
    shard: usize,
    session: &'a mut Session,
}

impl SessionCtx<'_> {
    /// The session's id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The shard the session resides on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The session's runtime.
    pub fn runtime(&self) -> &Runtime {
        self.session.runtime()
    }

    /// The session's runtime, mutably.
    pub fn runtime_mut(&mut self) -> &mut Runtime {
        self.session.runtime_mut()
    }

    /// Runs `f` against the session's adaptation daemon.
    pub fn engine<R>(&self, f: impl FnOnce(&AdaptiveEngine) -> R) -> R {
        f(&self.session.engine.borrow())
    }

    /// The daemon's counters.
    pub fn engine_stats(&self) -> AdaptStats {
        self.engine(|e| e.stats())
    }

    /// The CTP endpoint, if this is a CTP session.
    pub fn ctp(&mut self) -> Option<&mut CtpEndpoint> {
        match &mut self.session.kind {
            SessionKind::Ctp { ep, .. } => Some(ep),
            _ => None,
        }
    }

    /// The SecComm endpoint, if this is a SecComm session.
    pub fn seccomm(&mut self) -> Option<&mut SecCommEndpoint> {
        match &mut self.session.kind {
            SessionKind::SecComm { ep, .. } => Some(ep),
            _ => None,
        }
    }
}

/// The sharded multi-session server.
pub struct Server {
    mode: Mode,
    next_id: u64,
    /// False after [`Server::quiesce`]: opens and raises are refused with
    /// [`ServerError::Quiesced`] until [`Server::resume_admission`].
    admitting: bool,
    /// Where every open session lives. The coordinator is the only
    /// writer, so this never races with the workers.
    placement: BTreeMap<SessionId, usize>,
    /// Last observed per-shard load (index = shard). `sessions` is
    /// maintained synchronously on open/close; the rest refreshes on
    /// `run_until`, `shard_loads`, and `rebalance`.
    loads: Vec<ShardLoad>,
    /// Coordinator flight recorder: migration / persist / restore
    /// lifecycle records, dumped alongside the per-session recorders.
    obs: ObsHub,
    /// Logical timestamp source for `obs` (see [`Self::obs_record`]).
    obs_seq: u64,
    snapshots_total: u64,
    restores_total: u64,
    snapshot_bytes: Histogram,
    encode_wall_ns: Histogram,
    decode_wall_ns: Histogram,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("shards", &self.loads.len())
            .field("threads", &self.threads())
            .field("sessions", &self.placement.len())
            .finish()
    }
}

impl Server {
    /// An empty server with `config.shards` shards (at least one). With
    /// `config.threads > 1`, spawns `min(threads, shards)` workers and
    /// builds each shard inside its owning thread.
    pub fn new(config: ServerConfig) -> Self {
        let shards = config.shards.max(1);
        let threads = config.threads.max(1);
        let mode = if threads == 1 {
            Mode::Inline(
                (0..shards)
                    .map(|i| ShardState::new(i, config.adapt, config.observability))
                    .collect(),
            )
        } else {
            let workers = threads.min(shards);
            let mut txs: Vec<Option<Sender<Cmd>>> = (0..shards).map(|_| None).collect();
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let (tx, rx) = mpsc::channel();
                let owned: Vec<usize> = (0..shards).filter(|i| i % workers == w).collect();
                for &i in &owned {
                    txs[i] = Some(tx.clone());
                }
                let adapt = config.adapt;
                let observability = config.observability;
                handles.push(
                    thread::Builder::new()
                        .name(format!("pdo-shard-worker-{w}"))
                        .spawn(move || worker_main(rx, owned, adapt, observability))
                        .expect("spawn shard worker"),
                );
            }
            Mode::Threaded {
                txs: txs
                    .into_iter()
                    .map(|tx| tx.expect("every shard owned"))
                    .collect(),
                handles,
            }
        };
        Server {
            mode,
            next_id: 1,
            admitting: true,
            placement: BTreeMap::new(),
            loads: (0..shards)
                .map(|shard| ShardLoad {
                    shard,
                    ..Default::default()
                })
                .collect(),
            obs: ObsHub::new(DEFAULT_RECORDER_CAPACITY),
            obs_seq: 0,
            snapshots_total: 0,
            restores_total: 0,
            snapshot_bytes: Histogram::new(),
            encode_wall_ns: Histogram::new(),
            decode_wall_ns: Histogram::new(),
        }
    }

    /// Records a coordinator lifecycle event in the flight recorder.
    /// Timestamps are a logical sequence (the coordinator has no virtual
    /// clock), so dumps stay deterministic.
    fn obs_record(&mut self, kind: ObsKind) {
        self.obs_seq += 1;
        self.obs.record(self.obs_seq, kind);
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.loads.len()
    }

    /// Number of worker threads driving the shards (1 = inline).
    pub fn threads(&self) -> usize {
        match &self.mode {
            Mode::Inline(_) => 1,
            Mode::Threaded { handles, .. } => handles.len(),
        }
    }

    /// The shard session `id` resides on.
    ///
    /// # Panics
    ///
    /// If the session is not open (placement is only defined for live
    /// sessions — unlike the old hash-based scheme, a closed or unknown
    /// id has no shard).
    pub fn shard_of(&self, id: SessionId) -> usize {
        *self
            .placement
            .get(&id)
            .unwrap_or_else(|| panic!("session {id} is not open"))
    }

    /// All open session ids, ordered by shard then id.
    pub fn sessions(&self) -> Vec<SessionId> {
        let mut by_shard: Vec<(usize, SessionId)> =
            self.placement.iter().map(|(&id, &sh)| (sh, id)).collect();
        by_shard.sort();
        by_shard.into_iter().map(|(_, id)| id).collect()
    }

    /// Power-of-two-choices placement: two deterministic candidates from
    /// splitmix64, pick the one with fewer sessions (then fewer
    /// cumulative dispatches, then the lower index). Every input is
    /// deterministic, so placement is reproducible run to run and
    /// identical across thread counts.
    fn pick_shard(&self, id: SessionId) -> usize {
        let n = self.loads.len() as u64;
        let c1 = (splitmix64(id.0) % n) as usize;
        let c2 = (splitmix64(splitmix64(id.0)) % n) as usize;
        let key = |s: usize| (self.loads[s].sessions, self.loads[s].dispatched, s);
        if key(c2) < key(c1) {
            c2
        } else {
            c1
        }
    }

    fn open(&mut self, spec: SessionSpec) -> Result<SessionId, ServerError> {
        self.open_at(spec, None)
    }

    /// Opens a session on `pin` when given (wrapped modulo the shard
    /// count — the ingress pins a connection's sessions to the shard its
    /// connection was mapped onto), p2c placement otherwise.
    fn open_at(&mut self, spec: SessionSpec, pin: Option<usize>) -> Result<SessionId, ServerError> {
        if !self.admitting {
            return Err(ServerError::Quiesced);
        }
        let id = SessionId(self.next_id);
        let shard = match pin {
            Some(s) => s % self.shards(),
            None => self.pick_shard(id),
        };
        let result = match &mut self.mode {
            Mode::Inline(states) => states[shard].open(id, spec),
            Mode::Threaded { txs, .. } => {
                let (reply, rx) = mpsc::channel();
                txs[shard]
                    .send(Cmd::Open {
                        shard,
                        id,
                        spec,
                        reply,
                    })
                    .expect(WORKER_ALIVE);
                rx.recv().expect(WORKER_REPLIES)
            }
        };
        result?;
        self.next_id += 1;
        self.placement.insert(id, shard);
        self.loads[shard].sessions += 1;
        Ok(id)
    }

    /// Opens a plain event-program session: builds a [`Runtime`] over
    /// `module` on the owning shard's thread, applies `bindings`
    /// (event, handler, order), and attaches the adaptive-specialization
    /// daemon.
    ///
    /// # Errors
    ///
    /// Propagates binding failures.
    pub fn open_session(
        &mut self,
        module: Module,
        config: RuntimeConfig,
        bindings: &[(EventId, FuncId, i32)],
    ) -> Result<SessionId, ServerError> {
        self.open(SessionSpec::Plain {
            module,
            config,
            bindings: bindings.to_vec(),
        })
    }

    /// Opens a shard-resident CTP session over `program` and opens the
    /// protocol (runs setup handlers, starts the controller clock).
    ///
    /// # Errors
    ///
    /// Propagates endpoint construction and `Open` failures.
    pub fn open_ctp_session(
        &mut self,
        program: &EventProgram,
        params: CtpParams,
    ) -> Result<SessionId, ServerError> {
        self.open(SessionSpec::Ctp {
            program: program.clone(),
            params,
        })
    }

    /// Opens a shard-resident SecComm session over `program` with `keys`.
    ///
    /// # Errors
    ///
    /// Propagates endpoint construction failures.
    pub fn open_seccomm_session(
        &mut self,
        program: &EventProgram,
        keys: &Keys,
    ) -> Result<SessionId, ServerError> {
        self.open(SessionSpec::SecComm {
            program: program.clone(),
            keys: keys.clone(),
        })
    }

    /// As [`Server::open_session`], but pinned onto shard `shard`
    /// (wrapped modulo the shard count) instead of p2c placement. The
    /// ingress uses this to keep a connection's sessions resident on the
    /// shard the connection itself was mapped onto, so one connection's
    /// commands flow through one admission queue in order.
    ///
    /// # Errors
    ///
    /// As [`Server::open_session`], plus [`ServerError::Quiesced`].
    pub fn open_session_on(
        &mut self,
        shard: usize,
        module: Module,
        config: RuntimeConfig,
        bindings: &[(EventId, FuncId, i32)],
    ) -> Result<SessionId, ServerError> {
        self.open_at(
            SessionSpec::Plain {
                module,
                config,
                bindings: bindings.to_vec(),
            },
            Some(shard),
        )
    }

    /// As [`Server::open_ctp_session`], but pinned onto shard `shard`.
    ///
    /// # Errors
    ///
    /// As [`Server::open_ctp_session`], plus [`ServerError::Quiesced`].
    pub fn open_ctp_session_on(
        &mut self,
        shard: usize,
        program: &EventProgram,
        params: CtpParams,
    ) -> Result<SessionId, ServerError> {
        self.open_at(
            SessionSpec::Ctp {
                program: program.clone(),
                params,
            },
            Some(shard),
        )
    }

    /// As [`Server::open_seccomm_session`], but pinned onto shard `shard`.
    ///
    /// # Errors
    ///
    /// As [`Server::open_seccomm_session`], plus [`ServerError::Quiesced`].
    pub fn open_seccomm_session_on(
        &mut self,
        shard: usize,
        program: &EventProgram,
        keys: &Keys,
    ) -> Result<SessionId, ServerError> {
        self.open_at(
            SessionSpec::SecComm {
                program: program.clone(),
                keys: keys.clone(),
            },
            Some(shard),
        )
    }

    /// Closes a session, returning whether it existed.
    pub fn close_session(&mut self, id: SessionId) -> bool {
        let Some(&shard) = self.placement.get(&id) else {
            return false;
        };
        let existed = match &mut self.mode {
            Mode::Inline(states) => states[shard].close(id),
            Mode::Threaded { txs, .. } => {
                let (reply, rx) = mpsc::channel();
                txs[shard]
                    .send(Cmd::Close { shard, id, reply })
                    .expect(WORKER_ALIVE);
                rx.recv().expect(WORKER_REPLIES)
            }
        };
        if existed {
            self.placement.remove(&id);
            self.loads[shard].sessions = self.loads[shard].sessions.saturating_sub(1);
        }
        existed
    }

    /// Raises `event` on session `id`.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`]; propagated runtime failures.
    pub fn raise(
        &mut self,
        id: SessionId,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
    ) -> Result<(), ServerError> {
        self.raise_traced(id, event, mode, args, None)
    }

    /// As [`Server::raise`], but records the raise under an existing
    /// trace context (e.g. the ingress span of the network request that
    /// caused it), so the cross-layer causal DAG stays connected. With
    /// `ctx = None` a fresh root trace is minted when tracing is on.
    ///
    /// # Errors
    ///
    /// As [`Server::raise`].
    pub fn raise_traced(
        &mut self,
        id: SessionId,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
        ctx: Option<TraceCtx>,
    ) -> Result<(), ServerError> {
        if !self.admitting {
            return Err(ServerError::Quiesced);
        }
        let shard = *self
            .placement
            .get(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        match &mut self.mode {
            Mode::Inline(states) => states[shard].raise(id, event, mode, args, ctx),
            Mode::Threaded { txs, .. } => {
                let (reply, rx) = mpsc::channel();
                txs[shard]
                    .send(Cmd::Raise {
                        shard,
                        id,
                        event,
                        mode,
                        args: args.to_vec(),
                        ctx,
                        reply,
                    })
                    .expect(WORKER_ALIVE);
                rx.recv().expect(WORKER_REPLIES)
            }
        }
    }

    /// Raises `event` synchronously on session `id` (dispatches now).
    ///
    /// # Errors
    ///
    /// As [`Server::raise`].
    pub fn raise_sync(
        &mut self,
        id: SessionId,
        event: EventId,
        args: &[Value],
    ) -> Result<(), ServerError> {
        self.raise(id, event, RaiseMode::Sync, args)
    }

    /// Submits `event` to session `id`'s timer queue, due `delay_ns` from
    /// the session's current virtual time (the timed-raise convention puts
    /// the delay in `args[0]`; this prepends it).
    ///
    /// # Errors
    ///
    /// As [`Server::raise`].
    pub fn submit(
        &mut self,
        id: SessionId,
        event: EventId,
        delay_ns: u64,
        args: &[Value],
    ) -> Result<(), ServerError> {
        self.submit_traced(id, event, delay_ns, args, None)
    }

    /// As [`Server::submit`], but records the timer install under an
    /// existing trace context, so the eventual fire dispatches inside the
    /// same causal trace (with its queue wait attributed to the timer).
    ///
    /// # Errors
    ///
    /// As [`Server::raise`].
    pub fn submit_traced(
        &mut self,
        id: SessionId,
        event: EventId,
        delay_ns: u64,
        args: &[Value],
        ctx: Option<TraceCtx>,
    ) -> Result<(), ServerError> {
        let mut full = Vec::with_capacity(args.len() + 1);
        full.push(Value::Int(delay_ns as i64));
        full.extend_from_slice(args);
        self.raise_traced(id, event, RaiseMode::Timed, &full, ctx)
    }

    /// Submits one timed raise of `event` (no extra args) per delay in
    /// `delays` — a whole workload's injections in a single channel
    /// round trip, which is what keeps the threaded server's command
    /// overhead off the benchmark's critical path.
    ///
    /// # Errors
    ///
    /// As [`Server::raise`].
    pub fn submit_batch(
        &mut self,
        id: SessionId,
        event: EventId,
        delays: &[u64],
    ) -> Result<(), ServerError> {
        if !self.admitting {
            return Err(ServerError::Quiesced);
        }
        let shard = *self
            .placement
            .get(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        match &mut self.mode {
            Mode::Inline(states) => states[shard].batch(id, event, delays),
            Mode::Threaded { txs, .. } => {
                let (reply, rx) = mpsc::channel();
                txs[shard]
                    .send(Cmd::Batch {
                        shard,
                        id,
                        event,
                        delays: delays.to_vec(),
                        reply,
                    })
                    .expect(WORKER_ALIVE);
                rx.recv().expect(WORKER_REPLIES)
            }
        }
    }

    /// Advances every session on every shard to `deadline_ns`: dispatches
    /// all due queued/timed work, then pads each session's clock to the
    /// deadline so adaptation epochs fire even on idle sessions. In
    /// threaded mode all shards run **concurrently** — the command fans
    /// out, then replies are collected in shard order; inline mode runs
    /// the same shard code sequentially. Either way every shard always
    /// runs to the deadline, and on failure the error of the
    /// lowest-indexed failing shard is reported (a shard stops at its
    /// first failing session).
    ///
    /// # Errors
    ///
    /// The lowest-indexed shard's first session failure (tagged with its
    /// session id).
    pub fn run_until(&mut self, deadline_ns: u64) -> Result<(), ServerError> {
        let outcomes: Vec<(Result<(), ServerError>, ShardLoad)> = match &mut self.mode {
            Mode::Inline(states) => states
                .iter_mut()
                .map(|s| (s.run_until(deadline_ns), s.load()))
                .collect(),
            Mode::Threaded { txs, .. } => {
                let receivers: Vec<Receiver<(Result<(), ServerError>, ShardLoad)>> = (0..txs.len())
                    .map(|shard| {
                        let (reply, rx) = mpsc::channel();
                        txs[shard]
                            .send(Cmd::RunUntil {
                                shard,
                                deadline_ns,
                                reply,
                            })
                            .expect(WORKER_ALIVE);
                        rx
                    })
                    .collect();
                receivers
                    .into_iter()
                    .map(|rx| rx.recv().expect(WORKER_REPLIES))
                    .collect()
            }
        };
        let mut first_err = None;
        for (result, load) in outcomes {
            self.loads[load.shard] = load;
            if first_err.is_none() {
                if let Err(e) = result {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Ships `f` to session `id`'s owning thread and runs it there with
    /// a [`SessionCtx`] borrow. This replaces the single-threaded
    /// design's `runtime()` / `engine()` accessors: the closure crosses
    /// the channel (it is `Send`), the `!Send` session never does.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`].
    pub fn with_session<R, F>(&mut self, id: SessionId, f: F) -> Result<R, ServerError>
    where
        R: Send + 'static,
        F: FnOnce(&mut SessionCtx<'_>) -> R + Send + 'static,
    {
        let shard = *self
            .placement
            .get(&id)
            .ok_or(ServerError::UnknownSession(id))?;
        match &mut self.mode {
            Mode::Inline(states) => match states[shard].sessions.get_mut(&id) {
                Some(session) => Ok(f(&mut SessionCtx { id, shard, session })),
                None => Err(ServerError::UnknownSession(id)),
            },
            Mode::Threaded { txs, .. } => {
                let (reply, rx) = mpsc::channel::<Option<R>>();
                let shipped: SessionFn = Box::new(move |found| {
                    let _ = reply.send(
                        found.map(|(session, shard)| f(&mut SessionCtx { id, shard, session })),
                    );
                });
                txs[shard]
                    .send(Cmd::With {
                        shard,
                        id,
                        f: shipped,
                    })
                    .expect(WORKER_ALIVE);
                rx.recv()
                    .expect(WORKER_REPLIES)
                    .ok_or(ServerError::UnknownSession(id))
            }
        }
    }

    /// Runs `f` against session `id`'s runtime on its owning thread.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`].
    pub fn with_runtime<R, F>(&mut self, id: SessionId, f: F) -> Result<R, ServerError>
    where
        R: Send + 'static,
        F: FnOnce(&mut Runtime) -> R + Send + 'static,
    {
        self.with_session(id, move |ctx| f(ctx.runtime_mut()))
    }

    /// Runs `f` against session `id`'s adaptation daemon on its owning
    /// thread. Replaces the old `engine()` accessor, which leaked the
    /// daemon's `Rc<RefCell<…>>` across the shard boundary.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`].
    pub fn with_engine<R, F>(&mut self, id: SessionId, f: F) -> Result<R, ServerError>
    where
        R: Send + 'static,
        F: FnOnce(&AdaptiveEngine) -> R + Send + 'static,
    {
        self.with_session(id, move |ctx| ctx.engine(f))
    }

    /// A snapshot of session `id`'s adaptation counters.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`].
    pub fn engine_stats(&mut self, id: SessionId) -> Result<AdaptStats, ServerError> {
        self.with_engine(id, |e| e.stats())
    }

    /// Runs `f` against a CTP session's endpoint (send, drain, stats) on
    /// its owning thread.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`]; [`ServerError::WrongKind`] for a
    /// non-CTP session.
    pub fn with_ctp<R, F>(&mut self, id: SessionId, f: F) -> Result<R, ServerError>
    where
        R: Send + 'static,
        F: FnOnce(&mut CtpEndpoint) -> R + Send + 'static,
    {
        match self.with_session(id, move |ctx| ctx.ctp().map(f))? {
            Some(r) => Ok(r),
            None => Err(ServerError::WrongKind(id)),
        }
    }

    /// Runs `f` against a SecComm session's endpoint (push, pop) on its
    /// owning thread.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`]; [`ServerError::WrongKind`] for a
    /// non-SecComm session.
    pub fn with_seccomm<R, F>(&mut self, id: SessionId, f: F) -> Result<R, ServerError>
    where
        R: Send + 'static,
        F: FnOnce(&mut SecCommEndpoint) -> R + Send + 'static,
    {
        match self.with_session(id, move |ctx| ctx.seccomm().map(f))? {
            Some(r) => Ok(r),
            None => Err(ServerError::WrongKind(id)),
        }
    }

    /// Fresh per-shard load readings (also refreshes the cache p2c
    /// placement reads).
    pub fn shard_loads(&mut self) -> Vec<ShardLoad> {
        let loads: Vec<ShardLoad> = match &mut self.mode {
            Mode::Inline(states) => states.iter().map(|s| s.load()).collect(),
            Mode::Threaded { txs, .. } => {
                let receivers: Vec<Receiver<ShardLoad>> = (0..txs.len())
                    .map(|shard| {
                        let (reply, rx) = mpsc::channel();
                        txs[shard]
                            .send(Cmd::Load { shard, reply })
                            .expect(WORKER_ALIVE);
                        rx
                    })
                    .collect();
                receivers
                    .into_iter()
                    .map(|rx| rx.recv().expect(WORKER_REPLIES))
                    .collect()
            }
        };
        self.loads.clone_from(&loads);
        loads
    }

    /// One placement-rebalancing step, intended for epoch boundaries:
    /// picks the hottest shard (most dispatches, then most sessions) and
    /// the coolest (fewest sessions, then fewest dispatches), and if the
    /// hottest holds strictly more sessions, drains its lowest-id
    /// quiescent session — *any* kind: plain, CTP, or SecComm — and
    /// restores it on the coolest shard: same id, same bindings, same
    /// globals, same virtual clock, same scheduler queue/timers and
    /// endpoint link/wire state, and the same adaptation state, so the
    /// session resumes specialization instead of cold-starting.
    /// Quiescent means nothing in the async FIFO and no live trace
    /// window (see [`MigrateRefusal`]; refusals surface per session in
    /// [`SessionReport::refusal`]). Returns the migrated session, if
    /// any. Deterministic: load inputs are virtual-clock counters.
    ///
    /// # Errors
    ///
    /// Propagates a restore failure (the drained session is lost — it
    /// cannot fail for specs the server itself produced).
    pub fn rebalance(&mut self) -> Result<Option<SessionId>, ServerError> {
        let loads = self.shard_loads();
        if loads.len() < 2 {
            return Ok(None);
        }
        let mut hot = 0usize;
        let mut cool = 0usize;
        for l in &loads[1..] {
            let h = &loads[hot];
            if (l.dispatched, l.sessions) > (h.dispatched, h.sessions) {
                hot = l.shard;
            }
            let c = &loads[cool];
            if (l.sessions, l.dispatched) < (c.sessions, c.dispatched) {
                cool = l.shard;
            }
        }
        if hot == cool || loads[hot].sessions <= loads[cool].sessions {
            return Ok(None);
        }
        let drained = match &mut self.mode {
            Mode::Inline(states) => states[hot].drain_quiescent(),
            Mode::Threaded { txs, .. } => {
                let (reply, rx) = mpsc::channel();
                txs[hot]
                    .send(Cmd::Drain { shard: hot, reply })
                    .expect(WORKER_ALIVE);
                rx.recv().expect(WORKER_REPLIES)
            }
        };
        let Some((id, snap)) = drained else {
            return Ok(None);
        };
        self.placement.remove(&id);
        self.loads[hot].sessions = self.loads[hot].sessions.saturating_sub(1);
        let restored = match &mut self.mode {
            Mode::Inline(states) => states[cool].open(id, SessionSpec::Restore(Box::new(snap))),
            Mode::Threaded { txs, .. } => {
                let (reply, rx) = mpsc::channel();
                txs[cool]
                    .send(Cmd::Open {
                        shard: cool,
                        id,
                        spec: SessionSpec::Restore(Box::new(snap)),
                        reply,
                    })
                    .expect(WORKER_ALIVE);
                rx.recv().expect(WORKER_REPLIES)
            }
        };
        restored?;
        self.placement.insert(id, cool);
        self.loads[cool].sessions += 1;
        self.obs_record(ObsKind::SessionMigrated {
            session: id.0,
            from: hot as u32,
            to: cool as u32,
        });
        Ok(Some(id))
    }

    /// Graceful-shutdown drain: stops admitting (every subsequent open,
    /// raise, or submit returns [`ServerError::Quiesced`] until
    /// [`Server::resume_admission`]), then advances every shard to the
    /// fleet's furthest session clock. The load refresh is a barrier
    /// through every per-shard command channel, so all previously
    /// submitted work is resident before the drain; `run_until` then
    /// dispatches every queued async event and every timer due by the
    /// drain deadline, and pads the stragglers' clocks to it. Afterwards
    /// each session's FIFO is empty and all clocks agree — the fleet is
    /// idle in exactly the state [`Server::save`] assumes, instead of
    /// snapshotting mid-flight work and hoping the image carries it.
    /// Returns the common virtual time the fleet was drained to.
    ///
    /// # Errors
    ///
    /// Propagates the first session failure of the drain (a failed drain
    /// still leaves admission stopped).
    pub fn quiesce(&mut self) -> Result<u64, ServerError> {
        self.admitting = false;
        let deadline = self
            .shard_loads()
            .iter()
            .map(|l| l.max_clock_ns)
            .max()
            .unwrap_or(0);
        self.run_until(deadline)?;
        Ok(deadline)
    }

    /// Re-opens admission after [`Server::quiesce`].
    pub fn resume_admission(&mut self) {
        self.admitting = true;
    }

    /// False between [`Server::quiesce`] and [`Server::resume_admission`].
    pub fn is_admitting(&self) -> bool {
        self.admitting
    }

    /// Serializes the whole server — every session on every shard, of
    /// every kind — into one durable, versioned, checksummed image (see
    /// `pdo-snap` for the framing). Unconditional: unlike
    /// [`Server::rebalance`] it never refuses a session, because the
    /// scheduler snapshot carries queued work and timers. The only state
    /// not captured is each session's live trace window (the profile
    /// contribution of the *current* partial epoch), which is empty at
    /// epoch boundaries — snapshot there and the image is exact.
    ///
    /// Encoding is deterministic: sessions are sorted by id and every
    /// interior map iterates in key order, so equal servers produce
    /// byte-identical images.
    pub fn snapshot_to_bytes(&mut self) -> Vec<u8> {
        let started = Instant::now();
        let mut sessions: Vec<(SessionId, usize, SessionSnapshot)> = Vec::new();
        match &mut self.mode {
            Mode::Inline(states) => {
                for state in states.iter() {
                    for (id, snap) in state.snapshot_all() {
                        sessions.push((id, state.index, snap));
                    }
                }
            }
            Mode::Threaded { txs, .. } => {
                let receivers: Vec<Receiver<Vec<(SessionId, SessionSnapshot)>>> = (0..txs.len())
                    .map(|shard| {
                        let (reply, rx) = mpsc::channel();
                        txs[shard]
                            .send(Cmd::SnapshotAll { shard, reply })
                            .expect(WORKER_ALIVE);
                        rx
                    })
                    .collect();
                for (shard, rx) in receivers.into_iter().enumerate() {
                    for (id, snap) in rx.recv().expect(WORKER_REPLIES) {
                        sessions.push((id, shard, snap));
                    }
                }
            }
        }
        sessions.sort_by_key(|(id, _, _)| *id);
        let bytes = snapshot::encode_image(self.next_id, &sessions);
        self.snapshots_total += 1;
        self.snapshot_bytes.record(bytes.len() as u64);
        self.encode_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        self.obs_record(ObsKind::SnapshotPersisted {
            sessions: sessions.len() as u32,
            bytes: bytes.len() as u64,
        });
        bytes
    }

    /// Rebuilds sessions from an image produced by
    /// [`Server::snapshot_to_bytes`], restoring each onto a shard (the
    /// recorded shard when it exists on this server, wrapped modulo the
    /// shard count otherwise) with its id, state, and adaptation profile
    /// intact. Returns the restored ids in ascending order.
    ///
    /// # Errors
    ///
    /// A corrupt, truncated, or version-skewed image yields
    /// [`ServerError::Snapshot`] — never a panic. An image session id
    /// that is already open on this server is rejected the same way,
    /// before any session from the image is opened.
    pub fn restore_from_bytes(&mut self, bytes: &[u8]) -> Result<Vec<SessionId>, ServerError> {
        let started = Instant::now();
        let (next_id, sessions) = snapshot::decode_image(bytes).map_err(ServerError::Snapshot)?;
        for (id, _, _) in &sessions {
            if self.placement.contains_key(id) {
                return Err(ServerError::Snapshot(SnapshotError::Malformed(format!(
                    "image session {id} is already open on this server"
                ))));
            }
        }
        let mut restored = Vec::with_capacity(sessions.len());
        let count = sessions.len() as u32;
        for (id, shard, snap) in sessions {
            let shard = shard % self.shards();
            let result = match &mut self.mode {
                Mode::Inline(states) => {
                    states[shard].open(id, SessionSpec::Restore(Box::new(snap)))
                }
                Mode::Threaded { txs, .. } => {
                    let (reply, rx) = mpsc::channel();
                    txs[shard]
                        .send(Cmd::Open {
                            shard,
                            id,
                            spec: SessionSpec::Restore(Box::new(snap)),
                            reply,
                        })
                        .expect(WORKER_ALIVE);
                    rx.recv().expect(WORKER_REPLIES)
                }
            };
            result?;
            self.placement.insert(id, shard);
            self.loads[shard].sessions += 1;
            self.obs_record(ObsKind::SessionRestored {
                session: id.0,
                shard: shard as u32,
            });
            restored.push(id);
        }
        self.next_id = self.next_id.max(next_id);
        self.restores_total += 1;
        self.decode_wall_ns
            .record(started.elapsed().as_nanos() as u64);
        self.obs_record(ObsKind::SnapshotRestored {
            sessions: count,
            bytes: bytes.len() as u64,
        });
        Ok(restored)
    }

    /// Persists [`Server::snapshot_to_bytes`] to `path` atomically:
    /// written to a sibling temp file, synced, then renamed, so a crash
    /// mid-write leaves either the old image or the new one — never a
    /// torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures as [`ServerError::Snapshot`].
    pub fn save(&mut self, path: &Path) -> Result<(), ServerError> {
        let bytes = self.snapshot_to_bytes();
        pdo_snap::write_atomic(path, &bytes).map_err(ServerError::Snapshot)
    }

    /// Reads a durable image from `path` and restores it (see
    /// [`Server::restore_from_bytes`]).
    ///
    /// # Errors
    ///
    /// I/O failures and corrupt images yield [`ServerError::Snapshot`].
    pub fn restore_from_file(&mut self, path: &Path) -> Result<Vec<SessionId>, ServerError> {
        let bytes = pdo_snap::read(path).map_err(ServerError::Snapshot)?;
        self.restore_from_bytes(&bytes)
    }

    /// Scrapes every shard into one server-wide [`MetricsSnapshot`]:
    /// runtime dispatch counters and latency histograms, adaptation
    /// counters/gauges (including chain-cache hits/misses/evictions),
    /// shard load gauges (`pdo_server_queue_depth`,
    /// `pdo_server_shard_busy_ns_total`), and protocol fault counters
    /// (CTP link faults and backoff, SecComm MAC failures), every series
    /// labelled with its `shard`. Sessions on the same shard aggregate
    /// by construction — counters add and histograms merge — so this
    /// *is* the per-shard rollup, and `MetricsSnapshot::merge` rolls
    /// servers up the same way. Shards are scraped and merged in index
    /// order, so the result is identical across thread counts (modulo
    /// the wall-clock families, which `retain_families` can strip).
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        match &self.mode {
            Mode::Inline(states) => {
                for state in states {
                    snap.merge(&state.metrics());
                }
            }
            Mode::Threaded { txs, .. } => {
                let receivers: Vec<Receiver<MetricsSnapshot>> = (0..txs.len())
                    .map(|shard| {
                        let (reply, rx) = mpsc::channel();
                        txs[shard]
                            .send(Cmd::Metrics { shard, reply })
                            .expect(WORKER_ALIVE);
                        rx
                    })
                    .collect();
                for rx in receivers {
                    snap.merge(&rx.recv().expect(WORKER_REPLIES));
                }
            }
        }
        snap.counter(
            "pdo_server_snapshots_total",
            "Durable server images encoded",
            &[],
            self.snapshots_total,
        );
        snap.counter(
            "pdo_server_restores_total",
            "Durable server images restored",
            &[],
            self.restores_total,
        );
        snap.histogram(
            "pdo_server_snapshot_bytes",
            "Encoded size of durable server images",
            &[],
            &self.snapshot_bytes,
        );
        snap.histogram(
            "pdo_server_snapshot_encode_wall_ns",
            "Wall-clock ns spent encoding durable images",
            &[],
            &self.encode_wall_ns,
        );
        snap.histogram(
            "pdo_server_snapshot_decode_wall_ns",
            "Wall-clock ns spent decoding and restoring durable images",
            &[],
            &self.decode_wall_ns,
        );
        snap
    }

    /// Dumps the last `n` flight-recorder entries of every session that
    /// has a hub attached, labelled by session id and **sorted by
    /// session id** (not shard layout), so the dump is byte-stable
    /// across runs and thread counts — the post-mortem companion to
    /// [`Server::metrics`].
    pub fn dump_flight_recorders(&self, n: usize) -> String {
        let mut dumps: Vec<(SessionId, String)> = match &self.mode {
            Mode::Inline(states) => states.iter().flat_map(|s| s.dump(n)).collect(),
            Mode::Threaded { txs, .. } => {
                let receivers: Vec<Receiver<Vec<(SessionId, String)>>> = (0..txs.len())
                    .map(|shard| {
                        let (reply, rx) = mpsc::channel();
                        txs[shard]
                            .send(Cmd::Dump { shard, n, reply })
                            .expect(WORKER_ALIVE);
                        rx
                    })
                    .collect();
                receivers
                    .into_iter()
                    .flat_map(|rx| rx.recv().expect(WORKER_REPLIES))
                    .collect()
            }
        };
        dumps.sort_by_key(|(id, _)| *id);
        let mut out = String::new();
        let coord = self.obs.dump(n);
        if !coord.is_empty() {
            out.push_str(&format!("--- server coordinator (last {n} records) ---\n"));
            out.push_str(&coord);
        }
        for (id, dump) in dumps {
            out.push_str(&format!("--- session {id} (last {n} records) ---\n"));
            out.push_str(&dump);
        }
        out
    }

    /// Collects every shard's retained trace spans in shard-index order
    /// (spans stay oldest-first within a shard). Span/trace ids are
    /// partitioned by shard tag, so the merged vector never aliases ids
    /// across shards; together with an ingress tracer's spans this is
    /// the full cross-layer causal DAG, ready for
    /// [`pdo_obs::trace::export_chrome`] / `export_lines`.
    pub fn trace_spans(&self) -> Vec<Span> {
        match &self.mode {
            Mode::Inline(states) => states.iter().flat_map(|s| s.trace_spans()).collect(),
            Mode::Threaded { txs, .. } => {
                let receivers: Vec<Receiver<Vec<Span>>> = (0..txs.len())
                    .map(|shard| {
                        let (reply, rx) = mpsc::channel();
                        txs[shard]
                            .send(Cmd::Traces { shard, reply })
                            .expect(WORKER_ALIVE);
                        rx
                    })
                    .collect();
                receivers
                    .into_iter()
                    .flat_map(|rx| rx.recv().expect(WORKER_REPLIES))
                    .collect()
            }
        }
    }

    /// A point-in-time snapshot of per-shard and per-session counters.
    /// Shards are collected in index order and sessions sorted by id,
    /// so two servers that executed the same workload produce equal
    /// reports regardless of thread count.
    pub fn report(&self) -> ServerReport {
        let per_shard: Vec<(ShardReport, Vec<SessionReport>)> = match &self.mode {
            Mode::Inline(states) => states.iter().map(|s| s.report()).collect(),
            Mode::Threaded { txs, .. } => {
                let receivers: Vec<Receiver<(ShardReport, Vec<SessionReport>)>> = (0..txs.len())
                    .map(|shard| {
                        let (reply, rx) = mpsc::channel();
                        txs[shard]
                            .send(Cmd::Report { shard, reply })
                            .expect(WORKER_ALIVE);
                        rx
                    })
                    .collect();
                receivers
                    .into_iter()
                    .map(|rx| rx.recv().expect(WORKER_REPLIES))
                    .collect()
            }
        };
        let mut report = ServerReport::default();
        for (shard, sessions) in per_shard {
            report.shards.push(shard);
            report.sessions.extend(sessions);
        }
        report.sessions.sort_by_key(|row| row.session);
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Mode::Threaded { txs, handles } = &mut self.mode {
            // Closing every sender ends each worker's recv loop; the
            // worker then drops its shards on its own thread.
            txs.clear();
            for handle in handles.drain(..) {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::{BinOp, FunctionBuilder};

    /// Two independent events; handler `k` of each adds `k` to its event's
    /// accumulator, so one dispatch of [h1, h2] adds 3.
    fn two_chain_module() -> (Module, [EventId; 2], [pdo_ir::GlobalId; 2]) {
        let mut m = Module::new();
        let a = m.add_event("A");
        let b = m.add_event("B");
        let ga = m.add_global("acc_a", Value::Int(0));
        let gb = m.add_global("acc_b", Value::Int(0));
        let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId, d: i64| {
            let mut fb = FunctionBuilder::new(name, 0);
            let v = fb.load_global(g);
            let dd = fb.const_int(d);
            let o = fb.bin(BinOp::Add, v, dd);
            fb.store_global(g, o);
            fb.ret(None);
            m.add_function(fb.finish())
        };
        adder(&mut m, "a1", ga, 1);
        adder(&mut m, "a2", ga, 2);
        adder(&mut m, "b1", gb, 1);
        adder(&mut m, "b2", gb, 2);
        (m, [a, b], [ga, gb])
    }

    fn bindings(m: &Module, a: EventId, b: EventId) -> Vec<(EventId, FuncId, i32)> {
        vec![
            (a, m.function_by_name("a1").unwrap(), 0),
            (a, m.function_by_name("a2").unwrap(), 1),
            (b, m.function_by_name("b1").unwrap(), 0),
            (b, m.function_by_name("b2").unwrap(), 1),
        ]
    }

    fn fast_adapt() -> AdaptConfig {
        AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: pdo::OptimizeOptions::new(10),
            ..Default::default()
        }
    }

    #[test]
    fn p2c_placement_is_deterministic_and_spread() {
        let (m, [a, b], _) = two_chain_module();
        let open_all = |threads: usize| {
            let mut server = Server::new(ServerConfig {
                shards: 4,
                threads,
                adapt: fast_adapt(),
                ..Default::default()
            });
            let mut shards = Vec::new();
            for _ in 0..16 {
                let id = server
                    .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
                    .unwrap();
                shards.push(server.shard_of(id));
            }
            shards
        };
        let inline = open_all(1);
        let threaded = open_all(4);
        assert_eq!(inline, threaded, "placement is thread-count independent");
        let mut seen = [0usize; 4];
        for &s in &inline {
            seen[s] += 1;
        }
        // P2c over session counts keeps the spread tight: every shard is
        // populated and no shard is more than two sessions over even.
        assert!(seen.iter().all(|&n| n > 0), "p2c spreads: {seen:?}");
        assert!(*seen.iter().max().unwrap() <= 6, "p2c balances: {seen:?}");
    }

    #[test]
    fn sessions_report_their_shard_and_close() {
        let (m, [a, b], _) = two_chain_module();
        let mut server = Server::new(ServerConfig {
            shards: 3,
            adapt: fast_adapt(),
            ..Default::default()
        });
        let mut ids = Vec::new();
        for _ in 0..9 {
            ids.push(
                server
                    .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
                    .unwrap(),
            );
        }
        assert_eq!(server.sessions().len(), 9);
        let report = server.report();
        for row in &report.sessions {
            assert_eq!(row.shard, server.shard_of(row.session));
        }
        let sorted: Vec<SessionId> = report.sessions.iter().map(|r| r.session).collect();
        let mut expect = sorted.clone();
        expect.sort();
        assert_eq!(sorted, expect, "report rows sorted by session id");
        assert!(server.close_session(ids[0]));
        assert!(!server.close_session(ids[0]), "already closed");
        assert_eq!(server.sessions().len(), 8);
        assert!(matches!(
            server.raise_sync(ids[0], a, &[]),
            Err(ServerError::UnknownSession(_))
        ));
    }

    #[test]
    fn sessions_adapt_independently_and_report_aggregates() {
        let (m, [a, b], [ga, gb]) = two_chain_module();
        let mut server = Server::new(ServerConfig {
            shards: 2,
            adapt: fast_adapt(),
            ..Default::default()
        });
        let binds = bindings(&m, a, b);
        let s1 = server
            .open_session(m.clone(), RuntimeConfig::default(), &binds)
            .unwrap();
        let s2 = server
            .open_session(m.clone(), RuntimeConfig::default(), &binds)
            .unwrap();

        // s1 hammers A, s2 hammers B: each specializes only its own chain.
        for i in 0..80u64 {
            server.submit(s1, a, i * 100 + 100, &[]).unwrap();
            server.submit(s2, b, i * 100 + 100, &[]).unwrap();
        }
        server.run_until(80 * 100 + 1).unwrap();

        let (sa, sb) = server
            .with_runtime(s1, move |rt| {
                (rt.spec().get(a).is_some(), rt.spec().get(b).is_some())
            })
            .unwrap();
        assert!(sa && !sb);
        let (sb2, sa2) = server
            .with_runtime(s2, move |rt| {
                (rt.spec().get(b).is_some(), rt.spec().get(a).is_some())
            })
            .unwrap();
        assert!(sb2 && !sa2);
        assert_eq!(
            server
                .with_runtime(s1, move |rt| rt.global(ga).clone())
                .unwrap(),
            Value::Int(80 * 3)
        );
        assert_eq!(
            server
                .with_runtime(s2, move |rt| rt.global(gb).clone())
                .unwrap(),
            Value::Int(80 * 3)
        );

        let report = server.report();
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.shards.len(), 2);
        let session_sum: u64 = report.sessions.iter().map(|s| s.dispatched).sum();
        assert_eq!(report.dispatched(), session_sum);
        assert!(report.fastpath_hits() > 0, "adapted sessions use chains");
        for row in &report.sessions {
            assert!(row.adapt.epochs > 0, "epochs fired inside run_until");
            assert!(row.adapt.reprofiles >= 1);
            assert_eq!(row.chains_live, 1);
        }
        // The scrape exposes per-shard series: the two sessions sit on
        // different shards, so both shard labels appear, and the summed
        // fast-path counter matches the report.
        let snap = server.metrics();
        let text = snap.render();
        assert!(text.contains("shard=\"0\"") && text.contains("shard=\"1\""));
        assert!(text.contains("# TYPE pdo_dispatch_fastpath_total counter"));
        assert!(text.contains("# TYPE pdo_dispatch_latency_ns summary"));
        assert!(text.contains("# TYPE pdo_server_queue_depth gauge"));
        assert!(text.contains("# TYPE pdo_server_shard_busy_ns_total counter"));
        let fast: u64 = (0..2)
            .map(|s| {
                snap.counter_value("pdo_dispatch_fastpath_total", &[("shard", &s.to_string())])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(fast, report.fastpath_hits());
        assert_eq!(
            snap.gauge_value("pdo_adapt_chains_live", &[("shard", "0")])
                .unwrap_or(0)
                + snap
                    .gauge_value("pdo_adapt_chains_live", &[("shard", "1")])
                    .unwrap_or(0),
            2
        );
    }

    #[test]
    fn idle_sessions_still_reach_epoch_boundaries() {
        let (m, [a, b], _) = two_chain_module();
        let mut server = Server::new(ServerConfig {
            shards: 1,
            adapt: fast_adapt(),
            ..Default::default()
        });
        let sid = server
            .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
            .unwrap();
        // No events at all: run_until pads the clock, so epochs still fire.
        server.run_until(10_000).unwrap();
        assert!(server.engine_stats(sid).unwrap().epochs > 0);
    }

    #[test]
    fn wrong_kind_accessors_are_rejected() {
        let (m, [a, b], _) = two_chain_module();
        let mut server = Server::new(ServerConfig::default());
        let sid = server
            .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
            .unwrap();
        assert!(matches!(
            server.with_ctp(sid, |ep| ep.stats()),
            Err(ServerError::WrongKind(_))
        ));
        assert!(matches!(
            server.with_seccomm(sid, |ep| ep.mac_failures()),
            Err(ServerError::WrongKind(_))
        ));
    }

    #[test]
    fn threaded_mode_matches_inline_report() {
        let (m, [a, b], _) = two_chain_module();
        let run = |threads: usize| {
            let mut server = Server::new(ServerConfig {
                shards: 4,
                threads,
                adapt: fast_adapt(),
                ..Default::default()
            });
            let mut ids = Vec::new();
            for _ in 0..8 {
                ids.push(
                    server
                        .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
                        .unwrap(),
                );
            }
            for (k, &id) in ids.iter().enumerate() {
                let event = if k % 2 == 0 { a } else { b };
                let delays: Vec<u64> = (0..60u64).map(|i| i * 50 + 50).collect();
                server.submit_batch(id, event, &delays).unwrap();
            }
            server.run_until(60 * 50 + 1).unwrap();
            server.report()
        };
        assert_eq!(run(1), run(4), "threads are observationally invisible");
    }

    #[test]
    fn quiesce_drains_queues_and_stops_admission() {
        let (m, [a, b], [ga, _]) = two_chain_module();
        for threads in [1usize, 2] {
            let mut server = Server::new(ServerConfig {
                shards: 2,
                threads,
                adapt: fast_adapt(),
                ..Default::default()
            });
            let binds = bindings(&m, a, b);
            let s1 = server
                .open_session(m.clone(), RuntimeConfig::default(), &binds)
                .unwrap();
            let s2 = server
                .open_session_on(0, m.clone(), RuntimeConfig::default(), &binds)
                .unwrap();
            assert_eq!(server.shard_of(s2), 0, "pinned open lands on its shard");
            // Async raises queue in the FIFO; one session's clock runs ahead.
            for _ in 0..5 {
                server.raise(s1, a, RaiseMode::Async, &[]).unwrap();
                server.raise(s2, a, RaiseMode::Async, &[]).unwrap();
            }
            server
                .with_runtime(s1, |rt| rt.advance_clock(7_777))
                .unwrap();

            let drained_to = server.quiesce().unwrap();
            assert_eq!(drained_to, 7_777, "drained to the furthest clock");
            for &sid in &[s1, s2] {
                let (queued, clock) = server
                    .with_runtime(sid, |rt| (rt.queued_len(), rt.clock_ns()))
                    .unwrap();
                assert_eq!(queued, 0, "FIFO drained");
                assert_eq!(clock, drained_to, "clocks aligned");
            }
            assert_eq!(
                server
                    .with_runtime(s1, move |rt| rt.global(ga).clone())
                    .unwrap(),
                Value::Int(5 * 3),
                "queued work dispatched, not dropped"
            );

            // Quiesced: no new sessions, no new work — typed refusals.
            assert!(!server.is_admitting());
            assert!(matches!(
                server.raise_sync(s1, a, &[]),
                Err(ServerError::Quiesced)
            ));
            assert!(matches!(
                server.submit_batch(s1, a, &[1, 2]),
                Err(ServerError::Quiesced)
            ));
            assert!(matches!(
                server.open_session(m.clone(), RuntimeConfig::default(), &binds),
                Err(ServerError::Quiesced)
            ));
            server.resume_admission();
            server.raise_sync(s1, a, &[]).unwrap();
        }
    }

    #[test]
    fn rebalance_migrates_an_idle_session_off_the_hottest_shard() {
        let (m, [a, b], [ga, _]) = two_chain_module();
        let mut server = Server::new(ServerConfig {
            shards: 2,
            adapt: fast_adapt(),
            ..Default::default()
        });
        let binds = bindings(&m, a, b);
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(
                server
                    .open_session(m.clone(), RuntimeConfig::default(), &binds)
                    .unwrap(),
            );
        }
        // P2c leaves one shard with two sessions. Hammer one session on
        // that shard so it is also the hottest.
        let crowded = (0..2)
            .find(|&s| ids.iter().filter(|&&id| server.shard_of(id) == s).count() == 2)
            .expect("one shard holds two of three sessions");
        let victim = *ids
            .iter()
            .find(|&&id| server.shard_of(id) == crowded)
            .unwrap();
        for i in 0..40u64 {
            server.submit(victim, a, i * 100 + 100, &[]).unwrap();
        }
        server.run_until(40 * 100 + 1).unwrap();

        let migrated = server.rebalance().unwrap().expect("a session migrates");
        assert_eq!(
            server.shard_of(migrated),
            1 - crowded,
            "migrated to the cooler shard"
        );
        let counts: Vec<usize> = (0..2)
            .map(|s| ids.iter().filter(|&&id| server.shard_of(id) == s).count())
            .collect();
        assert!(
            counts.iter().all(|&n| n >= 1),
            "both shards stay populated: {counts:?}"
        );
        // State survives the move: globals, clock, and liveness.
        let acc = server
            .with_runtime(migrated, move |rt| rt.global(ga).clone())
            .unwrap();
        if migrated == victim {
            assert_eq!(acc, Value::Int(40 * 3));
        } else {
            assert_eq!(acc, Value::Int(0));
        }
        server.raise_sync(migrated, a, &[]).unwrap();
        let report = server.report();
        assert_eq!(report.sessions.len(), 3);
    }
}
