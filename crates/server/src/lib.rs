//! `pdo-server`: a sharded multi-session event server with an online
//! adaptive-specialization loop.
//!
//! The paper's workflow is per-program and offline: trace one run,
//! optimize, redeploy. A realistic event server hosts *many* independent
//! sessions — transport connections, secure channels, plain event
//! programs — each with its own hot paths that shift over time. This
//! crate puts the whole pipeline online and multi-tenant:
//!
//! - A [`Server`] owns `N` [shards](ServerConfig::shards). Each session
//!   is placed on the shard selected by a splitmix64 hash of its
//!   [`SessionId`], so placement is deterministic and uniform. The event
//!   runtime is deliberately single-threaded (`Runtime` is `!Send`;
//!   handlers share unsynchronized module state), so shards are *logical*
//!   partitions — the unit a multi-core host would pin to a thread, and
//!   the unit of iteration, reporting, and fairness here.
//! - Every session gets a per-session adaptive-specialization daemon (an
//!   [`AdaptiveEngine`]) attached through the runtime's epoch hook. The
//!   daemon samples the session's live trace window on virtual-clock
//!   epoch boundaries *inside* [`Runtime::run_until`], re-profiles when
//!   enough fresh events accumulate (or a healed chain reports stale),
//!   and hot-swaps compiled chains under binding-version guards — no
//!   caller involvement anywhere.
//! - Protocol endpoints ([`CtpEndpoint`], SecComm [`Endpoint`]) are
//!   constructed *through* the server, so protocol sessions are
//!   shard-resident and adapt exactly like plain ones.
//! - [`Server::report`] snapshots per-shard and per-session counters:
//!   events dispatched, fast-path hits, guard misses, live chains, and
//!   the adaptation loop's installs/drops/despecializations/re-profiles.

use pdo::{AdaptConfig, AdaptStats, AdaptiveEngine};
use pdo_cactus::EventProgram;
use pdo_ctp::{CtpEndpoint, CtpError, CtpParams};
use pdo_events::{Runtime, RuntimeConfig, RuntimeError};
use pdo_ir::{EventId, FuncId, Module, RaiseMode, Value};
use pdo_obs::MetricsSnapshot;
use pdo_seccomm::{Endpoint as SecCommEndpoint, Keys, SecCommError};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// Identifies one session for the lifetime of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Server tunables.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of shards sessions are hashed onto (min 1).
    pub shards: usize,
    /// Adaptation-loop configuration applied to every session opened
    /// through this server.
    pub adapt: AdaptConfig,
    /// Attach a `pdo-obs` hub to every session's runtime so
    /// [`Server::metrics`] can expose per-event dispatch latency
    /// histograms and flight-recorder dumps (on by default; dispatch
    /// counters are exported regardless).
    pub observability: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            adapt: AdaptConfig::default(),
            observability: true,
        }
    }
}

/// Server failure, tagged with the session it occurred on.
#[derive(Debug)]
pub enum ServerError {
    /// No session with that id exists.
    UnknownSession(SessionId),
    /// The session exists but is not of the requested protocol kind.
    WrongKind(SessionId),
    /// The session's event runtime failed.
    Runtime(SessionId, RuntimeError),
    /// A CTP session failed.
    Ctp(SessionId, CtpError),
    /// A SecComm session failed.
    SecComm(SessionId, SecCommError),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownSession(s) => write!(f, "unknown session {s}"),
            ServerError::WrongKind(s) => write!(f, "session {s} is not of the requested kind"),
            ServerError::Runtime(s, e) => write!(f, "session {s}: runtime error: {e}"),
            ServerError::Ctp(s, e) => write!(f, "session {s}: {e}"),
            ServerError::SecComm(s, e) => write!(f, "session {s}: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// What lives inside a session: a plain event program or a protocol
/// endpoint built through the server.
enum SessionKind {
    Plain(Runtime),
    Ctp(CtpEndpoint),
    SecComm(SecCommEndpoint),
}

struct Session {
    kind: SessionKind,
    engine: Rc<RefCell<AdaptiveEngine>>,
}

impl Session {
    fn runtime(&self) -> &Runtime {
        match &self.kind {
            SessionKind::Plain(rt) => rt,
            SessionKind::Ctp(ep) => ep.runtime(),
            SessionKind::SecComm(ep) => ep.runtime(),
        }
    }

    fn runtime_mut(&mut self) -> &mut Runtime {
        match &mut self.kind {
            SessionKind::Plain(rt) => rt,
            SessionKind::Ctp(ep) => ep.runtime_mut(),
            SessionKind::SecComm(ep) => ep.runtime_mut(),
        }
    }
}

#[derive(Default)]
struct Shard {
    sessions: BTreeMap<SessionId, Session>,
}

/// Adaptation and dispatch counters of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionReport {
    /// The session.
    pub session: SessionId,
    /// The shard it resides on.
    pub shard: usize,
    /// Events dispatched (sync + async/timed raises).
    pub dispatched: u64,
    /// Specialized fast-path dispatches taken.
    pub fastpath_hits: u64,
    /// Specialized dispatches that failed their guards and fell back.
    pub guard_misses: u64,
    /// Compiled chains currently installed.
    pub chains_live: usize,
    /// The session daemon's adaptation counters.
    pub adapt: AdaptStats,
}

/// Aggregated counters of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// The shard index.
    pub shard: usize,
    /// Resident sessions.
    pub sessions: usize,
    /// Events dispatched across the shard.
    pub dispatched: u64,
    /// Fast-path dispatches across the shard.
    pub fastpath_hits: u64,
    /// Guard misses across the shard.
    pub guard_misses: u64,
    /// Compiled chains currently installed across the shard.
    pub chains_live: usize,
    /// Summed adaptation counters of the shard's session daemons.
    pub adapt: AdaptStats,
}

/// A point-in-time snapshot of the whole server.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// One entry per shard (index = shard number).
    pub shards: Vec<ShardReport>,
    /// One entry per session, ordered by shard then session id.
    pub sessions: Vec<SessionReport>,
}

impl ServerReport {
    /// Total events dispatched across the server.
    pub fn dispatched(&self) -> u64 {
        self.shards.iter().map(|s| s.dispatched).sum()
    }

    /// Total fast-path dispatches across the server.
    pub fn fastpath_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.fastpath_hits).sum()
    }
}

// `ServerReport` deliberately has no `Display`: the renderable form of the
// server's state is [`Server::metrics`] → `MetricsSnapshot::render()`,
// which exposes the same counters (and more) in one standard text format
// instead of a second hand-rolled one.

/// Finalizer of splitmix64; the standard 64-bit mix used for stable,
/// well-distributed hashing of session ids onto shards.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The sharded multi-session server.
pub struct Server {
    config: ServerConfig,
    shards: Vec<Shard>,
    next_id: u64,
}

impl fmt::Debug for Server {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Server")
            .field("shards", &self.shards.len())
            .field(
                "sessions",
                &self.shards.iter().map(|s| s.sessions.len()).sum::<usize>(),
            )
            .finish()
    }
}

impl Server {
    /// An empty server with `config.shards` shards (at least one).
    pub fn new(config: ServerConfig) -> Self {
        let shards = config.shards.max(1);
        Server {
            config,
            shards: (0..shards).map(|_| Shard::default()).collect(),
            next_id: 1,
        }
    }

    /// The shard a session id hashes onto.
    pub fn shard_of(&self, id: SessionId) -> usize {
        (splitmix64(id.0) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// All open session ids, ordered by shard then id.
    pub fn sessions(&self) -> Vec<SessionId> {
        self.shards
            .iter()
            .flat_map(|s| s.sessions.keys().copied())
            .collect()
    }

    fn place(&mut self, mut kind: SessionKind) -> SessionId {
        let id = SessionId(self.next_id);
        self.next_id += 1;
        let shard = self.shard_of(id);
        let rt = match &mut kind {
            SessionKind::Plain(rt) => rt,
            SessionKind::Ctp(ep) => ep.runtime_mut(),
            SessionKind::SecComm(ep) => ep.runtime_mut(),
        };
        if self.config.observability {
            rt.enable_observability();
        }
        let engine = AdaptiveEngine::attach_new(rt, self.config.adapt);
        self.shards[shard]
            .sessions
            .insert(id, Session { kind, engine });
        id
    }

    /// Opens a plain event-program session: builds a [`Runtime`] over
    /// `module`, applies `bindings` (event, handler, order), and attaches
    /// the adaptive-specialization daemon.
    ///
    /// # Errors
    ///
    /// Propagates binding failures.
    pub fn open_session(
        &mut self,
        module: Module,
        config: RuntimeConfig,
        bindings: &[(EventId, FuncId, i32)],
    ) -> Result<SessionId, ServerError> {
        let probe = SessionId(self.next_id);
        let mut rt = Runtime::with_config(module, config);
        for &(event, handler, order) in bindings {
            rt.bind(event, handler, order)
                .map_err(|e| ServerError::Runtime(probe, e))?;
        }
        Ok(self.place(SessionKind::Plain(rt)))
    }

    /// Opens a shard-resident CTP session over `program` and opens the
    /// protocol (runs setup handlers, starts the controller clock).
    ///
    /// # Errors
    ///
    /// Propagates endpoint construction and `Open` failures.
    pub fn open_ctp_session(
        &mut self,
        program: &EventProgram,
        params: CtpParams,
    ) -> Result<SessionId, ServerError> {
        let probe = SessionId(self.next_id);
        let mut ep = CtpEndpoint::new(program, params).map_err(|e| ServerError::Ctp(probe, e))?;
        ep.open().map_err(|e| ServerError::Ctp(probe, e))?;
        Ok(self.place(SessionKind::Ctp(ep)))
    }

    /// Opens a shard-resident SecComm session over `program` with `keys`.
    ///
    /// # Errors
    ///
    /// Propagates endpoint construction failures.
    pub fn open_seccomm_session(
        &mut self,
        program: &EventProgram,
        keys: &Keys,
    ) -> Result<SessionId, ServerError> {
        let probe = SessionId(self.next_id);
        let ep = SecCommEndpoint::new(program, keys).map_err(|e| ServerError::SecComm(probe, e))?;
        Ok(self.place(SessionKind::SecComm(ep)))
    }

    /// Closes a session, returning whether it existed.
    pub fn close_session(&mut self, id: SessionId) -> bool {
        let shard = self.shard_of(id);
        self.shards[shard].sessions.remove(&id).is_some()
    }

    fn session(&self, id: SessionId) -> Result<&Session, ServerError> {
        let shard = self.shard_of(id);
        self.shards[shard]
            .sessions
            .get(&id)
            .ok_or(ServerError::UnknownSession(id))
    }

    fn session_mut(&mut self, id: SessionId) -> Result<&mut Session, ServerError> {
        let shard = self.shard_of(id);
        self.shards[shard]
            .sessions
            .get_mut(&id)
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Raises `event` on session `id`.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`]; propagated runtime failures.
    pub fn raise(
        &mut self,
        id: SessionId,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
    ) -> Result<(), ServerError> {
        self.session_mut(id)?
            .runtime_mut()
            .raise(event, mode, args)
            .map_err(|e| ServerError::Runtime(id, e))
    }

    /// Raises `event` synchronously on session `id` (dispatches now).
    ///
    /// # Errors
    ///
    /// As [`Server::raise`].
    pub fn raise_sync(
        &mut self,
        id: SessionId,
        event: EventId,
        args: &[Value],
    ) -> Result<(), ServerError> {
        self.raise(id, event, RaiseMode::Sync, args)
    }

    /// Submits `event` to session `id`'s timer queue, due `delay_ns` from
    /// the session's current virtual time (the timed-raise convention puts
    /// the delay in `args[0]`; this prepends it).
    ///
    /// # Errors
    ///
    /// As [`Server::raise`].
    pub fn submit(
        &mut self,
        id: SessionId,
        event: EventId,
        delay_ns: u64,
        args: &[Value],
    ) -> Result<(), ServerError> {
        let mut full = Vec::with_capacity(args.len() + 1);
        full.push(Value::Int(delay_ns as i64));
        full.extend_from_slice(args);
        self.raise(id, event, RaiseMode::Timed, &full)
    }

    /// Advances every session on every shard to `deadline_ns`: dispatches
    /// all due queued/timed work, then pads each session's clock to the
    /// deadline so adaptation epochs fire even on idle sessions. Shards
    /// are served round-robin in index order; a failure stops the sweep
    /// and reports the offending session.
    ///
    /// # Errors
    ///
    /// Propagates the first session failure (tagged with its id).
    pub fn run_until(&mut self, deadline_ns: u64) -> Result<(), ServerError> {
        for shard in &mut self.shards {
            for (&id, session) in &mut shard.sessions {
                match &mut session.kind {
                    SessionKind::Ctp(ep) => {
                        // Pads its clock and checks link liveness itself.
                        ep.run_until(deadline_ns)
                            .map_err(|e| ServerError::Ctp(id, e))?;
                    }
                    SessionKind::Plain(rt) => {
                        rt.run_until(deadline_ns)
                            .map_err(|e| ServerError::Runtime(id, e))?;
                        let now = rt.clock_ns();
                        if deadline_ns > now {
                            rt.advance_clock(deadline_ns - now);
                        }
                    }
                    SessionKind::SecComm(ep) => {
                        let rt = ep.runtime_mut();
                        rt.run_until(deadline_ns)
                            .map_err(|e| ServerError::Runtime(id, e))?;
                        let now = rt.clock_ns();
                        if deadline_ns > now {
                            ep.tick(deadline_ns - now);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Read-only access to a session's runtime.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`].
    pub fn runtime(&self, id: SessionId) -> Result<&Runtime, ServerError> {
        Ok(self.session(id)?.runtime())
    }

    /// Mutable access to a session's runtime.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`].
    pub fn runtime_mut(&mut self, id: SessionId) -> Result<&mut Runtime, ServerError> {
        Ok(self.session_mut(id)?.runtime_mut())
    }

    /// The session's adaptation daemon (shared handle).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`].
    pub fn engine(&self, id: SessionId) -> Result<Rc<RefCell<AdaptiveEngine>>, ServerError> {
        Ok(Rc::clone(&self.session(id)?.engine))
    }

    /// Mutable access to a CTP session's endpoint (send, drain, stats).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`]; [`ServerError::WrongKind`] for a
    /// non-CTP session.
    pub fn ctp_mut(&mut self, id: SessionId) -> Result<&mut CtpEndpoint, ServerError> {
        match &mut self.session_mut(id)?.kind {
            SessionKind::Ctp(ep) => Ok(ep),
            _ => Err(ServerError::WrongKind(id)),
        }
    }

    /// Mutable access to a SecComm session's endpoint (push, pop).
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownSession`]; [`ServerError::WrongKind`] for a
    /// non-SecComm session.
    pub fn seccomm_mut(&mut self, id: SessionId) -> Result<&mut SecCommEndpoint, ServerError> {
        match &mut self.session_mut(id)?.kind {
            SessionKind::SecComm(ep) => Ok(ep),
            _ => Err(ServerError::WrongKind(id)),
        }
    }

    /// Scrapes every shard into one server-wide [`MetricsSnapshot`]:
    /// runtime dispatch counters and latency histograms, adaptation
    /// counters/gauges, and protocol fault counters (CTP link faults and
    /// backoff, SecComm MAC failures), every series labelled with its
    /// `shard`. Sessions on the same shard aggregate by construction —
    /// counters add and histograms merge — so this *is* the per-shard
    /// rollup, and `MetricsSnapshot::merge` rolls servers up the same way.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        for (shard_no, shard) in self.shards.iter().enumerate() {
            let sh = shard_no.to_string();
            let labels: [(&str, &str); 1] = [("shard", &sh)];
            snap.gauge(
                "pdo_server_sessions",
                "Sessions resident on the shard",
                &labels,
                shard.sessions.len() as i64,
            );
            for session in shard.sessions.values() {
                let rt = session.runtime();
                rt.export_metrics(&mut snap, &labels);
                session
                    .engine
                    .borrow()
                    .export_metrics(rt, &mut snap, &labels);
                match &session.kind {
                    SessionKind::Plain(_) => {}
                    SessionKind::Ctp(ep) => ep.stats().export_metrics(&mut snap, &labels),
                    SessionKind::SecComm(ep) => snap.counter(
                        "pdo_seccomm_mac_failures_total",
                        "Inbound SecComm messages rejected by MAC verification",
                        &labels,
                        ep.mac_failures(),
                    ),
                }
            }
        }
        snap
    }

    /// Dumps the last `n` flight-recorder entries of every session that
    /// has a hub attached, labelled by session id — the post-mortem
    /// companion to [`Server::metrics`].
    pub fn dump_flight_recorders(&self, n: usize) -> String {
        let mut out = String::new();
        for shard in &self.shards {
            for (&id, session) in &shard.sessions {
                if let Some(obs) = session.runtime().obs() {
                    let dump = obs.dump(n);
                    if !dump.is_empty() {
                        out.push_str(&format!("--- session {id} (last {n} records) ---\n"));
                        out.push_str(&dump);
                    }
                }
            }
        }
        out
    }

    /// A point-in-time snapshot of per-shard and per-session counters.
    pub fn report(&self) -> ServerReport {
        let mut report = ServerReport {
            shards: (0..self.shards.len())
                .map(|shard| ShardReport {
                    shard,
                    ..Default::default()
                })
                .collect(),
            sessions: Vec::new(),
        };
        for (shard_no, shard) in self.shards.iter().enumerate() {
            let agg = &mut report.shards[shard_no];
            agg.sessions = shard.sessions.len();
            for (&id, session) in &shard.sessions {
                let rt = session.runtime();
                let adapt = session.engine.borrow().stats();
                let row = SessionReport {
                    session: id,
                    shard: shard_no,
                    // One registry lookup per generic dispatch; fast-path
                    // dispatches skip the registry, so the sum counts
                    // every dispatched event exactly once.
                    dispatched: rt.cost.registry_lookups + rt.cost.fastpath_hits,
                    fastpath_hits: rt.cost.fastpath_hits,
                    guard_misses: rt.cost.fastpath_misses,
                    chains_live: rt.spec().len(),
                    adapt,
                };
                agg.dispatched += row.dispatched;
                agg.fastpath_hits += row.fastpath_hits;
                agg.guard_misses += row.guard_misses;
                agg.chains_live += row.chains_live;
                agg.adapt.epochs += adapt.epochs;
                agg.adapt.reprofiles += adapt.reprofiles;
                agg.adapt.chains_installed += adapt.chains_installed;
                agg.adapt.chains_dropped += adapt.chains_dropped;
                agg.adapt.despecialized += adapt.despecialized;
                report.sessions.push(row);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::{BinOp, FunctionBuilder};

    /// Two independent events; handler `k` of each adds `k` to its event's
    /// accumulator, so one dispatch of [h1, h2] adds 3.
    fn two_chain_module() -> (Module, [EventId; 2], [pdo_ir::GlobalId; 2]) {
        let mut m = Module::new();
        let a = m.add_event("A");
        let b = m.add_event("B");
        let ga = m.add_global("acc_a", Value::Int(0));
        let gb = m.add_global("acc_b", Value::Int(0));
        let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId, d: i64| {
            let mut fb = FunctionBuilder::new(name, 0);
            let v = fb.load_global(g);
            let dd = fb.const_int(d);
            let o = fb.bin(BinOp::Add, v, dd);
            fb.store_global(g, o);
            fb.ret(None);
            m.add_function(fb.finish())
        };
        adder(&mut m, "a1", ga, 1);
        adder(&mut m, "a2", ga, 2);
        adder(&mut m, "b1", gb, 1);
        adder(&mut m, "b2", gb, 2);
        (m, [a, b], [ga, gb])
    }

    fn bindings(m: &Module, a: EventId, b: EventId) -> Vec<(EventId, FuncId, i32)> {
        vec![
            (a, m.function_by_name("a1").unwrap(), 0),
            (a, m.function_by_name("a2").unwrap(), 1),
            (b, m.function_by_name("b1").unwrap(), 0),
            (b, m.function_by_name("b2").unwrap(), 1),
        ]
    }

    fn fast_adapt() -> AdaptConfig {
        AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: pdo::OptimizeOptions::new(10),
            ..Default::default()
        }
    }

    #[test]
    fn session_placement_is_deterministic_and_spread() {
        let server = Server::new(ServerConfig {
            shards: 4,
            ..Default::default()
        });
        let mut seen = [0usize; 4];
        for i in 1..=64 {
            let shard = server.shard_of(SessionId(i));
            assert_eq!(shard, server.shard_of(SessionId(i)), "stable");
            seen[shard] += 1;
        }
        assert!(
            seen.iter().all(|&n| n > 0),
            "64 ids must reach every one of 4 shards: {seen:?}"
        );
    }

    #[test]
    fn sessions_land_on_their_hashed_shard_and_close() {
        let (m, [a, b], _) = two_chain_module();
        let mut server = Server::new(ServerConfig {
            shards: 3,
            adapt: fast_adapt(),
            ..Default::default()
        });
        let mut ids = Vec::new();
        for _ in 0..9 {
            ids.push(
                server
                    .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
                    .unwrap(),
            );
        }
        assert_eq!(server.sessions().len(), 9);
        let report = server.report();
        for row in &report.sessions {
            assert_eq!(row.shard, server.shard_of(row.session));
        }
        assert!(server.close_session(ids[0]));
        assert!(!server.close_session(ids[0]), "already closed");
        assert_eq!(server.sessions().len(), 8);
        assert!(matches!(
            server.raise_sync(ids[0], a, &[]),
            Err(ServerError::UnknownSession(_))
        ));
    }

    #[test]
    fn sessions_adapt_independently_and_report_aggregates() {
        let (m, [a, b], [ga, gb]) = two_chain_module();
        let mut server = Server::new(ServerConfig {
            shards: 2,
            adapt: fast_adapt(),
            ..Default::default()
        });
        let binds = bindings(&m, a, b);
        let s1 = server
            .open_session(m.clone(), RuntimeConfig::default(), &binds)
            .unwrap();
        let s2 = server
            .open_session(m.clone(), RuntimeConfig::default(), &binds)
            .unwrap();

        // s1 hammers A, s2 hammers B: each specializes only its own chain.
        for i in 0..80u64 {
            server.submit(s1, a, i * 100 + 100, &[]).unwrap();
            server.submit(s2, b, i * 100 + 100, &[]).unwrap();
        }
        server.run_until(80 * 100 + 1).unwrap();

        assert!(server.runtime(s1).unwrap().spec().get(a).is_some());
        assert!(server.runtime(s1).unwrap().spec().get(b).is_none());
        assert!(server.runtime(s2).unwrap().spec().get(b).is_some());
        assert!(server.runtime(s2).unwrap().spec().get(a).is_none());
        assert_eq!(server.runtime(s1).unwrap().global(ga), &Value::Int(80 * 3));
        assert_eq!(server.runtime(s2).unwrap().global(gb), &Value::Int(80 * 3));

        let report = server.report();
        assert_eq!(report.sessions.len(), 2);
        assert_eq!(report.shards.len(), 2);
        let session_sum: u64 = report.sessions.iter().map(|s| s.dispatched).sum();
        assert_eq!(report.dispatched(), session_sum);
        assert!(report.fastpath_hits() > 0, "adapted sessions use chains");
        for row in &report.sessions {
            assert!(row.adapt.epochs > 0, "epochs fired inside run_until");
            assert!(row.adapt.reprofiles >= 1);
            assert_eq!(row.chains_live, 1);
        }
        // The scrape exposes per-shard series: each session hashed onto a
        // different shard, so both shard labels appear, and the summed
        // fast-path counter matches the report.
        let snap = server.metrics();
        let text = snap.render();
        assert!(text.contains("shard=\"0\"") && text.contains("shard=\"1\""));
        assert!(text.contains("# TYPE pdo_dispatch_fastpath_total counter"));
        assert!(text.contains("# TYPE pdo_dispatch_latency_ns summary"));
        let fast: u64 = (0..2)
            .map(|s| {
                snap.counter_value("pdo_dispatch_fastpath_total", &[("shard", &s.to_string())])
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(fast, report.fastpath_hits());
        assert_eq!(
            snap.gauge_value("pdo_adapt_chains_live", &[("shard", "0")])
                .unwrap_or(0)
                + snap
                    .gauge_value("pdo_adapt_chains_live", &[("shard", "1")])
                    .unwrap_or(0),
            2
        );
    }

    #[test]
    fn idle_sessions_still_reach_epoch_boundaries() {
        let (m, [a, b], _) = two_chain_module();
        let mut server = Server::new(ServerConfig {
            shards: 1,
            adapt: fast_adapt(),
            ..Default::default()
        });
        let sid = server
            .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
            .unwrap();
        // No events at all: run_until pads the clock, so epochs still fire.
        server.run_until(10_000).unwrap();
        assert!(server.engine(sid).unwrap().borrow().stats().epochs > 0);
    }

    #[test]
    fn wrong_kind_accessors_are_rejected() {
        let (m, [a, b], _) = two_chain_module();
        let mut server = Server::new(ServerConfig::default());
        let sid = server
            .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
            .unwrap();
        assert!(matches!(
            server.ctp_mut(sid),
            Err(ServerError::WrongKind(_))
        ));
        assert!(matches!(
            server.seccomm_mut(sid),
            Err(ServerError::WrongKind(_))
        ));
    }
}
