//! The durable session/server snapshot codec.
//!
//! [`SessionSnapshot`] is the complete migratable state of one session —
//! base module, runtime limits, bindings, globals, virtual clock,
//! scheduler queue and timer wheel, pending fault plan, the adaptation
//! daemon's [`EngineSnapshot`], and the protocol endpoint's link or wire
//! state — everything a fresh shard (or a fresh process) needs to resume
//! the session instead of cold-starting it. In-memory migration ships the
//! struct across the shard channel; durable persistence runs it through
//! [`encode_image`]/[`decode_image`] over the `pdo-snap` frame.
//!
//! Every encoder destructures its struct exhaustively, so adding a field
//! to any captured state type is a compile error here rather than a
//! silently incomplete snapshot. Collections iterate in key order
//! (`BTreeMap`s, seq-sorted vectors), so encoding is deterministic:
//! snapshot → restore → snapshot is byte-identical.

use pdo::{EngineSnapshot, QuarantineEntry};
use pdo_ctp::{CtpLinkState, CtpParams};
use pdo_events::wire::{ReceiverState, WireFaults, WireState, WireStats};
use pdo_events::{
    FaultInjectorState, FaultKind, FaultPolicy, Pending, RuntimeConfig, SchedulerState, TimerEntry,
};
use pdo_ir::{EventId, FuncId, Module, Value};
use pdo_profile::graph::{EdgeData, EventGraph};
use pdo_profile::handlers::{HandlerGraph, HandlerSeq, NestedRaise};
use pdo_profile::BuilderState;
use pdo_seccomm::{Keys, SecWireState};
use pdo_snap::{SnapReader, SnapWriter, SnapshotError};

use crate::SessionId;

/// The migratable (and durable) portion of one session. See the module
/// docs; the adaptation daemon's live trace window and the current
/// epoch's undrained stats delta are the only state *not* captured —
/// both are empty at epoch boundaries, which is where snapshots are
/// taken.
pub(crate) struct SessionSnapshot {
    pub module: Module,
    pub config: RuntimeConfig,
    pub bindings: Vec<(EventId, FuncId, i32)>,
    pub globals: Vec<Value>,
    pub clock_ns: u64,
    pub sched: SchedulerState,
    pub injector: Option<FaultInjectorState>,
    pub engine: EngineSnapshot,
    pub kind: KindSnapshot,
}

/// Protocol-endpoint state riding along with a session snapshot, plus
/// the recipe (params/keys) needed to rebuild the endpoint's natives.
pub(crate) enum KindSnapshot {
    Plain,
    Ctp {
        params: CtpParams,
        link: Box<CtpLinkState>,
    },
    SecComm {
        keys: Keys,
        wire: Box<SecWireState>,
    },
}

// --- primitive helpers ---------------------------------------------------

fn put_event(w: &mut SnapWriter, e: EventId) {
    w.u32(e.index() as u32);
}

fn take_event(r: &mut SnapReader<'_>) -> Result<EventId, SnapshotError> {
    Ok(EventId::from_index(r.take_u32()? as usize))
}

fn put_func(w: &mut SnapWriter, f: FuncId) {
    w.u32(f.index() as u32);
}

fn take_func(r: &mut SnapReader<'_>) -> Result<FuncId, SnapshotError> {
    Ok(FuncId::from_index(r.take_u32()? as usize))
}

fn put_len(w: &mut SnapWriter, n: usize) {
    w.u64(n as u64);
}

fn take_len(r: &mut SnapReader<'_>) -> Result<usize, SnapshotError> {
    usize::try_from(r.take_u64()?)
        .map_err(|_| SnapshotError::Malformed("collection length overflows usize".into()))
}

fn put_opt_u64(w: &mut SnapWriter, v: Option<u64>) {
    match v {
        Some(x) => {
            w.bool(true);
            w.u64(x);
        }
        None => w.bool(false),
    }
}

fn take_opt_u64(r: &mut SnapReader<'_>) -> Result<Option<u64>, SnapshotError> {
    Ok(if r.take_bool()? {
        Some(r.take_u64()?)
    } else {
        None
    })
}

// --- runtime config ------------------------------------------------------

fn put_config(w: &mut SnapWriter, c: &RuntimeConfig) {
    let RuntimeConfig {
        max_sync_depth,
        max_steps,
        fuel,
        fault_policy,
    } = *c;
    w.u32(max_sync_depth);
    w.u64(max_steps);
    put_opt_u64(w, fuel);
    w.u8(match fault_policy {
        FaultPolicy::Abort => 0,
        FaultPolicy::SkipEvent => 1,
        FaultPolicy::Despecialize => 2,
    });
}

fn take_config(r: &mut SnapReader<'_>) -> Result<RuntimeConfig, SnapshotError> {
    Ok(RuntimeConfig {
        max_sync_depth: r.take_u32()?,
        max_steps: r.take_u64()?,
        fuel: take_opt_u64(r)?,
        fault_policy: match r.take_u8()? {
            0 => FaultPolicy::Abort,
            1 => FaultPolicy::SkipEvent,
            2 => FaultPolicy::Despecialize,
            t => {
                return Err(SnapshotError::Malformed(format!(
                    "unknown fault policy tag {t}"
                )))
            }
        },
    })
}

// --- scheduler -----------------------------------------------------------

fn put_args(w: &mut SnapWriter, args: &[Value]) {
    put_len(w, args.len());
    for a in args {
        w.value(a);
    }
}

fn take_args(r: &mut SnapReader<'_>) -> Result<Vec<Value>, SnapshotError> {
    let n = take_len(r)?;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(r.take_value()?);
    }
    Ok(out)
}

fn put_sched(w: &mut SnapWriter, s: &SchedulerState) {
    let SchedulerState { queue, timers, seq } = s;
    put_len(w, queue.len());
    // `trace` is an in-memory diagnostic rider (causal trace context);
    // it is deliberately not encoded, keeping the byte format — pinned
    // by the golden fixture — unchanged. Traces do not survive a
    // snapshot/restore cycle.
    for Pending {
        event,
        args,
        trace: _,
    } in queue
    {
        put_event(w, *event);
        put_args(w, args);
    }
    put_len(w, timers.len());
    for TimerEntry {
        deadline_ns,
        seq,
        event,
        args,
        trace: _,
    } in timers
    {
        w.u64(*deadline_ns);
        w.u64(*seq);
        put_event(w, *event);
        put_args(w, args);
    }
    w.u64(*seq);
}

fn take_sched(r: &mut SnapReader<'_>) -> Result<SchedulerState, SnapshotError> {
    let mut queue = Vec::new();
    for _ in 0..take_len(r)? {
        queue.push(Pending {
            event: take_event(r)?,
            args: take_args(r)?,
            trace: None,
        });
    }
    let mut timers = Vec::new();
    for _ in 0..take_len(r)? {
        timers.push(TimerEntry {
            deadline_ns: r.take_u64()?,
            seq: r.take_u64()?,
            event: take_event(r)?,
            args: take_args(r)?,
            trace: None,
        });
    }
    Ok(SchedulerState {
        queue,
        timers,
        seq: r.take_u64()?,
    })
}

// --- fault injector ------------------------------------------------------

fn put_fault_kind(w: &mut SnapWriter, k: FaultKind) {
    match k {
        FaultKind::TrapDispatch => w.u8(0),
        FaultKind::CorruptArg { index } => {
            w.u8(1);
            w.u32(u32::from(index));
        }
        FaultKind::ExhaustFuel => w.u8(2),
        FaultKind::DropTimed => w.u8(3),
        FaultKind::DelayTimed { extra_ns } => {
            w.u8(4);
            w.u64(extra_ns);
        }
        FaultKind::HandlerTrap => w.u8(5),
    }
}

fn take_fault_kind(r: &mut SnapReader<'_>) -> Result<FaultKind, SnapshotError> {
    Ok(match r.take_u8()? {
        0 => FaultKind::TrapDispatch,
        1 => FaultKind::CorruptArg {
            index: u16::try_from(r.take_u32()?)
                .map_err(|_| SnapshotError::Malformed("corrupt-arg index overflows u16".into()))?,
        },
        2 => FaultKind::ExhaustFuel,
        3 => FaultKind::DropTimed,
        4 => FaultKind::DelayTimed {
            extra_ns: r.take_u64()?,
        },
        5 => FaultKind::HandlerTrap,
        t => {
            return Err(SnapshotError::Malformed(format!(
                "unknown fault kind tag {t}"
            )))
        }
    })
}

fn put_plan(w: &mut SnapWriter, plan: &[(EventId, u64, FaultKind)]) {
    put_len(w, plan.len());
    for &(event, occurrence, kind) in plan {
        put_event(w, event);
        w.u64(occurrence);
        put_fault_kind(w, kind);
    }
}

fn take_plan(r: &mut SnapReader<'_>) -> Result<Vec<(EventId, u64, FaultKind)>, SnapshotError> {
    let mut out = Vec::new();
    for _ in 0..take_len(r)? {
        out.push((take_event(r)?, r.take_u64()?, take_fault_kind(r)?));
    }
    Ok(out)
}

fn put_counts(w: &mut SnapWriter, counts: &[(EventId, u64)]) {
    put_len(w, counts.len());
    for &(event, n) in counts {
        put_event(w, event);
        w.u64(n);
    }
}

fn take_counts(r: &mut SnapReader<'_>) -> Result<Vec<(EventId, u64)>, SnapshotError> {
    let mut out = Vec::new();
    for _ in 0..take_len(r)? {
        out.push((take_event(r)?, r.take_u64()?));
    }
    Ok(out)
}

fn put_injector(w: &mut SnapWriter, s: &FaultInjectorState) {
    let FaultInjectorState {
        dispatch_plan,
        timed_plan,
        dispatch_counts,
        timed_counts,
    } = s;
    put_plan(w, dispatch_plan);
    put_plan(w, timed_plan);
    put_counts(w, dispatch_counts);
    put_counts(w, timed_counts);
}

fn take_injector(r: &mut SnapReader<'_>) -> Result<FaultInjectorState, SnapshotError> {
    Ok(FaultInjectorState {
        dispatch_plan: take_plan(r)?,
        timed_plan: take_plan(r)?,
        dispatch_counts: take_counts(r)?,
        timed_counts: take_counts(r)?,
    })
}

// --- adaptation engine ---------------------------------------------------

fn put_engine(w: &mut SnapWriter, e: &EngineSnapshot) {
    let EngineSnapshot {
        profile,
        stats,
        sleep_remaining,
        quarantine,
    } = e;

    let BuilderState {
        event_graph,
        handler_graph,
        prev_raise,
        fresh,
    } = profile;
    let EventGraph { nodes, edges } = event_graph;
    put_len(w, nodes.len());
    for (&event, &count) in nodes {
        put_event(w, event);
        w.u64(count);
    }
    put_len(w, edges.len());
    for (&(from, to), data) in edges {
        let EdgeData {
            weight,
            sync,
            asynchronous,
        } = *data;
        put_event(w, from);
        put_event(w, to);
        w.u64(weight);
        w.u64(sync);
        w.u64(asynchronous);
    }
    let HandlerGraph { sequences, nested } = handler_graph;
    put_len(w, sequences.len());
    for (&event, seqs) in sequences {
        put_event(w, event);
        put_len(w, seqs.len());
        for HandlerSeq { handlers, count } in seqs {
            put_len(w, handlers.len());
            for &h in handlers {
                put_func(w, h);
            }
            w.u64(*count);
        }
    }
    put_len(w, nested.len());
    for (raise, &count) in nested {
        let NestedRaise {
            parent_event,
            handler,
            child_event,
        } = *raise;
        put_event(w, parent_event);
        put_func(w, handler);
        put_event(w, child_event);
        w.u64(count);
    }
    match prev_raise {
        Some(e) => {
            w.bool(true);
            put_event(w, *e);
        }
        None => w.bool(false),
    }
    w.u64(*fresh);

    let pdo::AdaptStats {
        epochs,
        sampled_epochs,
        reprofiles,
        chains_installed,
        chains_dropped,
        despecialized,
        cache_hits,
        cache_misses,
        cache_evictions,
        cache_invalidations,
    } = *stats;
    for v in [
        epochs,
        sampled_epochs,
        reprofiles,
        chains_installed,
        chains_dropped,
        despecialized,
        cache_hits,
        cache_misses,
        cache_evictions,
        cache_invalidations,
    ] {
        w.u64(v);
    }

    w.u32(*sleep_remaining);

    put_len(w, quarantine.len());
    for &(event, entry) in quarantine {
        let QuarantineEntry {
            faults,
            guard_misses,
            strikes,
            until_ns,
        } = entry;
        put_event(w, event);
        w.u64(faults);
        w.u64(guard_misses);
        w.u32(strikes);
        put_opt_u64(w, until_ns);
    }
}

fn take_engine(r: &mut SnapReader<'_>) -> Result<EngineSnapshot, SnapshotError> {
    let mut event_graph = EventGraph::new();
    for _ in 0..take_len(r)? {
        let event = take_event(r)?;
        event_graph.nodes.insert(event, r.take_u64()?);
    }
    for _ in 0..take_len(r)? {
        let from = take_event(r)?;
        let to = take_event(r)?;
        event_graph.edges.insert(
            (from, to),
            EdgeData {
                weight: r.take_u64()?,
                sync: r.take_u64()?,
                asynchronous: r.take_u64()?,
            },
        );
    }
    let mut handler_graph = HandlerGraph::new();
    for _ in 0..take_len(r)? {
        let event = take_event(r)?;
        let mut seqs = Vec::new();
        for _ in 0..take_len(r)? {
            let mut handlers = Vec::new();
            for _ in 0..take_len(r)? {
                handlers.push(take_func(r)?);
            }
            seqs.push(HandlerSeq {
                handlers,
                count: r.take_u64()?,
            });
        }
        handler_graph.sequences.insert(event, seqs);
    }
    for _ in 0..take_len(r)? {
        let raise = NestedRaise {
            parent_event: take_event(r)?,
            handler: take_func(r)?,
            child_event: take_event(r)?,
        };
        handler_graph.nested.insert(raise, r.take_u64()?);
    }
    let prev_raise = if r.take_bool()? {
        Some(take_event(r)?)
    } else {
        None
    };
    let fresh = r.take_u64()?;
    let profile = BuilderState {
        event_graph,
        handler_graph,
        prev_raise,
        fresh,
    };

    let stats = pdo::AdaptStats {
        epochs: r.take_u64()?,
        sampled_epochs: r.take_u64()?,
        reprofiles: r.take_u64()?,
        chains_installed: r.take_u64()?,
        chains_dropped: r.take_u64()?,
        despecialized: r.take_u64()?,
        cache_hits: r.take_u64()?,
        cache_misses: r.take_u64()?,
        cache_evictions: r.take_u64()?,
        cache_invalidations: r.take_u64()?,
    };

    let sleep_remaining = r.take_u32()?;

    let mut quarantine = Vec::new();
    for _ in 0..take_len(r)? {
        let event = take_event(r)?;
        quarantine.push((
            event,
            QuarantineEntry {
                faults: r.take_u64()?,
                guard_misses: r.take_u64()?,
                strikes: r.take_u32()?,
                until_ns: take_opt_u64(r)?,
            },
        ));
    }

    Ok(EngineSnapshot {
        profile,
        stats,
        sleep_remaining,
        quarantine,
    })
}

// --- protocol endpoints --------------------------------------------------

fn put_wire_faults(w: &mut SnapWriter, f: &WireFaults) {
    let WireFaults {
        drop_per_mille,
        dup_per_mille,
        reorder_per_mille,
        corrupt_per_mille,
        seed,
    } = *f;
    w.u32(u32::from(drop_per_mille));
    w.u32(u32::from(dup_per_mille));
    w.u32(u32::from(reorder_per_mille));
    w.u32(u32::from(corrupt_per_mille));
    w.u64(seed);
}

fn take_wire_faults(r: &mut SnapReader<'_>) -> Result<WireFaults, SnapshotError> {
    let mut per_mille = || -> Result<u16, SnapshotError> {
        u16::try_from(r.take_u32()?)
            .map_err(|_| SnapshotError::Malformed("per-mille rate overflows u16".into()))
    };
    Ok(WireFaults {
        drop_per_mille: per_mille()?,
        dup_per_mille: per_mille()?,
        reorder_per_mille: per_mille()?,
        corrupt_per_mille: per_mille()?,
        seed: r.take_u64()?,
    })
}

fn put_seq_frames(w: &mut SnapWriter, frames: &[(i64, Vec<u8>)]) {
    put_len(w, frames.len());
    for (seq, payload) in frames {
        w.i64(*seq);
        w.bytes(payload);
    }
}

fn take_seq_frames(r: &mut SnapReader<'_>) -> Result<Vec<(i64, Vec<u8>)>, SnapshotError> {
    let mut out = Vec::new();
    for _ in 0..take_len(r)? {
        out.push((r.take_i64()?, r.take_bytes()?));
    }
    Ok(out)
}

fn put_ctp(w: &mut SnapWriter, params: &CtpParams, link: &CtpLinkState) {
    let CtpParams {
        ack_drop_every,
        clk_period_ns,
        link_faults,
        max_retries,
    } = *params;
    w.u64(ack_drop_every);
    w.u64(clk_period_ns);
    put_wire_faults(w, &link_faults);
    w.u32(max_retries);

    let CtpLinkState {
        unacked,
        wire,
        retransmissions,
        sends_since_sample,
        ack_drop_every,
        link,
        outcome,
        max_retries,
        retries,
        timeout_base_ns,
        unreachable,
        rx,
        rx_corrupt_dropped,
    } = link;
    put_seq_frames(w, unacked);
    put_seq_frames(w, wire);
    w.u64(*retransmissions);
    w.i64(*sends_since_sample);
    w.u64(*ack_drop_every);

    let WireState {
        faults,
        rng,
        held,
        stats,
    } = link;
    put_wire_faults(w, faults);
    w.u64(*rng);
    match held {
        Some(((seq, payload), copies)) => {
            w.bool(true);
            w.i64(*seq);
            w.bytes(payload);
            w.u32(*copies);
        }
        None => w.bool(false),
    }
    let WireStats {
        dropped,
        duplicated,
        reordered,
        corrupted,
    } = *stats;
    w.u64(dropped);
    w.u64(duplicated);
    w.u64(reordered);
    w.u64(corrupted);

    put_len(w, outcome.len());
    for &(seq, delivered) in outcome {
        w.i64(seq);
        w.bool(delivered);
    }
    w.u32(*max_retries);
    put_len(w, retries.len());
    for &(seq, n) in retries {
        w.i64(seq);
        w.u32(n);
    }
    w.i64(*timeout_base_ns);
    w.bool(*unreachable);

    let ReceiverState {
        next,
        buffer,
        delivered,
        duplicates,
    } = rx;
    w.i64(*next);
    put_seq_frames(w, buffer);
    put_seq_frames(w, delivered);
    w.u64(*duplicates);

    w.u64(*rx_corrupt_dropped);
}

fn take_ctp(r: &mut SnapReader<'_>) -> Result<(CtpParams, CtpLinkState), SnapshotError> {
    let params = CtpParams {
        ack_drop_every: r.take_u64()?,
        clk_period_ns: r.take_u64()?,
        link_faults: take_wire_faults(r)?,
        max_retries: r.take_u32()?,
    };

    let unacked = take_seq_frames(r)?;
    let wire = take_seq_frames(r)?;
    let retransmissions = r.take_u64()?;
    let sends_since_sample = r.take_i64()?;
    let ack_drop_every = r.take_u64()?;

    let faults = take_wire_faults(r)?;
    let rng = r.take_u64()?;
    let held = if r.take_bool()? {
        let seq = r.take_i64()?;
        let payload = r.take_bytes()?;
        Some(((seq, payload), r.take_u32()?))
    } else {
        None
    };
    let stats = WireStats {
        dropped: r.take_u64()?,
        duplicated: r.take_u64()?,
        reordered: r.take_u64()?,
        corrupted: r.take_u64()?,
    };
    let link = WireState {
        faults,
        rng,
        held,
        stats,
    };

    let mut outcome = Vec::new();
    for _ in 0..take_len(r)? {
        outcome.push((r.take_i64()?, r.take_bool()?));
    }
    let max_retries = r.take_u32()?;
    let mut retries = Vec::new();
    for _ in 0..take_len(r)? {
        retries.push((r.take_i64()?, r.take_u32()?));
    }
    let timeout_base_ns = r.take_i64()?;
    let unreachable = r.take_bool()?;

    let rx = ReceiverState {
        next: r.take_i64()?,
        buffer: take_seq_frames(r)?,
        delivered: take_seq_frames(r)?,
        duplicates: r.take_u64()?,
    };
    let rx_corrupt_dropped = r.take_u64()?;

    Ok((
        params,
        CtpLinkState {
            unacked,
            wire,
            retransmissions,
            sends_since_sample,
            ack_drop_every,
            link,
            outcome,
            max_retries,
            retries,
            timeout_base_ns,
            unreachable,
            rx,
            rx_corrupt_dropped,
        },
    ))
}

fn put_seccomm(w: &mut SnapWriter, keys: &Keys, wire: &SecWireState) {
    let Keys { des, xor, mac } = keys;
    w.bytes(des);
    w.bytes(xor);
    w.bytes(mac);

    let SecWireState {
        outbox,
        delivered,
        decode_ok,
        mac_failures,
    } = wire;
    put_len(w, outbox.len());
    for m in outbox {
        w.bytes(m);
    }
    put_len(w, delivered.len());
    for m in delivered {
        w.bytes(m);
    }
    w.bool(*decode_ok);
    w.u64(*mac_failures);
}

fn take_seccomm(r: &mut SnapReader<'_>) -> Result<(Keys, SecWireState), SnapshotError> {
    let des: [u8; 8] = r
        .take_bytes()?
        .try_into()
        .map_err(|_| SnapshotError::Malformed("DES key is not 8 bytes".into()))?;
    let keys = Keys {
        des,
        xor: r.take_bytes()?,
        mac: r.take_bytes()?,
    };
    let mut outbox = Vec::new();
    for _ in 0..take_len(r)? {
        outbox.push(r.take_bytes()?);
    }
    let mut delivered = Vec::new();
    for _ in 0..take_len(r)? {
        delivered.push(r.take_bytes()?);
    }
    Ok((
        keys,
        SecWireState {
            outbox,
            delivered,
            decode_ok: r.take_bool()?,
            mac_failures: r.take_u64()?,
        },
    ))
}

// --- session + image -----------------------------------------------------

pub(crate) fn encode_session(w: &mut SnapWriter, s: &SessionSnapshot) {
    let SessionSnapshot {
        module,
        config,
        bindings,
        globals,
        clock_ns,
        sched,
        injector,
        engine,
        kind,
    } = s;
    w.module(module);
    put_config(w, config);
    put_len(w, bindings.len());
    for &(event, handler, order) in bindings {
        put_event(w, event);
        put_func(w, handler);
        w.i64(i64::from(order));
    }
    put_len(w, globals.len());
    for g in globals {
        w.value(g);
    }
    w.u64(*clock_ns);
    put_sched(w, sched);
    match injector {
        Some(state) => {
            w.bool(true);
            put_injector(w, state);
        }
        None => w.bool(false),
    }
    put_engine(w, engine);
    match kind {
        KindSnapshot::Plain => w.u8(0),
        KindSnapshot::Ctp { params, link } => {
            w.u8(1);
            put_ctp(w, params, link);
        }
        KindSnapshot::SecComm { keys, wire } => {
            w.u8(2);
            put_seccomm(w, keys, wire);
        }
    }
}

pub(crate) fn decode_session(r: &mut SnapReader<'_>) -> Result<SessionSnapshot, SnapshotError> {
    let module = r.take_module()?;
    let config = take_config(r)?;
    let mut bindings = Vec::new();
    for _ in 0..take_len(r)? {
        let event = take_event(r)?;
        let handler = take_func(r)?;
        let order = i32::try_from(r.take_i64()?)
            .map_err(|_| SnapshotError::Malformed("binding order overflows i32".into()))?;
        bindings.push((event, handler, order));
    }
    let mut globals = Vec::new();
    for _ in 0..take_len(r)? {
        globals.push(r.take_value()?);
    }
    let clock_ns = r.take_u64()?;
    let sched = take_sched(r)?;
    let injector = if r.take_bool()? {
        Some(take_injector(r)?)
    } else {
        None
    };
    let engine = take_engine(r)?;
    let kind = match r.take_u8()? {
        0 => KindSnapshot::Plain,
        1 => {
            let (params, link) = take_ctp(r)?;
            KindSnapshot::Ctp {
                params,
                link: Box::new(link),
            }
        }
        2 => {
            let (keys, wire) = take_seccomm(r)?;
            KindSnapshot::SecComm {
                keys,
                wire: Box::new(wire),
            }
        }
        t => {
            return Err(SnapshotError::Malformed(format!(
                "unknown session kind tag {t}"
            )))
        }
    };
    Ok(SessionSnapshot {
        module,
        config,
        bindings,
        globals,
        clock_ns,
        sched,
        injector,
        engine,
        kind,
    })
}

/// Encodes a whole server image: the id allocator plus every session
/// with its shard placement, in session-id order.
pub(crate) fn encode_image(
    next_id: u64,
    sessions: &[(SessionId, usize, SessionSnapshot)],
) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.u64(next_id);
    put_len(&mut w, sessions.len());
    for (id, shard, snap) in sessions {
        w.u64(id.0);
        w.u64(*shard as u64);
        encode_session(&mut w, snap);
    }
    w.finish()
}

/// A decoded server image: the id allocator plus each session's id,
/// recorded shard, and full snapshot.
pub(crate) type DecodedImage = (u64, Vec<(SessionId, usize, SessionSnapshot)>);

/// Decodes a server image produced by [`encode_image`].
pub(crate) fn decode_image(bytes: &[u8]) -> Result<DecodedImage, SnapshotError> {
    let mut r = SnapReader::new(bytes)?;
    let next_id = r.take_u64()?;
    let count = take_len(&mut r)?;
    let mut sessions: Vec<(SessionId, usize, SessionSnapshot)> = Vec::new();
    for _ in 0..count {
        let id = SessionId(r.take_u64()?);
        let shard = take_len(&mut r)?;
        if sessions.iter().any(|(other, _, _)| *other == id) {
            return Err(SnapshotError::Malformed(format!(
                "duplicate session id {id} in image"
            )));
        }
        sessions.push((id, shard, decode_session(&mut r)?));
    }
    r.finish()?;
    Ok((next_id, sessions))
}
