//! Snapshot-format stability: a fixed fleet must encode to exactly the
//! committed golden image. Images are deterministic by construction
//! (virtual clocks, BTreeMap walks, IR-text modules — no wall time), so
//! any byte drift here is a format change. Deliberate format changes
//! bump `pdo_snap::VERSION`, regenerate the fixture with
//! `PDO_SNAP_BLESS=1 cargo test -p pdo-server --test format_stability`,
//! and commit the new bytes alongside the code.

use pdo::{AdaptConfig, OptimizeOptions};
use pdo_ctp::{ctp_program, CtpParams};
use pdo_events::RuntimeConfig;
use pdo_ir::{BinOp, EventId, FunctionBuilder, Module, Value};
use pdo_seccomm::{seccomm_protocol, Keys, CONFIG_FULL};
use pdo_server::{Server, ServerConfig};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden.pdosnap")
}

fn counter_module() -> (Module, EventId) {
    let mut m = Module::new();
    let tick = m.add_event("Tick");
    let g = m.add_global("count", Value::Int(0));
    let mut fb = FunctionBuilder::new("bump", 0);
    let v = fb.load_global(g);
    let one = fb.const_int(1);
    let o = fb.bin(BinOp::Add, v, one);
    fb.store_global(g, o);
    fb.ret(None);
    m.add_function(fb.finish());
    (m, tick)
}

/// The pinned fleet: one plain counter session with timers past the
/// snapshot point, one CTP session mid-conversation, one SecComm pair
/// with traffic exchanged — every `KindSnapshot` variant appears in the
/// image.
fn golden_server() -> Server {
    let mut server = Server::new(ServerConfig {
        shards: 2,
        adapt: AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: OptimizeOptions::new(10),
            ..AdaptConfig::default()
        },
        ..Default::default()
    });

    let (m, tick) = counter_module();
    let bump = m.function_by_name("bump").unwrap();
    let plain = server
        .open_session(m.clone(), RuntimeConfig::default(), &[(tick, bump, 0)])
        .unwrap();
    for i in 0..40u64 {
        // The first 20 land before the 2s snapshot horizon; the rest
        // stay pending in the image's timer wheel.
        server
            .submit(plain, tick, 1 + i * 100_000_000, &[])
            .unwrap();
    }
    server.run_until(4_000).unwrap();

    let ctp = server
        .open_ctp_session(&ctp_program(), CtpParams::default())
        .unwrap();
    for i in 0..3u64 {
        let payload = vec![i as u8; 64 + 32 * i as usize];
        server
            .with_ctp(ctp, move |ep| ep.send(&payload))
            .unwrap()
            .unwrap();
        server.run_until((i + 1) * 60_000_000).unwrap();
    }

    let sec = seccomm_protocol().instantiate(CONFIG_FULL).unwrap();
    let keys = Keys::default();
    let tx = server.open_seccomm_session(&sec, &keys).unwrap();
    let rx = server.open_seccomm_session(&sec, &keys).unwrap();
    for i in 0..4u64 {
        let msg = vec![0x5A ^ i as u8; 16 + i as usize];
        let wire = server
            .with_seccomm(tx, move |ep| ep.push(&msg))
            .unwrap()
            .unwrap();
        server
            .with_seccomm(rx, move |ep| ep.pop(&wire))
            .unwrap()
            .unwrap();
    }
    server.run_until(2_000_000_000).unwrap();
    server
}

#[test]
fn golden_image_is_stable() {
    let bytes = golden_server().snapshot_to_bytes();
    let path = golden_path();
    if std::env::var_os("PDO_SNAP_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &bytes).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), bytes.len());
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with PDO_SNAP_BLESS=1",
            path.display()
        )
    });
    assert_eq!(
        bytes, golden,
        "snapshot bytes drifted from the committed fixture; if the format \
         change is deliberate, bump pdo_snap::VERSION and re-bless"
    );
}

/// The committed fixture is not just stable — it still restores into a
/// working server, and the revived fleet resumes: pending plain timers
/// fire, CTP keeps delivering, SecComm keeps decrypting.
#[test]
fn golden_image_restores_and_resumes() {
    if std::env::var_os("PDO_SNAP_BLESS").is_some() {
        return; // blessing run; the stability test writes the fixture
    }
    let golden = std::fs::read(golden_path()).expect("committed fixture");
    let mut server = Server::new(ServerConfig {
        shards: 2,
        adapt: AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: OptimizeOptions::new(10),
            ..AdaptConfig::default()
        },
        ..Default::default()
    });
    let ids = server.restore_from_bytes(&golden).unwrap();
    assert_eq!(ids.len(), 4, "plain + ctp + seccomm tx/rx");
    assert_eq!(server.snapshot_to_bytes(), golden, "re-encode is identical");

    // The plain session had 40 timers; only the 20 due by the 2s
    // snapshot horizon fired before capture.
    let (m, _) = counter_module();
    let g = m.global_by_name("count").unwrap();
    let before = server
        .with_runtime(ids[0], move |rt| rt.global(g).clone())
        .unwrap();
    assert_eq!(
        before,
        Value::Int(20),
        "snapshot caught the counter mid-flight"
    );
    server.run_until(5_000_000_000).unwrap();
    let after = server
        .with_runtime(ids[0], move |rt| rt.global(g).clone())
        .unwrap();
    assert_eq!(after, Value::Int(40), "pending timers fired after restore");

    // CTP and SecComm sessions keep working post-restore.
    let ctp = ids[1];
    server
        .with_ctp(ctp, |ep| ep.send(b"after-golden-restore"))
        .unwrap()
        .unwrap();
    server.run_until(4_000_000_000).unwrap();
    server
        .with_ctp(ctp, |ep| ep.drain(5_000_000_000))
        .unwrap()
        .unwrap();
    let delivered = server
        .with_ctp(ctp, |ep| ep.received_payload().len())
        .unwrap();
    assert!(delivered > 0, "restored CTP session delivers");

    let (tx, rx) = (ids[2], ids[3]);
    let wire = server
        .with_seccomm(tx, |ep| ep.push(b"golden"))
        .unwrap()
        .unwrap();
    let plain = server
        .with_seccomm(rx, move |ep| ep.pop(&wire))
        .unwrap()
        .unwrap();
    assert_eq!(plain, b"golden");
}
