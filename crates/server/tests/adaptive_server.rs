//! Server-level adaptation properties.
//!
//! The headline property (the issue's acceptance bar): a server session
//! whose workload shifts — chain A hot, then chain B hot — ends with B
//! specialized and A despecialized, while its observational behavior
//! (every global) matches a plain generic runtime fed the identical
//! workload. No caller ever touches the profile, the optimizer, or the
//! healer: the per-session daemon does it all inside `run_until`.

use pdo::{AdaptConfig, OptimizeOptions};
use pdo_ctp::{ctp_program, CtpParams};
use pdo_events::{Runtime, RuntimeConfig};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_seccomm::{seccomm_protocol, Keys, CONFIG_FULL};
use pdo_server::{Server, ServerConfig};
use proptest::prelude::*;

/// Two independent events; handler `k` of each adds `k` to its event's
/// accumulator, so one dispatch of [h1, h2] adds 3.
fn two_chain_module() -> (Module, [EventId; 2], [pdo_ir::GlobalId; 2]) {
    let mut m = Module::new();
    let a = m.add_event("A");
    let b = m.add_event("B");
    let ga = m.add_global("acc_a", Value::Int(0));
    let gb = m.add_global("acc_b", Value::Int(0));
    let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId, d: i64| {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        m.add_function(fb.finish())
    };
    adder(&mut m, "a1", ga, 1);
    adder(&mut m, "a2", ga, 2);
    adder(&mut m, "b1", gb, 1);
    adder(&mut m, "b2", gb, 2);
    (m, [a, b], [ga, gb])
}

fn bindings(m: &Module, a: EventId, b: EventId) -> Vec<(EventId, FuncId, i32)> {
    vec![
        (a, m.function_by_name("a1").unwrap(), 0),
        (a, m.function_by_name("a2").unwrap(), 1),
        (b, m.function_by_name("b1").unwrap(), 0),
        (b, m.function_by_name("b2").unwrap(), 1),
    ]
}

fn fast_adapt() -> AdaptConfig {
    AdaptConfig {
        epoch_ns: 1_000,
        min_fresh_events: 20,
        opts: OptimizeOptions::new(10),
        ..Default::default()
    }
}

/// One step of a replayable workload: a timed raise (relative delay) or a
/// drain to an absolute deadline.
enum Step {
    Raise(EventId, u64),
    Run(u64),
}

/// The shifting workload as data, so the server session and the generic
/// reference runtime replay it bit-for-bit: `a_burst` timed A-raises
/// 100 ns apart, drain; then `b_burst` timed B-raises, drain.
fn shifting_workload(a: EventId, b: EventId, a_burst: u64, b_burst: u64) -> Vec<Step> {
    let mut plan = Vec::new();
    for i in 0..a_burst {
        plan.push(Step::Raise(a, i * 100 + 100));
    }
    let phase1 = a_burst * 100 + 1;
    plan.push(Step::Run(phase1));
    for i in 0..b_burst {
        plan.push(Step::Raise(b, i * 100 + 100));
    }
    plan.push(Step::Run(phase1 + b_burst * 100 + 1));
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any burst sizes large enough to cross the adaptation
    /// thresholds, the shifted session specializes B, drops A, and stays
    /// observationally identical to the generic runtime.
    #[test]
    fn workload_shift_ends_with_b_specialized_and_behavior_preserved(
        a_burst in 40u64..90,
        b_burst in 180u64..260,
    ) {
        let (m, [a, b], _) = two_chain_module();
        let binds = bindings(&m, a, b);

        // The adaptive server session.
        let mut server = Server::new(ServerConfig {
            shards: 2,
            adapt: fast_adapt(),
            ..Default::default()
        });
        let sid = server
            .open_session(m.clone(), RuntimeConfig::default(), &binds)
            .unwrap();
        for step in shifting_workload(a, b, a_burst, b_burst) {
            match step {
                Step::Raise(e, delay) => server.submit(sid, e, delay, &[]).unwrap(),
                Step::Run(deadline) => server.run_until(deadline).unwrap(),
            }
        }

        // The generic reference: same module, same bindings, identical
        // raise timing, no adaptation (clock padded the same way the
        // server pads it, so timed raises land at identical instants).
        let mut reference = Runtime::new(m.clone());
        for &(e, h, order) in &binds {
            reference.bind(e, h, order).unwrap();
        }
        for step in shifting_workload(a, b, a_burst, b_burst) {
            match step {
                Step::Raise(e, delay) => {
                    reference
                        .raise(e, RaiseMode::Timed, &[Value::Int(delay as i64)])
                        .unwrap();
                }
                Step::Run(deadline) => {
                    reference.run_until(deadline).unwrap();
                    let now = reference.clock_ns();
                    if deadline > now {
                        reference.advance_clock(deadline - now);
                    }
                }
            }
        }

        let n_globals = m.globals.len();
        let (spec_b, spec_a, fastpath_hits, globals) = server
            .with_runtime(sid, move |rt| {
                let globals: Vec<Value> = (0..n_globals)
                    .map(|i| rt.global(pdo_ir::GlobalId::from_index(i)).clone())
                    .collect();
                (
                    rt.spec().get(b).is_some(),
                    rt.spec().get(a).is_some(),
                    rt.cost.fastpath_hits,
                    globals,
                )
            })
            .unwrap();
        prop_assert!(spec_b, "B specialized after shift");
        prop_assert!(!spec_a, "A despecialized after shift");
        prop_assert!(fastpath_hits > 0, "chains actually used");
        for (i, g) in globals.iter().enumerate() {
            prop_assert_eq!(
                g,
                reference.global(pdo_ir::GlobalId::from_index(i)),
                "global {}",
                i
            );
        }
        let stats = server.engine_stats(sid).unwrap();
        prop_assert!(stats.chains_dropped >= 1, "A's chain was dropped");
    }
}

#[test]
fn ctp_sessions_are_shard_resident_and_adapt() {
    let program = ctp_program();
    // Threaded on purpose: the protocol endpoint lives on a worker
    // thread and every interaction below crosses the command channel.
    let mut server = Server::new(ServerConfig {
        shards: 2,
        threads: 2,
        adapt: AdaptConfig {
            epoch_ns: 50_000_000,
            min_fresh_events: 40,
            opts: OptimizeOptions::new(10),
            ..Default::default()
        },
        ..Default::default()
    });
    let sid = server
        .open_ctp_session(&program, CtpParams::default())
        .unwrap();

    for i in 0..30u64 {
        let payload = vec![i as u8; 300];
        server
            .with_ctp(sid, move |ep| ep.send(&payload))
            .unwrap()
            .unwrap();
        server.run_until((i + 1) * 40_000_000).unwrap();
    }
    server
        .with_ctp(sid, |ep| ep.drain(2_000_000_000))
        .unwrap()
        .unwrap();

    let stats = server.with_ctp(sid, |ep| ep.stats()).unwrap();
    assert_eq!(stats.segments_acked, stats.segments_sent);
    assert!(stats.segments_sent >= 30);

    let adapt = server.engine_stats(sid).unwrap();
    assert!(
        adapt.epochs > 0,
        "epochs fired inside the protocol's run_until"
    );
    assert!(
        adapt.reprofiles >= 1,
        "the hot sender chain was re-profiled"
    );
    let report = server.report();
    let row = report.sessions.iter().find(|s| s.session == sid).unwrap();
    assert!(row.dispatched > 0);
    assert_eq!(row.shard, server.shard_of(sid));
}

#[test]
fn seccomm_sessions_roundtrip_across_adaptation() {
    let proto = seccomm_protocol();
    let program = proto.instantiate(CONFIG_FULL).unwrap();
    let keys = Keys::default();
    let mut server = Server::new(ServerConfig {
        shards: 2,
        threads: 2,
        adapt: AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 30,
            // Epoch decay halves weights each round, so a per-burst edge
            // weight of ~8 equilibrates around 14; threshold must sit
            // below that for the push/pop chains to stay hot.
            opts: OptimizeOptions::new(4),
            ..Default::default()
        },
        ..Default::default()
    });
    let tx = server.open_seccomm_session(&program, &keys).unwrap();
    let rx = server.open_seccomm_session(&program, &keys).unwrap();

    // Interleave traffic bursts with idle time so adaptation epochs fire;
    // the roundtrip must keep working across the hot swap of the push/pop
    // chains.
    for round in 0..20u64 {
        for k in 0..8u64 {
            let msg = vec![(round * 8 + k) as u8; 48];
            let pushed = msg.clone();
            let wire = server
                .with_seccomm(tx, move |ep| ep.push(&pushed))
                .unwrap()
                .unwrap();
            let plain = server
                .with_seccomm(rx, move |ep| ep.pop(&wire))
                .unwrap()
                .unwrap();
            assert_eq!(plain, msg, "round {round} msg {k}");
        }
        server.run_until((round + 1) * 2_000).unwrap();
    }

    let tx_adapt = server.engine_stats(tx).unwrap();
    assert!(tx_adapt.epochs > 0);
    assert!(
        tx_adapt.reprofiles >= 1,
        "the encode chain is hot enough to re-profile: {tx_adapt:?}"
    );
    assert!(
        server.with_runtime(tx, |rt| rt.cost.fastpath_hits).unwrap() > 0,
        "post-swap pushes take the compiled chain"
    );
    // Tampering is still caught after the swap.
    let mut evil = server
        .with_seccomm(tx, |ep| ep.push(b"payload"))
        .unwrap()
        .unwrap();
    evil[0] ^= 0x80;
    assert!(server
        .with_seccomm(rx, move |ep| ep.pop(&evil))
        .unwrap()
        .is_err());
    assert_eq!(server.with_seccomm(rx, |ep| ep.mac_failures()).unwrap(), 1);
}

#[test]
fn mixed_fleet_report_is_consistent() {
    let (m, [a, b], _) = two_chain_module();
    let program = ctp_program();
    let mut server = Server::new(ServerConfig {
        shards: 3,
        threads: 3,
        adapt: fast_adapt(),
        ..Default::default()
    });
    let binds = bindings(&m, a, b);
    let plain: Vec<_> = (0..4)
        .map(|_| {
            server
                .open_session(m.clone(), RuntimeConfig::default(), &binds)
                .unwrap()
        })
        .collect();
    let _ctp = server
        .open_ctp_session(&program, CtpParams::default())
        .unwrap();

    for i in 0..60u64 {
        for &sid in &plain {
            server.submit(sid, a, i * 100 + 100, &[]).unwrap();
        }
    }
    server.run_until(60 * 100 + 1).unwrap();

    let report = server.report();
    assert_eq!(report.sessions.len(), 5);
    assert_eq!(report.shards.len(), 3);
    let shard_total: u64 = report.shards.iter().map(|s| s.dispatched).sum();
    let session_total: u64 = report.sessions.iter().map(|s| s.dispatched).sum();
    assert_eq!(shard_total, session_total);
    assert_eq!(report.dispatched(), shard_total);
    assert_eq!(
        report.shards.iter().map(|s| s.sessions).sum::<usize>(),
        5,
        "every session accounted to exactly one shard"
    );
    for &sid in &plain {
        assert!(server
            .with_runtime(sid, move |rt| rt.spec().get(a).is_some())
            .unwrap());
    }
}
