//! Shard confinement makes parallelism observationally invisible: a
//! seeded workload driven through the threaded server must yield an
//! aggregate `ServerReport`, a merged `MetricsSnapshot`, and a
//! flight-recorder dump identical to the single-thread (`threads = 1`)
//! path. The only series allowed to differ are the two wall-clock
//! families (`pdo_adapt_reprofile_wall_ns`, the daemon's host-time
//! profiling histogram, and `pdo_server_shard_busy_ns_total`, the shard
//! busy gauge), which `MetricsSnapshot::retain_families` strips before
//! comparison — everything the virtual clock governs must agree.

use pdo::{AdaptConfig, OptimizeOptions};
use pdo_events::RuntimeConfig;
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, Value};
use pdo_server::{Server, ServerConfig, ServerReport, SessionId};
use proptest::prelude::*;

/// Two independent events; handler `k` of each adds `k` to its event's
/// accumulator, so one dispatch of [h1, h2] adds 3.
fn two_chain_module() -> (Module, [EventId; 2]) {
    let mut m = Module::new();
    let a = m.add_event("A");
    let b = m.add_event("B");
    let ga = m.add_global("acc_a", Value::Int(0));
    let gb = m.add_global("acc_b", Value::Int(0));
    let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId, d: i64| {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        m.add_function(fb.finish())
    };
    adder(&mut m, "a1", ga, 1);
    adder(&mut m, "a2", ga, 2);
    adder(&mut m, "b1", gb, 1);
    adder(&mut m, "b2", gb, 2);
    (m, [a, b])
}

fn bindings(m: &Module, a: EventId, b: EventId) -> Vec<(EventId, FuncId, i32)> {
    vec![
        (a, m.function_by_name("a1").unwrap(), 0),
        (a, m.function_by_name("a2").unwrap(), 1),
        (b, m.function_by_name("b1").unwrap(), 0),
        (b, m.function_by_name("b2").unwrap(), 1),
    ]
}

fn fast_adapt() -> AdaptConfig {
    AdaptConfig {
        epoch_ns: 1_000,
        min_fresh_events: 20,
        opts: OptimizeOptions::new(10),
        ..Default::default()
    }
}

/// One seeded workload: per-session event choice and burst size, shared
/// spacing, a number of phases (the event flips each phase so the
/// adaptation loop re-specializes), and whether to close a session at
/// the end. Everything the drive does is derived from this data, so
/// both servers replay it bit-for-bit.
#[derive(Debug, Clone)]
struct Case {
    sessions: Vec<(bool, u64)>,
    spacing: u64,
    phases: usize,
    close_one: bool,
}

/// Flight-recorder timestamps are virtual, but reprofile records carry
/// their wall-clock duration (`took=…ns`) inline; blank it so dumps
/// compare byte-for-byte across thread counts.
fn scrub_wall_ns(dump: &str) -> String {
    let mut out = String::with_capacity(dump.len());
    for line in dump.lines() {
        match line.find("took=") {
            Some(i) => {
                out.push_str(&line[..i]);
                out.push_str("took=_");
                let rest = &line[i + "took=".len()..];
                out.push_str(rest.trim_start_matches(|c: char| c.is_ascii_digit()));
            }
            None => out.push_str(line),
        }
        out.push('\n');
    }
    out
}

/// The full observable surface after driving `case` on `threads`
/// workers: the aggregate report, the (wall-clock-stripped) metrics
/// exposition, and the flight-recorder dump.
fn drive(threads: usize, case: &Case) -> (ServerReport, String, String) {
    let (m, [a, b]) = two_chain_module();
    let mut server = Server::new(ServerConfig {
        shards: 4,
        threads,
        adapt: fast_adapt(),
        ..Default::default()
    });
    let sids: Vec<SessionId> = case
        .sessions
        .iter()
        .map(|_| {
            server
                .open_session(m.clone(), RuntimeConfig::default(), &bindings(&m, a, b))
                .unwrap()
        })
        .collect();
    let mut deadline = 0u64;
    for phase in 0..case.phases {
        let mut phase_end = deadline + 1;
        for (k, &(use_b, burst)) in case.sessions.iter().enumerate() {
            let flipped = use_b ^ (phase % 2 == 1);
            let event = if flipped { b } else { a };
            let delays: Vec<u64> = (0..burst).map(|i| i * case.spacing + 1).collect();
            server.submit_batch(sids[k], event, &delays).unwrap();
            phase_end = phase_end.max(deadline + burst * case.spacing + 1);
        }
        deadline = phase_end;
        server.run_until(deadline).unwrap();
        // Epoch-boundary rebalancing is part of the observable surface:
        // it must pick the same shard pair and migrate the same session
        // regardless of thread count.
        server.rebalance().unwrap();
    }
    if case.close_one && sids.len() > 1 {
        assert!(server.close_session(sids[0]));
    }
    let report = server.report();
    let mut snap = server.metrics();
    snap.retain_families(|name| {
        name != "pdo_adapt_reprofile_wall_ns" && name != "pdo_server_shard_busy_ns_total"
    });
    (
        report,
        snap.render(),
        scrub_wall_ns(&server.dump_flight_recorders(8)),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn threaded_server_is_observationally_identical_to_inline(
        sessions in prop::collection::vec((any::<bool>(), 30u64..70), 2..6),
        spacing in prop_oneof![Just(50u64), Just(100), Just(150)],
        phases in 1usize..3,
        close_one in any::<bool>(),
    ) {
        let case = Case { sessions, spacing, phases, close_one };
        let (inline_report, inline_metrics, inline_dump) = drive(1, &case);
        let (threaded_report, threaded_metrics, threaded_dump) = drive(4, &case);
        prop_assert_eq!(inline_report, threaded_report, "aggregate reports differ");
        prop_assert_eq!(inline_metrics, threaded_metrics, "merged metrics differ");
        prop_assert_eq!(inline_dump, threaded_dump, "flight-recorder dumps differ");
    }
}
