//! Durable snapshots, universal migration, and refusal semantics.
//!
//! Pins the robustness contract: any quiescent session kind migrates
//! under `rebalance` (refusals carry a typed reason in the report), a
//! whole server round-trips through `snapshot_to_bytes` /
//! `restore_from_bytes` with sessions resuming where they left off,
//! images are deterministic (restore-then-re-encode is byte-identical),
//! and corrupt images surface typed errors — never panics.

use pdo::{AdaptConfig, OptimizeOptions};
use pdo_ctp::{ctp_program, CtpParams};
use pdo_events::RuntimeConfig;
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_seccomm::{seccomm_protocol, Keys, CONFIG_FULL};
use pdo_server::{MigrateRefusal, Server, ServerConfig, ServerError};

/// Two independent events; handler `k` of each adds `k` to its event's
/// accumulator, so one dispatch of [h1, h2] adds 3.
fn two_chain_module() -> (Module, [EventId; 2], [pdo_ir::GlobalId; 2]) {
    let mut m = Module::new();
    let a = m.add_event("A");
    let b = m.add_event("B");
    let ga = m.add_global("acc_a", Value::Int(0));
    let gb = m.add_global("acc_b", Value::Int(0));
    let adder = |m: &mut Module, name: &str, g: pdo_ir::GlobalId, d: i64| {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        m.add_function(fb.finish())
    };
    adder(&mut m, "a1", ga, 1);
    adder(&mut m, "a2", ga, 2);
    adder(&mut m, "b1", gb, 1);
    adder(&mut m, "b2", gb, 2);
    (m, [a, b], [ga, gb])
}

fn bindings(m: &Module, a: EventId, b: EventId) -> Vec<(EventId, FuncId, i32)> {
    vec![
        (a, m.function_by_name("a1").unwrap(), 0),
        (a, m.function_by_name("a2").unwrap(), 1),
        (b, m.function_by_name("b1").unwrap(), 0),
        (b, m.function_by_name("b2").unwrap(), 1),
    ]
}

fn fast_adapt() -> AdaptConfig {
    AdaptConfig {
        epoch_ns: 1_000,
        min_fresh_events: 20,
        opts: OptimizeOptions::new(10),
        ..Default::default()
    }
}

/// Refusal reasons surface per session and gate `rebalance`: a session
/// with queued events or a live trace window stays put, and draining the
/// condition clears the refusal.
#[test]
fn rebalance_refuses_busy_sessions_and_reports_why() {
    let (m, [a, b], _) = two_chain_module();
    let mut server = Server::new(ServerConfig {
        shards: 2,
        adapt: fast_adapt(),
        ..Default::default()
    });
    let binds = bindings(&m, a, b);
    let mut ids = Vec::new();
    for _ in 0..3 {
        ids.push(
            server
                .open_session(m.clone(), RuntimeConfig::default(), &binds)
                .unwrap(),
        );
    }
    let crowded = (0..2)
        .find(|&s| ids.iter().filter(|&&id| server.shard_of(id) == s).count() == 2)
        .expect("one shard holds two of three sessions");
    let on_crowded: Vec<_> = ids
        .iter()
        .copied()
        .filter(|&id| server.shard_of(id) == crowded)
        .collect();

    // Make the crowded shard hottest (sync dispatches count), leaving
    // every one of its sessions mid-epoch with a live trace window...
    for &id in &on_crowded {
        for _ in 0..10 {
            server.raise_sync(id, a, &[]).unwrap();
        }
    }
    let report = server.report();
    for &id in &on_crowded {
        let row = report.sessions.iter().find(|r| r.session == id).unwrap();
        assert_eq!(
            row.refusal,
            Some(MigrateRefusal::MidEpoch),
            "undrained trace window refuses migration"
        );
    }
    assert_eq!(
        server.rebalance().unwrap(),
        None,
        "no quiescent session on the hot shard"
    );

    // ...then also queue an async event: the queue wins as the reason.
    server
        .with_runtime(on_crowded[0], move |rt| {
            rt.raise(a, RaiseMode::Async, &[]).unwrap();
        })
        .unwrap();
    let report = server.report();
    let row = report
        .sessions
        .iter()
        .find(|r| r.session == on_crowded[0])
        .unwrap();
    assert_eq!(row.refusal, Some(MigrateRefusal::QueuedEvents));
    assert_eq!(server.rebalance().unwrap(), None);

    // Draining the queue and crossing an epoch boundary clears both
    // refusals; the next rebalance migrates.
    server.run_until(4_000).unwrap();
    let report = server.report();
    for &id in &on_crowded {
        let row = report.sessions.iter().find(|r| r.session == id).unwrap();
        assert_eq!(row.refusal, None, "quiescent after the drain");
    }
    let migrated = server.rebalance().unwrap().expect("now it migrates");
    assert_eq!(server.shard_of(migrated), 1 - crowded);
}

/// The 'plain sessions only' restriction is gone: a quiescent CTP
/// session — perpetual controller timer and all — migrates off the hot
/// shard and keeps acking traffic from its new home.
#[test]
fn rebalance_migrates_protocol_sessions() {
    let program = ctp_program();
    let mut server = Server::new(ServerConfig {
        shards: 2,
        adapt: AdaptConfig {
            epoch_ns: 50_000_000,
            min_fresh_events: 40,
            opts: OptimizeOptions::new(10),
            ..Default::default()
        },
        ..Default::default()
    });
    let mut ids = Vec::new();
    for _ in 0..3 {
        ids.push(
            server
                .open_ctp_session(&program, CtpParams::default())
                .unwrap(),
        );
    }
    let crowded = (0..2)
        .find(|&s| ids.iter().filter(|&&id| server.shard_of(id) == s).count() == 2)
        .expect("one shard holds two of three sessions");
    let victim = *ids
        .iter()
        .find(|&&id| server.shard_of(id) == crowded)
        .unwrap();
    for i in 0..10u64 {
        let payload = vec![i as u8; 200];
        server
            .with_ctp(victim, move |ep| ep.send(&payload))
            .unwrap()
            .unwrap();
        server.run_until((i + 1) * 60_000_000).unwrap();
    }
    server
        .with_ctp(victim, |ep| ep.drain(2_000_000_000))
        .unwrap()
        .unwrap();
    // Pad across epoch boundaries so every trace window drains.
    server.run_until(2_500_000_000).unwrap();

    let migrated = server.rebalance().unwrap().expect("a CTP session moves");
    assert_eq!(server.shard_of(migrated), 1 - crowded);

    // The moved endpoint still speaks the protocol: more traffic acks.
    let before = server.with_ctp(migrated, |ep| ep.stats()).unwrap();
    for i in 0..5u64 {
        let payload = vec![0xA5; 100];
        server
            .with_ctp(migrated, move |ep| ep.send(&payload))
            .unwrap()
            .unwrap();
        server
            .run_until(2_500_000_000 + (i + 1) * 60_000_000)
            .unwrap();
    }
    server
        .with_ctp(migrated, |ep| ep.drain(5_000_000_000))
        .unwrap()
        .unwrap();
    let after = server.with_ctp(migrated, |ep| ep.stats()).unwrap();
    assert_eq!(after.segments_acked, after.segments_sent);
    assert!(
        after.segments_sent >= before.segments_sent + 5,
        "post-migration sends: {before:?} -> {after:?}"
    );
}

/// A mixed fleet survives the full durability cycle: snapshot every
/// session kind, restore into a fresh server, and both the plain
/// accumulators and the protocol endpoints resume exactly. The restored
/// image re-encodes byte-identically, and the persistence counters and
/// coordinator flight records show up in observability.
#[test]
fn snapshot_restore_resumes_every_session_kind() {
    let (m, [a, b], [ga, _]) = two_chain_module();
    let ctp = ctp_program();
    let sec = seccomm_protocol().instantiate(CONFIG_FULL).unwrap();
    let keys = Keys::default();
    let config = || ServerConfig {
        shards: 2,
        adapt: fast_adapt(),
        ..Default::default()
    };

    let mut server = Server::new(config());
    let binds = bindings(&m, a, b);
    let plain = server
        .open_session(m.clone(), RuntimeConfig::default(), &binds)
        .unwrap();
    let tx = server.open_seccomm_session(&sec, &keys).unwrap();
    let rx = server.open_seccomm_session(&sec, &keys).unwrap();
    let ctp_id = server.open_ctp_session(&ctp, CtpParams::default()).unwrap();

    // Phase 1: drive every kind, then land on an epoch boundary.
    for i in 0..40u64 {
        server.submit(plain, a, i * 100 + 100, &[]).unwrap();
    }
    for k in 0..6u64 {
        let msg = vec![k as u8; 32];
        let wire = server
            .with_seccomm(tx, move |ep| ep.push(&msg))
            .unwrap()
            .unwrap();
        let plain_msg = server
            .with_seccomm(rx, move |ep| ep.pop(&wire))
            .unwrap()
            .unwrap();
        assert_eq!(plain_msg, vec![k as u8; 32]);
    }
    let mut evil = server
        .with_seccomm(tx, |ep| ep.push(b"payload"))
        .unwrap()
        .unwrap();
    evil[0] ^= 0x80;
    assert!(server
        .with_seccomm(rx, move |ep| ep.pop(&evil))
        .unwrap()
        .is_err());
    for i in 0..4u64 {
        let payload = vec![i as u8; 150];
        server
            .with_ctp(ctp_id, move |ep| ep.send(&payload))
            .unwrap()
            .unwrap();
    }
    server
        .with_ctp(ctp_id, |ep| ep.drain(1_000_000_000))
        .unwrap()
        .unwrap();
    server.run_until(1_200_000_000).unwrap();

    let bytes = server.snapshot_to_bytes();
    let acc_before = server
        .with_runtime(plain, move |rt| rt.global(ga).clone())
        .unwrap();
    let ctp_before = server.with_ctp(ctp_id, |ep| ep.stats()).unwrap();

    // Crash: the server dies; a fresh one restores the image.
    drop(server);
    let mut revived = Server::new(config());
    let restored = revived.restore_from_bytes(&bytes).unwrap();
    assert_eq!(restored, vec![plain, tx, rx, ctp_id]);
    assert_eq!(revived.sessions().len(), 4);

    // Deterministic format: re-encoding the restored fleet reproduces
    // the image bit for bit.
    assert_eq!(revived.snapshot_to_bytes(), bytes, "round-trip bytes");

    // Plain state carried: accumulator, then it keeps accumulating.
    assert_eq!(
        revived
            .with_runtime(plain, move |rt| rt.global(ga).clone())
            .unwrap(),
        acc_before
    );
    revived.raise_sync(plain, a, &[]).unwrap();
    let Value::Int(n0) = acc_before else {
        panic!("int accumulator")
    };
    assert_eq!(
        revived
            .with_runtime(plain, move |rt| rt.global(ga).clone())
            .unwrap(),
        Value::Int(n0 + 3)
    );

    // SecComm state carried: the MAC-failure counter survived and the
    // restored pair still round-trips traffic under the same keys.
    assert_eq!(revived.with_seccomm(rx, |ep| ep.mac_failures()).unwrap(), 1);
    let wire = revived
        .with_seccomm(tx, |ep| ep.push(b"after-restore"))
        .unwrap()
        .unwrap();
    assert_eq!(
        revived
            .with_seccomm(rx, move |ep| ep.pop(&wire))
            .unwrap()
            .unwrap(),
        b"after-restore".to_vec()
    );

    // CTP state carried: counters resume (not reset) and new traffic
    // still acks completely.
    let ctp_mid = revived.with_ctp(ctp_id, |ep| ep.stats()).unwrap();
    assert_eq!(ctp_mid.segments_sent, ctp_before.segments_sent);
    for i in 0..3u64 {
        let payload = vec![0x5A; 120];
        revived
            .with_ctp(ctp_id, move |ep| ep.send(&payload))
            .unwrap()
            .unwrap();
        revived
            .run_until(1_200_000_000 + (i + 1) * 60_000_000)
            .unwrap();
    }
    revived
        .with_ctp(ctp_id, |ep| ep.drain(3_000_000_000))
        .unwrap()
        .unwrap();
    let ctp_after = revived.with_ctp(ctp_id, |ep| ep.stats()).unwrap();
    assert_eq!(ctp_after.segments_acked, ctp_after.segments_sent);
    assert!(ctp_after.segments_sent >= ctp_before.segments_sent + 3);

    // Adaptation continuity: the restored plain session had profile and
    // counters carried, so epochs keep counting from where they stopped.
    let stats = revived.engine_stats(plain).unwrap();
    assert!(stats.epochs > 0, "carried epoch counter: {stats:?}");

    // Fresh ids never collide with restored ones.
    let extra = revived
        .open_session(m.clone(), RuntimeConfig::default(), &binds)
        .unwrap();
    assert!(restored.iter().all(|&id| id != extra));

    // Observability satellite: counters, size/latency histograms, and
    // coordinator flight records all mention the cycle.
    let text = revived.metrics().render();
    assert!(text.contains("pdo_server_snapshots_total 1"));
    assert!(text.contains("pdo_server_restores_total 1"));
    assert!(text.contains("# TYPE pdo_server_snapshot_bytes summary"));
    assert!(text.contains("# TYPE pdo_server_snapshot_encode_wall_ns summary"));
    assert!(text.contains("# TYPE pdo_server_snapshot_decode_wall_ns summary"));
    let dump = revived.dump_flight_recorders(16);
    assert!(dump.contains("server coordinator"), "coordinator section");
    assert!(
        dump.contains("snapshot-restored"),
        "restore recorded:\n{dump}"
    );
    assert!(dump.contains("session-restored"), "per-session records");
}

/// Graceful shutdown: `quiesce()` before `save()` drains every queued
/// event and timer to a common clock, refuses new work with a typed
/// error, and the image then restores with the drained state — nothing
/// mid-flight to lose. `resume_admission()` reopens the door.
#[test]
fn quiesce_drains_before_save_and_restore_resumes() {
    let (m, [a, b], [ga, _]) = two_chain_module();
    let binds = bindings(&m, a, b);
    let config = || ServerConfig {
        shards: 2,
        adapt: fast_adapt(),
        ..Default::default()
    };
    let mut server = Server::new(config());
    let id = server
        .open_session(m.clone(), RuntimeConfig::default(), &binds)
        .unwrap();
    let ctp_id = server
        .open_ctp_session(&ctp_program(), CtpParams::default())
        .unwrap();

    // Leave real work in flight: 25 timed events (a dispatch of [a1, a2]
    // adds 3), 13 of them dispatched by advancing to t=1300, plus 4
    // async events sitting undispatched in the FIFO.
    for i in 0..25u64 {
        server.submit(id, a, i * 100 + 100, &[]).unwrap();
    }
    server.run_until(1_300).unwrap();
    for _ in 0..4 {
        server
            .with_runtime(id, move |rt| rt.raise(a, RaiseMode::Async, &[]).unwrap())
            .unwrap();
    }

    let drained_to = server.quiesce().unwrap();
    assert!(!server.is_admitting());
    assert_eq!(
        server.with_runtime(id, |rt| rt.queued_len()).unwrap(),
        0,
        "quiesce drains the FIFO (future timers stay armed — the \
         snapshot carries the timer wheel)"
    );
    assert_eq!(
        server
            .with_runtime(id, move |rt| rt.global(ga).clone())
            .unwrap(),
        Value::Int(13 * 3 + 4 * 3),
        "every due timer and every queued async event dispatched"
    );
    let clock = server.with_runtime(id, |rt| rt.clock_ns()).unwrap();
    assert!(clock >= drained_to, "clocks padded to the drain deadline");

    // The quiesced server refuses new work with a typed error — on every
    // entry point.
    assert!(matches!(
        server.raise_sync(id, a, &[]),
        Err(ServerError::Quiesced)
    ));
    assert!(matches!(
        server.submit(id, b, 100, &[]),
        Err(ServerError::Quiesced)
    ));
    assert!(matches!(
        server.open_session(m.clone(), RuntimeConfig::default(), &binds),
        Err(ServerError::Quiesced)
    ));

    // Save the drained image, revive it elsewhere, and the restored
    // fleet resumes from exactly the drained state.
    let dir = std::env::temp_dir().join(format!("pdo-quiesce-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drained.pdosnap");
    server.save(&path).unwrap();
    let mut revived = Server::new(config());
    assert_eq!(revived.restore_from_file(&path).unwrap(), vec![id, ctp_id]);
    assert_eq!(
        revived
            .with_runtime(id, move |rt| rt.global(ga).clone())
            .unwrap(),
        Value::Int(13 * 3 + 4 * 3),
        "drained state restored exactly"
    );
    // The 12 not-yet-due timers crossed the save/restore: advancing past
    // their deadlines dispatches them in the revived server.
    revived.run_until(2_600).unwrap();
    assert_eq!(
        revived
            .with_runtime(id, move |rt| rt.global(ga).clone())
            .unwrap(),
        Value::Int(25 * 3 + 4 * 3),
        "armed timers carried by the image fire after restore"
    );
    revived.raise_sync(id, a, &[]).unwrap();
    assert_eq!(
        revived
            .with_runtime(id, move |rt| rt.global(ga).clone())
            .unwrap(),
        Value::Int(25 * 3 + 4 * 3 + 3),
        "a fresh server admits by default"
    );

    // And the original recovers too once admission resumes.
    server.resume_admission();
    assert!(server.is_admitting());
    server.raise_sync(id, a, &[]).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Images restore onto threaded servers too, and placement follows the
/// recorded shard (mod the shard count of the receiving server).
#[test]
fn restore_works_across_thread_counts() {
    let (m, [a, b], [ga, _]) = two_chain_module();
    let binds = bindings(&m, a, b);
    let mut server = Server::new(ServerConfig {
        shards: 4,
        adapt: fast_adapt(),
        ..Default::default()
    });
    let mut ids = Vec::new();
    for _ in 0..6 {
        ids.push(
            server
                .open_session(m.clone(), RuntimeConfig::default(), &binds)
                .unwrap(),
        );
    }
    for i in 0..30u64 {
        for &id in &ids {
            server.submit(id, a, i * 100 + 100, &[]).unwrap();
        }
    }
    server.run_until(30 * 100 + 1_000).unwrap();
    let bytes = server.snapshot_to_bytes();
    let expect: Vec<_> = ids.iter().map(|&id| server.shard_of(id)).collect();
    drop(server);

    let mut threaded = Server::new(ServerConfig {
        shards: 4,
        threads: 4,
        adapt: fast_adapt(),
        ..Default::default()
    });
    let restored = threaded.restore_from_bytes(&bytes).unwrap();
    assert_eq!(restored, ids);
    for (&id, &shard) in ids.iter().zip(&expect) {
        assert_eq!(threaded.shard_of(id), shard, "placement carried");
    }
    for &id in &ids {
        assert_eq!(
            threaded
                .with_runtime(id, move |rt| rt.global(ga).clone())
                .unwrap(),
            Value::Int(30 * 3)
        );
    }
}

/// Corruption never panics: truncations, bit flips, id collisions, and
/// garbage files all come back as `ServerError::Snapshot`.
#[test]
fn corrupt_images_yield_typed_errors() {
    let (m, [a, b], _) = two_chain_module();
    let binds = bindings(&m, a, b);
    let config = || ServerConfig {
        shards: 2,
        adapt: fast_adapt(),
        ..Default::default()
    };
    let mut server = Server::new(config());
    let id = server
        .open_session(m.clone(), RuntimeConfig::default(), &binds)
        .unwrap();
    server.raise_sync(id, a, &[]).unwrap();
    let bytes = server.snapshot_to_bytes();

    // Every truncation is detected.
    for cut in 0..bytes.len() {
        let mut fresh = Server::new(config());
        match fresh.restore_from_bytes(&bytes[..cut]) {
            Err(ServerError::Snapshot(_)) => {}
            other => panic!("truncation at {cut} must fail typed, got {other:?}"),
        }
        assert!(fresh.sessions().is_empty(), "failed restore opens nothing");
    }
    // A seeded sweep of single-bit flips is detected.
    for k in 0..64usize {
        let pos = (k * 2654435761) % (bytes.len() * 8);
        let mut bad = bytes.clone();
        bad[pos / 8] ^= 1 << (pos % 8);
        let mut fresh = Server::new(config());
        match fresh.restore_from_bytes(&bad) {
            Err(ServerError::Snapshot(_)) => {}
            other => panic!("bit flip at {pos} must fail typed, got {other:?}"),
        }
    }
    // Restoring over an already-open id is rejected before any state
    // changes.
    match server.restore_from_bytes(&bytes) {
        Err(ServerError::Snapshot(_)) => {}
        other => panic!("id collision must fail typed, got {other:?}"),
    }
    assert_eq!(server.sessions().len(), 1);

    // File-level persistence: save atomically, restore from disk, and a
    // missing file is a typed error.
    let dir = std::env::temp_dir().join(format!("pdo-persist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("image.pdosnap");
    server.save(&path).unwrap();
    let mut fresh = Server::new(config());
    assert_eq!(fresh.restore_from_file(&path).unwrap(), vec![id]);
    match Server::new(config()).restore_from_file(&dir.join("absent.pdosnap")) {
        Err(ServerError::Snapshot(_)) => {}
        other => panic!("missing file must fail typed, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
