//! Specialization table: guarded super-handler fast paths.
//!
//! The optimizer registers one [`CompiledChain`] per optimized event. A
//! synchronous raise of that event first compares the recorded binding
//! versions ([`Guard`]s) against the live registry; on a match the runtime
//! invokes the super-handler directly — no registry walk, no marshaling, one
//! call instead of N. On a mismatch it falls back to generic dispatch
//! ("checking whether any changes have been made to the list of handlers
//! bound to an event when it is raised, and then dropping back into the
//! original unoptimized code if a change is detected", §3.2.1).

use crate::registry::Registry;
use pdo_ir::{EventId, FuncId};
use std::collections::HashMap;

/// One binding-version expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guard {
    /// Event whose bindings the chain depends on.
    pub event: EventId,
    /// Registry version recorded at optimization time.
    pub version: u64,
}

/// A compiled, guarded super-handler for one head event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledChain {
    /// The event this chain specializes.
    pub head: EventId,
    /// Every event whose bindings were folded into the super-handler (the
    /// head plus any subsumed/chained events).
    pub guards: Vec<Guard>,
    /// The merged super-handler.
    pub func: FuncId,
    /// Arity the super-handler expects (must match the head event's raise).
    pub params: u16,
    /// True when the super-handler carries internal per-event guards
    /// (partitioned form, paper Fig 14) and therefore only the *head*
    /// guard must hold for entry.
    pub partitioned: bool,
}

impl CompiledChain {
    /// Checks the guards against the live registry.
    ///
    /// A partitioned chain only requires its head guard (segment guards are
    /// compiled into the body); a monolithic chain requires every guard.
    pub fn guards_hold(&self, registry: &Registry) -> bool {
        if self.partitioned {
            self.guards
                .iter()
                .find(|g| g.event == self.head)
                .map(|g| registry.version(g.event) == g.version)
                .unwrap_or(false)
        } else {
            self.guards
                .iter()
                .all(|g| registry.version(g.event) == g.version)
        }
    }
}

/// All installed chains, keyed by head event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpecTable {
    chains: HashMap<EventId, CompiledChain>,
}

impl SpecTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) the chain for its head event.
    pub fn install(&mut self, chain: CompiledChain) {
        self.chains.insert(chain.head, chain);
    }

    /// Removes the chain for `event`, returning it if present.
    pub fn remove(&mut self, event: EventId) -> Option<CompiledChain> {
        self.chains.remove(&event)
    }

    /// The chain for `event`, if installed.
    pub fn get(&self, event: EventId) -> Option<&CompiledChain> {
        self.chains.get(&event)
    }

    /// Number of installed chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when no chains are installed.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Iterates over installed chains.
    pub fn iter(&self) -> impl Iterator<Item = &CompiledChain> {
        self.chains.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(head: u32, guards: &[(u32, u64)], partitioned: bool) -> CompiledChain {
        CompiledChain {
            head: EventId(head),
            guards: guards
                .iter()
                .map(|&(e, v)| Guard {
                    event: EventId(e),
                    version: v,
                })
                .collect(),
            func: FuncId(0),
            params: 1,
            partitioned,
        }
    }

    #[test]
    fn monolithic_guard_requires_all() {
        let mut reg = Registry::new();
        reg.bind(EventId(0), FuncId(1), 0); // version 1
        reg.bind(EventId(1), FuncId(2), 0); // version 1
        let c = chain(0, &[(0, 1), (1, 1)], false);
        assert!(c.guards_hold(&reg));
        reg.bind(EventId(1), FuncId(3), 0); // bump event 1
        assert!(!c.guards_hold(&reg));
    }

    #[test]
    fn partitioned_guard_requires_head_only() {
        let mut reg = Registry::new();
        reg.bind(EventId(0), FuncId(1), 0);
        reg.bind(EventId(1), FuncId(2), 0);
        let c = chain(0, &[(0, 1), (1, 1)], true);
        reg.bind(EventId(1), FuncId(3), 0); // non-head change
        assert!(c.guards_hold(&reg));
        reg.bind(EventId(0), FuncId(4), 0); // head change
        assert!(!c.guards_hold(&reg));
    }

    #[test]
    fn partitioned_without_head_guard_never_holds() {
        let reg = Registry::new();
        let c = chain(0, &[(1, 0)], true);
        assert!(!c.guards_hold(&reg));
    }

    #[test]
    fn table_install_and_lookup() {
        let mut t = SpecTable::new();
        assert!(t.is_empty());
        t.install(chain(0, &[(0, 1)], false));
        t.install(chain(1, &[(1, 1)], false));
        assert_eq!(t.len(), 2);
        assert!(t.get(EventId(0)).is_some());
        assert!(t.get(EventId(9)).is_none());
        assert!(t.remove(EventId(0)).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn reinstall_replaces() {
        let mut t = SpecTable::new();
        t.install(chain(0, &[(0, 1)], false));
        t.install(CompiledChain {
            func: FuncId(9),
            ..chain(0, &[(0, 2)], false)
        });
        assert_eq!(t.get(EventId(0)).unwrap().func, FuncId(9));
        assert_eq!(t.len(), 1);
    }
}
