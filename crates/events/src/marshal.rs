//! Argument marshaling, as performed by the generic dispatch path.
//!
//! In Cactus and Xt, a generic `raise` cannot know the arity or types of the
//! handlers it will invoke, so arguments travel through a packed, tagged,
//! heap-allocated representation that each handler unpacks (paper §1:
//! "the number and type of the arguments passed to the handler may also not
//! be known, requiring argument marshaling"). This module reproduces that
//! cost: [`marshal`] packs a value slice into a fresh [`Marshaled`] box with
//! a type-tag vector, and [`unmarshal`] unpacks it. The optimizer's direct
//! dispatch path skips both.

use pdo_ir::Value;

/// A type tag recorded for each marshaled argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// No payload.
    Unit,
    /// `i64` payload.
    Int,
    /// Boolean payload.
    Bool,
    /// Byte-buffer payload.
    Bytes,
    /// String payload.
    Str,
}

impl Tag {
    /// The tag describing `v`.
    pub fn of(v: &Value) -> Tag {
        match v {
            Value::Unit => Tag::Unit,
            Value::Int(_) => Tag::Int,
            Value::Bool(_) => Tag::Bool,
            Value::Bytes(_) => Tag::Bytes,
            Value::Str(_) => Tag::Str,
        }
    }

    /// The wire byte for this tag. This is the shared marshaling
    /// vocabulary: `pdo-snap` images and the `pdo-ingress` wire protocol
    /// both carry tagged values with these bytes, so a payload marshaled
    /// for generic dispatch encodes with the same tags it travels under.
    pub fn to_byte(self) -> u8 {
        match self {
            Tag::Unit => 0,
            Tag::Int => 1,
            Tag::Bool => 2,
            Tag::Bytes => 3,
            Tag::Str => 4,
        }
    }

    /// Decodes a wire byte back into a tag. `None` for unknown bytes —
    /// wire decoders surface that as their typed malformed-input error.
    pub fn from_byte(b: u8) -> Option<Tag> {
        match b {
            0 => Some(Tag::Unit),
            1 => Some(Tag::Int),
            2 => Some(Tag::Bool),
            3 => Some(Tag::Bytes),
            4 => Some(Tag::Str),
            _ => None,
        }
    }
}

/// Arguments packed for generic handler invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct Marshaled {
    /// Cloned argument values, boxed as a unit.
    pub values: Box<[Value]>,
    /// One tag per value (the varargs "format" walk).
    pub tags: Box<[Tag]>,
}

impl Marshaled {
    /// Number of arguments.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no arguments were packed.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Packs `args` for a generic dispatch: clones every value into a fresh
/// boxed slice and records a type tag for each.
pub fn marshal(args: &[Value]) -> Marshaled {
    let mut values = Vec::with_capacity(args.len());
    let mut tags = Vec::with_capacity(args.len());
    for a in args {
        tags.push(Tag::of(a));
        values.push(a.clone());
    }
    Marshaled {
        values: values.into_boxed_slice(),
        tags: tags.into_boxed_slice(),
    }
}

/// Unpacks marshaled arguments for a handler, validating each tag (the
/// unmarshal-side format walk).
///
/// # Errors
///
/// Returns a description of the first tag/value mismatch. With values
/// produced by [`marshal`] this cannot happen; the check exists because the
/// cost of performing it is part of what the paper measures.
pub fn unmarshal(m: &Marshaled) -> Result<Vec<Value>, String> {
    let mut out = Vec::with_capacity(m.values.len());
    for (v, t) in m.values.iter().zip(m.tags.iter()) {
        if Tag::of(v) != *t {
            return Err(format!(
                "marshal tag mismatch: value {} tagged {:?}",
                v.type_name(),
                t
            ));
        }
        out.push(v.clone());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_values() {
        let args = vec![
            Value::Int(1),
            Value::Bool(true),
            Value::bytes(vec![1, 2, 3]),
            Value::str("x"),
            Value::Unit,
        ];
        let m = marshal(&args);
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        let back = unmarshal(&m).unwrap();
        assert_eq!(back, args);
    }

    #[test]
    fn tags_match_types() {
        let m = marshal(&[Value::Int(5), Value::str("a")]);
        assert_eq!(m.tags.as_ref(), &[Tag::Int, Tag::Str]);
    }

    #[test]
    fn empty_marshal() {
        let m = marshal(&[]);
        assert!(m.is_empty());
        assert!(unmarshal(&m).unwrap().is_empty());
    }

    #[test]
    fn tag_bytes_round_trip() {
        for tag in [Tag::Unit, Tag::Int, Tag::Bool, Tag::Bytes, Tag::Str] {
            assert_eq!(Tag::from_byte(tag.to_byte()), Some(tag));
        }
        assert_eq!(Tag::from_byte(5), None);
        assert_eq!(Tag::from_byte(0xFF), None);
    }

    #[test]
    fn corrupted_tag_detected() {
        let mut m = marshal(&[Value::Int(5)]);
        m.tags = vec![Tag::Bytes].into_boxed_slice();
        assert!(unmarshal(&m).is_err());
    }
}
