//! A reusable seeded faulty-wire layer.
//!
//! Every substrate in this repository that simulates a transport — the CTP
//! link, the SecComm loopback "UDP" wire, the X event stream — needs the
//! same four link pathologies: loss, duplication, reordering, and
//! corruption, rolled deterministically from a seed so a failing chaos case
//! can be replayed. [`FaultyWire`] factors that machinery out of
//! `pdo-ctp`'s endpoint so all substrates share one fault model (and one
//! RNG discipline), and [`SequencedReceiver`] provides the matching
//! receiver-side dedup + in-order release for protocols that number their
//! frames.
//!
//! The roll order per transmission is fixed — drop, corrupt, duplicate,
//! reorder — and reproduces the stream CTP's original in-crate model drew,
//! so historical seeds keep their meaning.

use std::collections::BTreeMap;

/// Seeded fault model for a simulated wire. Each field is a probability in
/// permille (0 = never, 1000 = always), rolled independently per
/// transmission from a deterministic splitmix64 stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireFaults {
    /// Frame lost in transit (never reaches the receiver).
    pub drop_per_mille: u16,
    /// Frame delivered twice (the receiver must deduplicate).
    pub dup_per_mille: u16,
    /// Frame held back and overtaken by the next transmission (the
    /// receiver must restore order).
    pub reorder_per_mille: u16,
    /// Frame mutated in transit (the receiver's integrity check — parity,
    /// MAC — is expected to reject it).
    pub corrupt_per_mille: u16,
    /// RNG seed; identical seeds reproduce identical fault sequences.
    pub seed: u64,
}

impl WireFaults {
    /// True when every fault probability is zero (a perfect wire).
    pub fn is_perfect(&self) -> bool {
        self.drop_per_mille == 0
            && self.dup_per_mille == 0
            && self.reorder_per_mille == 0
            && self.corrupt_per_mille == 0
    }
}

/// Counters of what the fault model did to the traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Transmissions lost.
    pub dropped: u64,
    /// Transmissions duplicated.
    pub duplicated: u64,
    /// Transmissions held back (reordered).
    pub reordered: u64,
    /// Transmissions corrupted.
    pub corrupted: u64,
}

impl WireStats {
    /// Exports the four fault counters into `snap` as
    /// `pdo_wire_faults_total{kind="dropped|duplicated|reordered|corrupted"}`
    /// with `extra` labels on every series — one exposition shape shared
    /// by every substrate that embeds a [`FaultyWire`].
    pub fn export_metrics(&self, snap: &mut pdo_obs::MetricsSnapshot, extra: &[(&str, &str)]) {
        for (kind, n) in [
            ("dropped", self.dropped),
            ("duplicated", self.duplicated),
            ("reordered", self.reordered),
            ("corrupted", self.corrupted),
        ] {
            let mut labels: Vec<(&str, &str)> = vec![("kind", kind)];
            labels.extend_from_slice(extra);
            snap.counter(
                "pdo_wire_faults_total",
                "Frames the wire fault model dropped, duplicated, reordered, or corrupted",
                &labels,
                n,
            );
        }
    }
}

/// One frame reaching the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival<T> {
    /// The frame (already mutated when `corrupted`).
    pub item: T,
    /// Whether the wire corrupted this frame in transit.
    pub corrupted: bool,
}

/// The receiver-visible outcome of one [`FaultyWire::transmit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transmit<T> {
    /// Frames reaching the receiver *now*, in arrival order (copies of the
    /// new frame first, then any previously held frame it overtook).
    pub arrivals: Vec<Arrival<T>>,
    /// The transmitted frame was lost.
    pub dropped: bool,
    /// The transmitted frame was corrupted.
    pub corrupted: bool,
    /// The transmitted frame was parked by the reordering stage (it will
    /// arrive behind the next transmission, or on [`FaultyWire::flush`]).
    pub held: bool,
}

impl<T> Transmit<T> {
    /// True when the frame made it onto the wire intact (it has arrived or
    /// will arrive uncorrupted) — for CTP this is "an ack will come back".
    pub fn ok(&self) -> bool {
        !self.dropped && !self.corrupted
    }
}

/// The complete, externally serializable state of a [`FaultyWire`]: the
/// configured fault probabilities, the RNG stream *cursor* (not the seed —
/// a restored wire continues the exact roll sequence a live one would
/// have drawn), any frame parked by the reordering stage, and the fault
/// counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireState<T> {
    /// Configured fault probabilities (including the original seed).
    pub faults: WireFaults,
    /// Current RNG stream position.
    pub rng: u64,
    /// Frame held back by the reordering stage, with its copy count.
    pub held: Option<(T, u32)>,
    /// Fault counters so far.
    pub stats: WireStats,
}

/// A seeded lossy/duplicating/reordering/corrupting wire for frames of
/// type `T`.
#[derive(Debug, Clone)]
pub struct FaultyWire<T> {
    faults: WireFaults,
    rng: u64,
    held: Option<(T, u32)>,
    stats: WireStats,
}

impl<T: Clone> FaultyWire<T> {
    /// A wire rolling from `faults.seed`.
    pub fn new(faults: WireFaults) -> Self {
        FaultyWire {
            rng: faults.seed,
            faults,
            held: None,
            stats: WireStats::default(),
        }
    }

    /// What the fault model has done so far.
    pub fn stats(&self) -> WireStats {
        self.stats
    }

    /// The configured fault probabilities.
    pub fn faults(&self) -> WireFaults {
        self.faults
    }

    fn next_roll(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn roll(&mut self, per_mille: u16) -> bool {
        per_mille > 0 && self.next_roll() % 1000 < u64::from(per_mille)
    }

    /// Sends one frame through the fault model. `corrupt` is the
    /// substrate-specific mutation applied when the corruption roll fires
    /// (flip a payload byte, mangle an event argument, …).
    ///
    /// Roll order is drop → corrupt → duplicate → reorder, with the
    /// reorder roll consumed only for intact frames while nothing is
    /// already held — exactly the stream CTP's original in-crate model
    /// drew, so historical seeds reproduce byte-identical fault plans.
    /// A corrupted frame arrives exactly once (marked [`Arrival::corrupted`])
    /// and is never parked for reordering.
    pub fn transmit(&mut self, item: T, corrupt: impl FnOnce(&mut T)) -> Transmit<T> {
        if self.roll(self.faults.drop_per_mille) {
            self.stats.dropped += 1;
            return Transmit {
                arrivals: self.flush(),
                dropped: true,
                corrupted: false,
                held: false,
            };
        }
        let mut item = item;
        let corrupted = self.roll(self.faults.corrupt_per_mille);
        if corrupted {
            self.stats.corrupted += 1;
            corrupt(&mut item);
        }
        let copies = if self.roll(self.faults.dup_per_mille) {
            self.stats.duplicated += 1;
            2
        } else {
            1
        };
        if corrupted {
            // The receiver's integrity check rejects it once; duplicate
            // copies of garbage are not modeled.
            let mut arrivals = vec![Arrival {
                item,
                corrupted: true,
            }];
            arrivals.extend(self.flush());
            return Transmit {
                arrivals,
                dropped: false,
                corrupted: true,
                held: false,
            };
        }
        if self.held.is_none() && self.roll(self.faults.reorder_per_mille) {
            self.stats.reordered += 1;
            self.held = Some((item, copies));
            return Transmit {
                arrivals: Vec::new(),
                dropped: false,
                corrupted: false,
                held: true,
            };
        }
        let mut arrivals = Vec::with_capacity(copies as usize);
        for _ in 0..copies {
            arrivals.push(Arrival {
                item: item.clone(),
                corrupted: false,
            });
        }
        arrivals.extend(self.flush());
        Transmit {
            arrivals,
            dropped: false,
            corrupted: false,
            held: false,
        }
    }

    /// Releases a frame the reordering stage parked, if any (a held frame
    /// with nothing left to overtake it finally arrives).
    pub fn flush(&mut self) -> Vec<Arrival<T>> {
        let mut arrivals = Vec::new();
        if let Some((item, copies)) = self.held.take() {
            for _ in 0..copies {
                arrivals.push(Arrival {
                    item: item.clone(),
                    corrupted: false,
                });
            }
        }
        arrivals
    }

    /// Whether a frame is currently parked by the reordering stage.
    pub fn has_held(&self) -> bool {
        self.held.is_some()
    }

    /// Exports the wire's complete state — RNG cursor, held frame, and
    /// counters — so a restored wire continues the identical fault
    /// sequence.
    pub fn export_state(&self) -> WireState<T> {
        WireState {
            faults: self.faults,
            rng: self.rng,
            held: self.held.clone(),
            stats: self.stats,
        }
    }

    /// Rebuilds a wire from exported state (the inverse of
    /// [`FaultyWire::export_state`]).
    pub fn from_state(state: WireState<T>) -> Self {
        FaultyWire {
            faults: state.faults,
            rng: state.rng,
            held: state.held,
            stats: state.stats,
        }
    }
}

/// The complete, externally serializable state of a
/// [`SequencedReceiver`]: the next expected sequence number, the
/// out-of-order gap buffer (sorted by sequence number), everything
/// released so far, and the duplicate counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceiverState<T> {
    /// Next in-order sequence number expected.
    pub next: i64,
    /// Buffered out-of-order frames, ascending by sequence number.
    pub buffer: Vec<(i64, T)>,
    /// Frames released in order so far.
    pub delivered: Vec<(i64, T)>,
    /// Duplicate arrivals discarded.
    pub duplicates: u64,
}

/// Receiver-side companion to [`FaultyWire`] for sequence-numbered frames:
/// deduplicates by sequence number, buffers out-of-order arrivals, and
/// releases consecutively from `next`.
#[derive(Debug, Clone)]
pub struct SequencedReceiver<T> {
    next: i64,
    buffer: BTreeMap<i64, T>,
    delivered: Vec<(i64, T)>,
    duplicates: u64,
}

impl<T> SequencedReceiver<T> {
    /// A receiver expecting `first` as the next in-order sequence number.
    pub fn new(first: i64) -> Self {
        SequencedReceiver {
            next: first,
            buffer: BTreeMap::new(),
            delivered: Vec::new(),
            duplicates: 0,
        }
    }

    /// Accepts one arrival: drops duplicates, buffers gaps, releases every
    /// consecutive frame starting at the expected sequence number.
    pub fn accept(&mut self, seq: i64, item: T) {
        if seq < self.next || self.buffer.contains_key(&seq) {
            self.duplicates += 1;
            return;
        }
        self.buffer.insert(seq, item);
        while let Some(p) = self.buffer.remove(&self.next) {
            self.delivered.push((self.next, p));
            self.next += 1;
        }
    }

    /// Frames released in order so far.
    pub fn delivered(&self) -> &[(i64, T)] {
        &self.delivered
    }

    /// Duplicate arrivals discarded.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// The next in-order sequence number the receiver is waiting for.
    pub fn next_expected(&self) -> i64 {
        self.next
    }

    /// Out-of-order frames buffered but not yet released.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Exports the receiver's complete dedup/gap-buffer state.
    pub fn export_state(&self) -> ReceiverState<T>
    where
        T: Clone,
    {
        ReceiverState {
            next: self.next,
            buffer: self.buffer.iter().map(|(&s, p)| (s, p.clone())).collect(),
            delivered: self.delivered.clone(),
            duplicates: self.duplicates,
        }
    }

    /// Rebuilds a receiver from exported state (the inverse of
    /// [`SequencedReceiver::export_state`]).
    pub fn from_state(state: ReceiverState<T>) -> Self {
        SequencedReceiver {
            next: state.next,
            buffer: state.buffer.into_iter().collect(),
            delivered: state.delivered,
            duplicates: state.duplicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(faults: WireFaults) -> FaultyWire<u32> {
        FaultyWire::new(faults)
    }

    fn no_corrupt(_: &mut u32) {}

    #[test]
    fn perfect_wire_delivers_every_frame_once() {
        let mut w = wire(WireFaults::default());
        for i in 0..100 {
            let t = w.transmit(i, no_corrupt);
            assert!(t.ok());
            assert_eq!(t.arrivals.len(), 1);
            assert_eq!(t.arrivals[0].item, i);
            assert!(!t.arrivals[0].corrupted);
        }
        assert_eq!(w.stats(), WireStats::default());
        assert!(w.flush().is_empty());
    }

    #[test]
    fn always_drop_loses_everything() {
        let mut w = wire(WireFaults {
            drop_per_mille: 1000,
            seed: 1,
            ..Default::default()
        });
        for i in 0..50 {
            let t = w.transmit(i, no_corrupt);
            assert!(t.dropped && !t.ok());
            assert!(t.arrivals.is_empty());
        }
        assert_eq!(w.stats().dropped, 50);
    }

    #[test]
    fn always_dup_delivers_two_copies() {
        let mut w = wire(WireFaults {
            dup_per_mille: 1000,
            seed: 3,
            ..Default::default()
        });
        let t = w.transmit(9, no_corrupt);
        assert_eq!(t.arrivals.len(), 2);
        assert!(t.arrivals.iter().all(|a| a.item == 9 && !a.corrupted));
        assert_eq!(w.stats().duplicated, 1);
    }

    #[test]
    fn corruption_applies_the_mutation_and_marks_the_arrival() {
        let mut w = wire(WireFaults {
            corrupt_per_mille: 1000,
            seed: 11,
            ..Default::default()
        });
        let t = w.transmit(5, |v| *v ^= 0xFF);
        assert!(t.corrupted && !t.ok());
        assert_eq!(t.arrivals.len(), 1);
        assert_eq!(t.arrivals[0].item, 5 ^ 0xFF);
        assert!(t.arrivals[0].corrupted);
    }

    #[test]
    fn reordering_holds_a_frame_until_the_next_overtakes_it() {
        // reorder=1000 would hold every frame; since only one frame can be
        // held at a time, frame n is parked, frame n+1 finds the slot busy
        // (no roll consumed) and overtakes it.
        let mut w = wire(WireFaults {
            reorder_per_mille: 1000,
            seed: 5,
            ..Default::default()
        });
        let t1 = w.transmit(1, no_corrupt);
        assert!(t1.held && t1.arrivals.is_empty() && t1.ok());
        assert!(w.has_held());
        let t2 = w.transmit(2, no_corrupt);
        assert_eq!(
            t2.arrivals.iter().map(|a| a.item).collect::<Vec<_>>(),
            vec![2, 1],
            "new frame first, overtaken frame behind it"
        );
        // The slot freed up, so the next frame is parked again.
        let t3 = w.transmit(3, no_corrupt);
        assert!(t3.held);
        assert_eq!(w.flush().iter().map(|a| a.item).collect::<Vec<_>>(), [3]);
        assert_eq!(w.stats().reordered, 2);
    }

    #[test]
    fn drop_and_corrupt_release_a_held_frame() {
        let mut w = wire(WireFaults {
            reorder_per_mille: 1000,
            drop_per_mille: 500,
            seed: 42,
            ..Default::default()
        });
        // Park frames until a drop occurs; the drop must flush the held one.
        let mut i = 0u32;
        loop {
            i += 1;
            let t = w.transmit(i, no_corrupt);
            if t.dropped {
                assert!(!w.has_held(), "a drop releases whatever reordering parked");
                break;
            }
            assert!(i < 1000, "seed 42 at 500 permille must drop eventually");
        }
    }

    #[test]
    fn same_seed_reproduces_the_same_fault_sequence() {
        let faults = WireFaults {
            drop_per_mille: 300,
            dup_per_mille: 200,
            reorder_per_mille: 100,
            corrupt_per_mille: 150,
            seed: 1234,
        };
        let run = |mut w: FaultyWire<u32>| {
            let mut log = Vec::new();
            for i in 0..200 {
                let t = w.transmit(i, |v| *v = u32::MAX);
                log.push((t.dropped, t.corrupted, t.held, t.arrivals.len()));
            }
            (log, w.stats())
        };
        assert_eq!(run(wire(faults)), run(wire(faults)));
    }

    #[test]
    fn sequenced_receiver_dedups_and_releases_in_order() {
        let mut r = SequencedReceiver::new(1);
        r.accept(2, "b");
        assert_eq!(r.delivered().len(), 0);
        assert_eq!(r.buffered(), 1);
        r.accept(1, "a");
        assert_eq!(
            r.delivered().iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            [1, 2]
        );
        r.accept(1, "a-again");
        r.accept(2, "b-again");
        assert_eq!(r.duplicates(), 2);
        r.accept(3, "c");
        r.accept(3, "c-again");
        assert_eq!(r.delivered().len(), 3);
        assert_eq!(r.duplicates(), 3);
        assert_eq!(r.next_expected(), 4);
    }

    #[test]
    fn export_restore_continues_the_exact_fault_sequence() {
        let faults = WireFaults {
            drop_per_mille: 300,
            dup_per_mille: 200,
            reorder_per_mille: 250,
            corrupt_per_mille: 150,
            seed: 77,
        };
        // Uninterrupted run vs a run snapshotted/restored at every step:
        // identical arrivals and counters throughout.
        let mut live: FaultyWire<(i64, i64)> = FaultyWire::new(faults);
        let mut restored: FaultyWire<(i64, i64)> = FaultyWire::new(faults);
        let mut rx_live = SequencedReceiver::new(0);
        let mut rx_restored = SequencedReceiver::new(0);
        for seq in 0..100i64 {
            restored = FaultyWire::from_state(restored.export_state());
            rx_restored = SequencedReceiver::from_state(rx_restored.export_state());
            let a = live.transmit((seq, seq), |v| v.1 = -1);
            let b = restored.transmit((seq, seq), |v| v.1 = -1);
            assert_eq!(a, b);
            for arr in a.arrivals {
                rx_live.accept(arr.item.0, arr.item.1);
            }
            for arr in b.arrivals {
                rx_restored.accept(arr.item.0, arr.item.1);
            }
        }
        assert_eq!(live.stats(), restored.stats());
        assert_eq!(rx_live.export_state(), rx_restored.export_state());
    }

    #[test]
    fn lossy_stream_through_receiver_is_a_prefix_preserving_permutation() {
        let faults = WireFaults {
            drop_per_mille: 250,
            dup_per_mille: 250,
            reorder_per_mille: 250,
            seed: 99,
            ..Default::default()
        };
        let mut w = FaultyWire::new(faults);
        let mut r = SequencedReceiver::new(0);
        for seq in 0..100i64 {
            for a in w.transmit((seq, seq * 10), |_| {}).arrivals {
                r.accept(a.item.0, a.item.1);
            }
        }
        for a in w.flush() {
            r.accept(a.item.0, a.item.1);
        }
        // Whatever was released is in order and correctly paired.
        for (i, (seq, payload)) in r.delivered().iter().enumerate() {
            assert_eq!(*seq, i as i64);
            assert_eq!(*payload, seq * 10);
        }
    }
}
