//! Virtual time and the pending-event scheduler.
//!
//! The runtime executes against a deterministic virtual clock: asynchronous
//! raises join a FIFO queue, timed raises join a deadline-ordered heap, and
//! [`crate::Runtime::run_until_idle`] drains both, advancing the clock to
//! the next deadline when the FIFO is empty (paper §2.2: timed events "are
//! activated at a specified time or after a specified delay").

use pdo_obs::TraceCtx;

use pdo_ir::{EventId, Value};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Causal-trace context riding a queued event: the parent span that
/// enqueued it plus the virtual time of enqueue, so the dispatch span
/// can attribute its queue wait (DESIGN.md §16). Diagnostic only —
/// excluded from [`Pending`]/[`TimerEntry`] equality and from the
/// durable snapshot encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuedTrace {
    /// The trace and parent span of the raise that enqueued the event.
    pub ctx: TraceCtx,
    /// Virtual time the event was enqueued, nanoseconds.
    pub enqueued_ns: u64,
}

/// A monotonically advancing virtual clock in nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in nanoseconds.
    pub fn now_ns(self) -> u64 {
        self.now_ns
    }

    /// Advances to `t` (saturating: never moves backwards).
    pub fn advance_to(&mut self, t: u64) {
        self.now_ns = self.now_ns.max(t);
    }

    /// Advances by `delta` nanoseconds.
    pub fn advance_by(&mut self, delta: u64) {
        self.now_ns = self.now_ns.saturating_add(delta);
    }
}

/// An event waiting in the asynchronous queue.
#[derive(Debug, Clone)]
pub struct Pending {
    /// The event to dispatch.
    pub event: EventId,
    /// Its arguments.
    pub args: Vec<Value>,
    /// Causal-trace context of the enqueuing raise, if tracing.
    pub trace: Option<QueuedTrace>,
}

// Equality is logical state only: the trace context is a diagnostic
// rider and must not make two otherwise-identical schedulers diverge
// (the chaos oracle compares reference vs optimized runtimes whose
// span ids differ).
impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.event == other.event && self.args == other.args
    }
}

/// A timed event waiting for its deadline.
#[derive(Debug, Clone)]
pub struct TimerEntry {
    /// Virtual deadline (ns).
    pub deadline_ns: u64,
    /// Tie-break: insertion sequence (FIFO among equal deadlines).
    pub seq: u64,
    /// The event to dispatch.
    pub event: EventId,
    /// Its arguments.
    pub args: Vec<Value>,
    /// Causal-trace context of the scheduling raise, if tracing.
    pub trace: Option<QueuedTrace>,
}

// Same contract as [`Pending`]: trace context is excluded.
impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline_ns == other.deadline_ns
            && self.seq == other.seq
            && self.event == other.event
            && self.args == other.args
    }
}

impl Eq for TimerEntry {}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want the earliest
        // deadline (then lowest seq) on top.
        other
            .deadline_ns
            .cmp(&self.deadline_ns)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The complete, externally serializable state of a [`Scheduler`]: the
/// async FIFO in order, every timer in pop order, and the insertion
/// sequence counter (whose value keeps FIFO tie-breaking among equal
/// deadlines stable across a snapshot/restore cycle).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedulerState {
    /// Queued asynchronous events, front first.
    pub queue: Vec<Pending>,
    /// Scheduled timers in exact pop order (earliest deadline, then
    /// lowest insertion sequence).
    pub timers: Vec<TimerEntry>,
    /// Next insertion sequence number.
    pub seq: u64,
}

/// FIFO queue plus timer heap.
#[derive(Debug, Default)]
pub struct Scheduler {
    queue: VecDeque<Pending>,
    timers: BinaryHeap<TimerEntry>,
    seq: u64,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues an asynchronous event.
    pub fn push_async(&mut self, event: EventId, args: Vec<Value>) {
        self.push_async_traced(event, args, None);
    }

    /// Enqueues an asynchronous event carrying a causal-trace context.
    pub fn push_async_traced(
        &mut self,
        event: EventId,
        args: Vec<Value>,
        trace: Option<QueuedTrace>,
    ) {
        self.queue.push_back(Pending { event, args, trace });
    }

    /// Schedules a timed event `delay_ns` after `now_ns`.
    pub fn push_timed(&mut self, now_ns: u64, delay_ns: u64, event: EventId, args: Vec<Value>) {
        self.push_timed_traced(now_ns, delay_ns, event, args, None);
    }

    /// Schedules a timed event carrying a causal-trace context.
    pub fn push_timed_traced(
        &mut self,
        now_ns: u64,
        delay_ns: u64,
        event: EventId,
        args: Vec<Value>,
        trace: Option<QueuedTrace>,
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.timers.push(TimerEntry {
            deadline_ns: now_ns.saturating_add(delay_ns),
            seq,
            event,
            args,
            trace,
        });
    }

    /// Removes every scheduled timer for `event` (Cactus's "canceling a
    /// delayed event"). Returns how many were cancelled.
    pub fn cancel_timers(&mut self, event: EventId) -> usize {
        let before = self.timers.len();
        let kept: Vec<TimerEntry> = std::mem::take(&mut self.timers)
            .into_iter()
            .filter(|t| t.event != event)
            .collect();
        self.timers = kept.into();
        before - self.timers.len()
    }

    /// Next queued asynchronous event, if any.
    pub fn pop_async(&mut self) -> Option<Pending> {
        self.queue.pop_front()
    }

    /// Pops the earliest timer whose deadline is `<= now_ns`.
    pub fn pop_due_timer(&mut self, now_ns: u64) -> Option<TimerEntry> {
        if self.timers.peek().is_some_and(|t| t.deadline_ns <= now_ns) {
            self.timers.pop()
        } else {
            None
        }
    }

    /// The earliest timer deadline, if any timer is scheduled.
    pub fn next_deadline(&self) -> Option<u64> {
        self.timers.peek().map(|t| t.deadline_ns)
    }

    /// True when no work is queued or scheduled.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.timers.is_empty()
    }

    /// Queued (async) event count.
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Scheduled (timed) event count.
    pub fn timer_len(&self) -> usize {
        self.timers.len()
    }

    /// Exports the scheduler's complete state for snapshotting: the FIFO
    /// in order, the timers in exact pop order, and the sequence counter.
    pub fn export_state(&self) -> SchedulerState {
        let mut heap = self.timers.clone();
        let mut timers = Vec::with_capacity(heap.len());
        while let Some(t) = heap.pop() {
            timers.push(t);
        }
        SchedulerState {
            queue: self.queue.iter().cloned().collect(),
            timers,
            seq: self.seq,
        }
    }

    /// Replaces this scheduler's state with `state` (the inverse of
    /// [`Scheduler::export_state`]). Timer deadlines are absolute virtual
    /// times, so the caller restores the clock separately.
    pub fn restore_state(&mut self, state: SchedulerState) {
        self.queue = state.queue.into();
        self.timers = state.timers.into();
        self.seq = state.seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = VirtualClock::new();
        c.advance_to(100);
        c.advance_to(50);
        assert_eq!(c.now_ns(), 100);
        c.advance_by(10);
        assert_eq!(c.now_ns(), 110);
    }

    #[test]
    fn async_queue_is_fifo() {
        let mut s = Scheduler::new();
        s.push_async(EventId(1), vec![]);
        s.push_async(EventId(2), vec![]);
        assert_eq!(s.pop_async().unwrap().event, EventId(1));
        assert_eq!(s.pop_async().unwrap().event, EventId(2));
        assert!(s.pop_async().is_none());
    }

    #[test]
    fn timers_pop_in_deadline_order() {
        let mut s = Scheduler::new();
        s.push_timed(0, 300, EventId(3), vec![]);
        s.push_timed(0, 100, EventId(1), vec![]);
        s.push_timed(0, 200, EventId(2), vec![]);
        assert_eq!(s.next_deadline(), Some(100));
        assert!(s.pop_due_timer(50).is_none());
        assert_eq!(s.pop_due_timer(100).unwrap().event, EventId(1));
        assert_eq!(s.pop_due_timer(1000).unwrap().event, EventId(2));
        assert_eq!(s.pop_due_timer(1000).unwrap().event, EventId(3));
    }

    #[test]
    fn equal_deadlines_fifo_by_seq() {
        let mut s = Scheduler::new();
        s.push_timed(0, 100, EventId(1), vec![]);
        s.push_timed(0, 100, EventId(2), vec![]);
        assert_eq!(s.pop_due_timer(100).unwrap().event, EventId(1));
        assert_eq!(s.pop_due_timer(100).unwrap().event, EventId(2));
    }

    #[test]
    fn cancel_timers_removes_matching() {
        let mut s = Scheduler::new();
        s.push_timed(0, 100, EventId(1), vec![]);
        s.push_timed(0, 200, EventId(2), vec![]);
        s.push_timed(0, 300, EventId(1), vec![]);
        assert_eq!(s.cancel_timers(EventId(1)), 2);
        assert_eq!(s.timer_len(), 1);
        assert_eq!(s.pop_due_timer(u64::MAX).unwrap().event, EventId(2));
    }

    #[test]
    fn idle_reflects_both_queues() {
        let mut s = Scheduler::new();
        assert!(s.is_idle());
        s.push_async(EventId(0), vec![]);
        assert!(!s.is_idle());
        s.pop_async();
        assert!(s.is_idle());
        s.push_timed(0, 5, EventId(0), vec![]);
        assert!(!s.is_idle());
    }

    #[test]
    fn export_restore_preserves_order_and_tiebreak() {
        let mut s = Scheduler::new();
        s.push_async(EventId(7), vec![Value::Int(1)]);
        s.push_async(EventId(8), vec![]);
        s.push_timed(0, 100, EventId(1), vec![]);
        s.push_timed(0, 100, EventId(2), vec![]);
        s.push_timed(0, 50, EventId(3), vec![]);
        let state = s.export_state();
        assert_eq!(
            state.timers.iter().map(|t| t.event).collect::<Vec<_>>(),
            [EventId(3), EventId(1), EventId(2)],
            "timers export in pop order"
        );
        assert_eq!(state.seq, 3);
        let mut r = Scheduler::new();
        r.restore_state(state.clone());
        assert_eq!(r.export_state(), state, "round trip is exact");
        // The restored scheduler pops identically and keeps the seq
        // counter, so new timers tie-break after restored ones.
        r.push_timed(0, 100, EventId(9), vec![]);
        assert_eq!(r.pop_async().unwrap().event, EventId(7));
        assert_eq!(r.pop_due_timer(100).unwrap().event, EventId(3));
        assert_eq!(r.pop_due_timer(100).unwrap().event, EventId(1));
        assert_eq!(r.pop_due_timer(100).unwrap().event, EventId(2));
        assert_eq!(r.pop_due_timer(100).unwrap().event, EventId(9));
    }

    #[test]
    fn timed_deadline_saturates() {
        let mut s = Scheduler::new();
        s.push_timed(u64::MAX - 1, 100, EventId(0), vec![]);
        assert_eq!(s.next_deadline(), Some(u64::MAX));
    }
}
