//! # pdo-events — the event runtime
//!
//! A Cactus-model event system (paper §2): *events* are named stimuli,
//! *handlers* are IR functions bound to events through a dynamic *registry*,
//! and raises are **synchronous** (handlers run before the raiser continues),
//! **asynchronous** (enqueued), or **timed** (enqueued with a virtual-clock
//! delay).
//!
//! The runtime deliberately models the overheads the paper attributes to
//! event-based execution so that optimizations have something real to
//! remove:
//!
//! * **registry lookup** — generic dispatch walks the registry and clones
//!   the binding list (bindings may change while handlers run);
//! * **indirect invocation** — handlers are called through their registry
//!   entry, never directly;
//! * **argument marshaling** — the generic path packs arguments into a fresh
//!   boxed vector with a type-tag scan per handler, mirroring the varargs
//!   packing of Cactus/Xt (see [`marshal`]);
//! * **state maintenance** — `lock`/`unlock` IR instructions perform real
//!   atomic read-modify-write operations on per-global lock words.
//!
//! The optimizer in the `pdo` crate installs [`spec::CompiledChain`]s: a
//! guarded fast path that, when an event's binding versions still match the
//! profile-time versions, invokes one merged super-handler directly with no
//! lookup and no marshaling. On a guard miss the raise falls back to the
//! generic path, preserving semantics under dynamic re-binding (§3.2.1,
//! §3.3).
//!
//! ```
//! use pdo_ir::{Module, FunctionBuilder, Value, RaiseMode};
//! use pdo_events::Runtime;
//!
//! let mut m = Module::new();
//! let ping = m.add_event("Ping");
//! let counter = m.add_global("counter", Value::Int(0));
//! let mut b = FunctionBuilder::new("on_ping", 1);
//! let v = b.load_global(counter);
//! let s = b.bin(pdo_ir::BinOp::Add, v, b.param(0));
//! b.store_global(counter, s);
//! b.ret(None);
//! let h = m.add_function(b.finish());
//!
//! let mut rt = Runtime::new(m);
//! rt.bind(ping, h, 0)?;
//! rt.raise(ping, RaiseMode::Sync, &[Value::Int(5)])?;
//! rt.raise(ping, RaiseMode::Async, &[Value::Int(2)])?;
//! rt.run_until_idle()?;
//! assert_eq!(rt.global(counter), &Value::Int(7));
//! # Ok::<(), pdo_events::RuntimeError>(())
//! ```

pub mod fault;
pub mod marshal;
pub mod registry;
pub mod runtime;
pub mod sched;
pub mod spec;
pub mod trace;
pub mod wire;

pub use fault::{
    corrupt_value, FaultInjector, FaultInjectorState, FaultKind, FaultPolicy, FaultSpec,
};
pub use registry::{Binding, Registry};
pub use runtime::{EpochHook, ObservableStats, Runtime, RuntimeConfig, RuntimeError, RuntimeStats};
pub use sched::{Pending, QueuedTrace, SchedulerState, TimerEntry, VirtualClock};
pub use spec::{CompiledChain, Guard, SpecTable};
pub use trace::{HandlerTraceMode, Trace, TraceConfig, TraceRecord};
pub use wire::{
    Arrival, FaultyWire, ReceiverState, SequencedReceiver, Transmit, WireFaults, WireState,
    WireStats,
};
