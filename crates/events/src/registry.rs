//! The event → handler binding registry.
//!
//! Bindings are fully dynamic (paper §2.3: "Event handler binding is
//! completely dynamic"). Each event carries a monotonically increasing
//! *binding version*, bumped by every mutation; the optimizer's guarded
//! fast paths compare recorded versions against current ones to detect
//! re-binding and fall back to generic dispatch.

use pdo_ir::{EventId, FuncId};
use std::collections::HashMap;

/// One handler bound to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// The IR function invoked when the event fires.
    pub handler: FuncId,
    /// Execution order: lower runs first; ties run in bind order (§2.3:
    /// "The order of event handler execution can be specified if desired").
    pub order: i32,
}

#[derive(Debug, Clone, Default)]
struct EventEntry {
    bindings: Vec<Binding>,
    version: u64,
}

/// The registry mapping events to ordered handler lists.
///
/// Implemented as a hash map keyed by event — the "shared data structure
/// like the table shown in the figure" of §2.1 — so generic dispatch pays a
/// genuine lookup cost.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    entries: HashMap<EventId, EventEntry>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `handler` to `event` with the given order key and bumps the
    /// event's binding version.
    pub fn bind(&mut self, event: EventId, handler: FuncId, order: i32) {
        let entry = self.entries.entry(event).or_default();
        let binding = Binding { handler, order };
        // Stable insertion: after the last binding with order <= new order.
        let pos = entry
            .bindings
            .iter()
            .rposition(|b| b.order <= order)
            .map(|p| p + 1)
            .unwrap_or(0);
        entry.bindings.insert(pos, binding);
        entry.version += 1;
    }

    /// Removes the first binding of `handler` to `event`. Returns `true`
    /// if a binding was removed (and the version bumped).
    pub fn unbind(&mut self, event: EventId, handler: FuncId) -> bool {
        let Some(entry) = self.entries.get_mut(&event) else {
            return false;
        };
        let Some(pos) = entry.bindings.iter().position(|b| b.handler == handler) else {
            return false;
        };
        entry.bindings.remove(pos);
        entry.version += 1;
        true
    }

    /// Removes every binding for `event`.
    pub fn unbind_all(&mut self, event: EventId) {
        if let Some(entry) = self.entries.get_mut(&event) {
            if !entry.bindings.is_empty() {
                entry.bindings.clear();
                entry.version += 1;
            }
        }
    }

    /// The current binding list for `event`, in execution order. An event
    /// with no bindings yields an empty slice (§2.1: "An event is ignored
    /// if no handlers are bound to the event").
    pub fn bindings(&self, event: EventId) -> &[Binding] {
        self.entries
            .get(&event)
            .map(|e| e.bindings.as_slice())
            .unwrap_or(&[])
    }

    /// The event's binding version. Events never bound have version 0.
    pub fn version(&self, event: EventId) -> u64 {
        self.entries.get(&event).map(|e| e.version).unwrap_or(0)
    }

    /// Clones the binding list, as generic dispatch must (bindings may
    /// change while the handlers run).
    pub fn snapshot(&self, event: EventId) -> Vec<Binding> {
        self.bindings(event).to_vec()
    }

    /// Number of events with at least one binding.
    pub fn bound_event_count(&self) -> usize {
        self.entries
            .values()
            .filter(|e| !e.bindings.is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const E: EventId = EventId(0);

    #[test]
    fn bind_orders_handlers() {
        let mut r = Registry::new();
        r.bind(E, FuncId(2), 10);
        r.bind(E, FuncId(0), 0);
        r.bind(E, FuncId(1), 5);
        let order: Vec<u32> = r.bindings(E).iter().map(|b| b.handler.0).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn equal_order_keeps_bind_sequence() {
        let mut r = Registry::new();
        r.bind(E, FuncId(7), 0);
        r.bind(E, FuncId(8), 0);
        r.bind(E, FuncId(9), 0);
        let order: Vec<u32> = r.bindings(E).iter().map(|b| b.handler.0).collect();
        assert_eq!(order, vec![7, 8, 9]);
    }

    #[test]
    fn version_bumps_on_every_mutation() {
        let mut r = Registry::new();
        assert_eq!(r.version(E), 0);
        r.bind(E, FuncId(1), 0);
        assert_eq!(r.version(E), 1);
        r.bind(E, FuncId(2), 0);
        assert_eq!(r.version(E), 2);
        assert!(r.unbind(E, FuncId(1)));
        assert_eq!(r.version(E), 3);
        assert!(!r.unbind(E, FuncId(1)));
        assert_eq!(r.version(E), 3);
        r.unbind_all(E);
        assert_eq!(r.version(E), 4);
        r.unbind_all(E); // already empty: no bump
        assert_eq!(r.version(E), 4);
    }

    #[test]
    fn unbound_event_is_empty() {
        let r = Registry::new();
        assert!(r.bindings(EventId(42)).is_empty());
        assert_eq!(r.version(EventId(42)), 0);
    }

    #[test]
    fn handler_bound_to_multiple_events() {
        let mut r = Registry::new();
        let h = FuncId(3);
        r.bind(EventId(0), h, 0);
        r.bind(EventId(1), h, 0);
        assert_eq!(r.bindings(EventId(0)).len(), 1);
        assert_eq!(r.bindings(EventId(1)).len(), 1);
        assert_eq!(r.bound_event_count(), 2);
    }

    #[test]
    fn same_handler_bound_twice_to_one_event() {
        let mut r = Registry::new();
        let h = FuncId(3);
        r.bind(E, h, 0);
        r.bind(E, h, 0);
        assert_eq!(r.bindings(E).len(), 2);
        assert!(r.unbind(E, h));
        assert_eq!(r.bindings(E).len(), 1);
    }

    #[test]
    fn snapshot_is_independent() {
        let mut r = Registry::new();
        r.bind(E, FuncId(1), 0);
        let snap = r.snapshot(E);
        r.unbind(E, FuncId(1));
        assert_eq!(snap.len(), 1);
        assert!(r.bindings(E).is_empty());
    }
}
