//! Deterministic fault injection and fault-containment policy.
//!
//! Event-driven systems are exactly where fault interleavings hide bugs, so
//! the runtime carries a first-class, **seeded and deterministic** fault
//! substrate: a [`FaultInjector`] holds a plan of [`FaultSpec`]s, each
//! targeting the N-th *top-level* occurrence of an event, and the
//! [`FaultPolicy`] on [`crate::RuntimeConfig`] decides what a fault does to
//! the event loop.
//!
//! ## Why faults key on *top-level* occurrences
//!
//! The optimizer may subsume a nested synchronous raise into its parent's
//! super-handler (paper Fig 9), so the *nested* dispatch count of an event
//! differs between an original and an optimized run of the same program.
//! Top-level occurrences — workload raises and queue/timer pops — are
//! preserved exactly by every optimization, so a plan keyed on them hits the
//! same logical occurrence in both runs. That is what makes the chaos
//! equivalence property (`tests/chaos_equivalence.rs`) well defined: the
//! paper's equivalence guarantee holds *under faults*, not just on the happy
//! path.
//!
//! ## Equivalence-safe vs best-effort kinds
//!
//! [`FaultKind::TrapDispatch`], [`FaultKind::CorruptArg`],
//! [`FaultKind::DropTimed`] and [`FaultKind::DelayTimed`] fire at a dispatch
//! or raise boundary, *before* any handler effect, so original and optimized
//! runs observe them identically. [`FaultKind::ExhaustFuel`] meters *handler
//! boundaries*: the faulted occurrence gets a budget of
//! [`EXHAUST_FUEL_BUDGET`] units and every pre-merge handler invocation in
//! its dynamic extent charges one unit before the handler body runs.
//! Super-handlers compiled with fuel-boundary markers
//! (`OptimizeOptions::fuel_boundaries` in the `pdo` crate) charge at the
//! same program points, so exhaustion trips identically in original and
//! optimized runs and the kind is equivalence-safe *for such builds* (see
//! [`FaultKind::is_equivalence_safe_with_fuel_boundaries`]). Against chains
//! compiled without markers it remains best-effort and is excluded by the
//! stricter [`FaultKind::is_equivalence_safe`].

use pdo_ir::{EventId, Value};
use std::collections::BTreeMap;

/// What happens when a handler faults (injected or organic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// Propagate the error out of `raise`/`run_until_idle` (the pre-fault
    /// behavior, and still the default).
    #[default]
    Abort,
    /// Contain the fault: record it, skip the rest of the occurrence's
    /// dispatch, keep draining the queue.
    SkipEvent,
    /// Contain the fault *and* remove the faulting event's compiled chain
    /// so later occurrences fall back to generic dispatch. The occurrence
    /// itself is re-dispatched generically where that is safe (no handler
    /// effects have happened yet).
    Despecialize,
}

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The target occurrence's dispatch traps before any handler runs.
    TrapDispatch,
    /// One argument of the target occurrence is corrupted at the marshaling
    /// boundary (both the fast path and the generic path see the corrupted
    /// value). `index` is reduced modulo the argument count.
    CorruptArg {
        /// Which argument to corrupt (modulo arity; no-op on zero arity).
        index: u16,
    },
    /// The target occurrence runs under a tiny *handler-boundary* budget:
    /// each pre-merge handler invocation in the occurrence charges one unit
    /// before its body runs, and exhaustion aborts the rest of the
    /// occurrence. Equivalence-safe against chains compiled with
    /// fuel-boundary markers (see module docs).
    ExhaustFuel,
    /// The target timed raise is silently dropped (timer never scheduled).
    DropTimed,
    /// The target timed raise is delayed by an extra virtual-clock interval.
    DelayTimed {
        /// Additional delay in virtual nanoseconds.
        extra_ns: u64,
    },
    /// An organic (non-injected) handler trap contained by the policy.
    /// Never appears in plans; recorded in stats and traces.
    HandlerTrap,
}

impl FaultKind {
    /// True for kinds that target the timed-raise counter rather than the
    /// dispatch counter.
    pub fn is_timed(self) -> bool {
        matches!(self, FaultKind::DropTimed | FaultKind::DelayTimed { .. })
    }

    /// Short static name used as a metric label and in flight-recorder
    /// dumps (`snake_case`, no payload).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TrapDispatch => "trap_dispatch",
            FaultKind::CorruptArg { .. } => "corrupt_arg",
            FaultKind::ExhaustFuel => "exhaust_fuel",
            FaultKind::DropTimed => "drop_timed",
            FaultKind::DelayTimed { .. } => "delay_timed",
            FaultKind::HandlerTrap => "handler_trap",
        }
    }

    /// True for kinds whose effect is identical in original and optimized
    /// runs regardless of how the chains were compiled (see module docs).
    pub fn is_equivalence_safe(self) -> bool {
        !matches!(self, FaultKind::ExhaustFuel | FaultKind::HandlerTrap)
    }

    /// True for kinds whose effect is identical in original and optimized
    /// runs when every installed chain was compiled with fuel-boundary
    /// markers (`OptimizeOptions::fuel_boundaries`). This adds
    /// [`FaultKind::ExhaustFuel`] to the safe set: the markers charge the
    /// boundary budget at exactly the pre-merge handler boundaries.
    pub fn is_equivalence_safe_with_fuel_boundaries(self) -> bool {
        !matches!(self, FaultKind::HandlerTrap)
    }
}

/// One planned fault: `kind` fires on the `occurrence`-th (0-based)
/// top-level dispatch of `event` — or, for timed kinds, on the
/// `occurrence`-th timed raise of `event`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// The targeted event.
    pub event: EventId,
    /// 0-based occurrence index within the event's own counter.
    pub occurrence: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// Handler-boundary budget used for [`FaultKind::ExhaustFuel`] dispatches:
/// small enough that any occurrence invoking more than two pre-merge
/// handlers (directly or through nested synchronous raises) trips it at a
/// boundary.
pub const EXHAUST_FUEL_BUDGET: u64 = 2;

/// Deterministically corrupts a value (used by [`FaultKind::CorruptArg`]).
/// The transform is pure, so both the original and the optimized run of a
/// program observe the same corrupted argument.
pub fn corrupt_value(v: &Value) -> Value {
    match v {
        Value::Unit => Value::Int(-1),
        Value::Int(n) => Value::Int(!n),
        Value::Bool(b) => Value::Bool(!b),
        Value::Bytes(bs) => {
            let mut out = bs.as_ref().clone();
            match out.first_mut() {
                Some(b) => *b ^= 0xFF,
                None => out.push(0xFF),
            }
            Value::bytes(out)
        }
        Value::Str(s) => Value::str(format!("\u{fffd}{s}")),
    }
}

/// The complete, externally serializable state of a [`FaultInjector`]:
/// the faults still pending and the per-event occurrence counters. A
/// session snapshot carries this so a restored session neither re-fires
/// faults that already hit nor miscounts occurrences toward pending ones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultInjectorState {
    /// Pending dispatch-targeted faults, ascending by `(event, occurrence)`.
    pub dispatch_plan: Vec<(EventId, u64, FaultKind)>,
    /// Pending timed-raise-targeted faults, ascending by `(event, occurrence)`.
    pub timed_plan: Vec<(EventId, u64, FaultKind)>,
    /// Top-level dispatch occurrences counted so far, per event.
    pub dispatch_counts: Vec<(EventId, u64)>,
    /// Timed raises counted so far, per event.
    pub timed_counts: Vec<(EventId, u64)>,
}

/// A seeded, deterministic fault plan with per-event occurrence counters.
///
/// Counting is the injector's whole contract: `on_dispatch` must be called
/// exactly once per top-level occurrence and `on_timed` once per timed
/// raise, which [`crate::Runtime`] does. Two runtimes driven by the same
/// logical workload therefore consume the plan identically.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    /// Dispatch-targeted faults keyed by `(event, occurrence)`.
    dispatch_plan: BTreeMap<(EventId, u64), FaultKind>,
    /// Timed-raise-targeted faults keyed by `(event, occurrence)`.
    timed_plan: BTreeMap<(EventId, u64), FaultKind>,
    dispatch_counts: BTreeMap<EventId, u64>,
    timed_counts: BTreeMap<EventId, u64>,
}

impl FaultInjector {
    /// An injector with an empty plan (counts occurrences, fires nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an injector from an explicit plan. Later specs overwrite
    /// earlier ones targeting the same `(event, occurrence)` slot.
    pub fn from_plan(plan: impl IntoIterator<Item = FaultSpec>) -> Self {
        let mut fi = FaultInjector::new();
        for spec in plan {
            let key = (spec.event, spec.occurrence);
            if spec.kind.is_timed() {
                fi.timed_plan.insert(key, spec.kind);
            } else if spec.kind != FaultKind::HandlerTrap {
                fi.dispatch_plan.insert(key, spec.kind);
            }
        }
        fi
    }

    /// Generates a seeded random plan of `count` faults over `events`, with
    /// occurrence indices below `occurrences`. Deterministic in `seed`.
    pub fn random(seed: u64, events: &[EventId], occurrences: u64, count: usize) -> Self {
        let mut state = seed ^ 0x6A09_E667_F3BC_C908;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut plan = Vec::with_capacity(count);
        if events.is_empty() || occurrences == 0 {
            return Self::from_plan(plan);
        }
        for _ in 0..count {
            let event = events[(next() % events.len() as u64) as usize];
            let occurrence = next() % occurrences;
            let kind = match next() % 5 {
                0 => FaultKind::TrapDispatch,
                1 => FaultKind::CorruptArg {
                    index: (next() % 4) as u16,
                },
                2 => FaultKind::ExhaustFuel,
                3 => FaultKind::DropTimed,
                _ => FaultKind::DelayTimed {
                    extra_ns: 1 + next() % 10_000,
                },
            };
            plan.push(FaultSpec {
                event,
                occurrence,
                kind,
            });
        }
        Self::from_plan(plan)
    }

    /// Number of faults still pending (not yet fired).
    pub fn pending(&self) -> usize {
        self.dispatch_plan.len() + self.timed_plan.len()
    }

    /// Exports the injector's complete state: pending plan entries plus
    /// the occurrence counters (deterministically ordered).
    pub fn export_state(&self) -> FaultInjectorState {
        FaultInjectorState {
            dispatch_plan: self
                .dispatch_plan
                .iter()
                .map(|(&(e, n), &k)| (e, n, k))
                .collect(),
            timed_plan: self
                .timed_plan
                .iter()
                .map(|(&(e, n), &k)| (e, n, k))
                .collect(),
            dispatch_counts: self.dispatch_counts.iter().map(|(&e, &n)| (e, n)).collect(),
            timed_counts: self.timed_counts.iter().map(|(&e, &n)| (e, n)).collect(),
        }
    }

    /// Rebuilds an injector from exported state (the inverse of
    /// [`FaultInjector::export_state`]).
    pub fn from_state(state: FaultInjectorState) -> Self {
        FaultInjector {
            dispatch_plan: state
                .dispatch_plan
                .into_iter()
                .map(|(e, n, k)| ((e, n), k))
                .collect(),
            timed_plan: state
                .timed_plan
                .into_iter()
                .map(|(e, n, k)| ((e, n), k))
                .collect(),
            dispatch_counts: state.dispatch_counts.into_iter().collect(),
            timed_counts: state.timed_counts.into_iter().collect(),
        }
    }

    /// Advances the dispatch counter for `event` and returns a fault if this
    /// occurrence is targeted. Called by the runtime once per top-level
    /// occurrence.
    pub(crate) fn on_dispatch(&mut self, event: EventId) -> Option<FaultKind> {
        let n = self.dispatch_counts.entry(event).or_insert(0);
        let occurrence = *n;
        *n += 1;
        self.dispatch_plan.remove(&(event, occurrence))
    }

    /// Advances the timed-raise counter for `event` and returns a fault if
    /// this raise is targeted.
    pub(crate) fn on_timed(&mut self, event: EventId) -> Option<FaultKind> {
        let n = self.timed_counts.entry(event).or_insert(0);
        let occurrence = *n;
        *n += 1;
        self.timed_plan.remove(&(event, occurrence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_fires_on_exact_occurrence() {
        let e = EventId(2);
        let mut fi = FaultInjector::from_plan([FaultSpec {
            event: e,
            occurrence: 1,
            kind: FaultKind::TrapDispatch,
        }]);
        assert_eq!(fi.on_dispatch(e), None);
        assert_eq!(fi.on_dispatch(e), Some(FaultKind::TrapDispatch));
        assert_eq!(fi.on_dispatch(e), None);
        assert_eq!(fi.pending(), 0);
    }

    #[test]
    fn timed_and_dispatch_counters_are_independent() {
        let e = EventId(0);
        let mut fi = FaultInjector::from_plan([
            FaultSpec {
                event: e,
                occurrence: 0,
                kind: FaultKind::DropTimed,
            },
            FaultSpec {
                event: e,
                occurrence: 0,
                kind: FaultKind::CorruptArg { index: 0 },
            },
        ]);
        assert_eq!(fi.on_timed(e), Some(FaultKind::DropTimed));
        assert_eq!(fi.on_dispatch(e), Some(FaultKind::CorruptArg { index: 0 }));
    }

    #[test]
    fn random_plans_are_deterministic_in_seed() {
        let events = [EventId(0), EventId(1), EventId(2)];
        let a = FaultInjector::random(7, &events, 50, 10);
        let b = FaultInjector::random(7, &events, 50, 10);
        assert_eq!(a.dispatch_plan, b.dispatch_plan);
        assert_eq!(a.timed_plan, b.timed_plan);
        let c = FaultInjector::random(8, &events, 50, 10);
        assert!(a.dispatch_plan != c.dispatch_plan || a.timed_plan != c.timed_plan);
    }

    #[test]
    fn corruption_is_pure_and_changes_the_value() {
        for v in [
            Value::Unit,
            Value::Int(42),
            Value::Bool(false),
            Value::bytes(vec![1, 2, 3]),
            Value::bytes(Vec::<u8>::new()),
        ] {
            let a = corrupt_value(&v);
            let b = corrupt_value(&v);
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
            assert_ne!(format!("{a:?}"), format!("{v:?}"));
        }
    }

    #[test]
    fn export_restore_preserves_counters_and_pending_plan() {
        let e = EventId(1);
        let mut fi = FaultInjector::from_plan([
            FaultSpec {
                event: e,
                occurrence: 0,
                kind: FaultKind::TrapDispatch,
            },
            FaultSpec {
                event: e,
                occurrence: 2,
                kind: FaultKind::ExhaustFuel,
            },
            FaultSpec {
                event: e,
                occurrence: 1,
                kind: FaultKind::DropTimed,
            },
        ]);
        assert_eq!(fi.on_dispatch(e), Some(FaultKind::TrapDispatch));
        assert_eq!(fi.on_timed(e), None);
        let mut restored = FaultInjector::from_state(fi.export_state());
        // The restored injector neither re-fires occurrence 0 nor loses
        // count toward occurrence 2; both continue identically.
        for injector in [&mut fi, &mut restored] {
            assert_eq!(injector.on_dispatch(e), None, "occurrence 1 untargeted");
            assert_eq!(injector.on_dispatch(e), Some(FaultKind::ExhaustFuel));
            assert_eq!(injector.on_timed(e), Some(FaultKind::DropTimed));
            assert_eq!(injector.pending(), 0);
        }
    }

    #[test]
    fn handler_trap_specs_are_ignored_in_plans() {
        let fi = FaultInjector::from_plan([FaultSpec {
            event: EventId(0),
            occurrence: 0,
            kind: FaultKind::HandlerTrap,
        }]);
        assert_eq!(fi.pending(), 0);
    }
}
