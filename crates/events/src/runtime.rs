//! The event runtime: dispatch, scheduling, state, and instrumentation.

use crate::fault::{corrupt_value, FaultInjector, FaultKind, FaultPolicy, EXHAUST_FUEL_BUDGET};
use crate::marshal::{marshal, unmarshal};
use crate::registry::Registry;
use crate::sched::{QueuedTrace, Scheduler, SchedulerState, VirtualClock};
use crate::spec::{CompiledChain, SpecTable};
use crate::trace::{Trace, TraceConfig, TraceRecord};
use pdo_ir::interp::{call, Env, ExecError};
use pdo_ir::{
    CostCounter, EventId, FuncId, GlobalId, Module, NativeId, OpcodeProfile, RaiseMode, Value,
};
use pdo_obs::{
    DispatchSrc, MetricsSnapshot, ObsHub, ObsKind, RaiseKind, Span, SpanKind, TraceCtx, TraceStore,
};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A native (Rust) function bound into the runtime.
///
/// Natives carry the substrate's payload work (crypto, codecs, I/O
/// simulation); they may capture shared state via `Rc<RefCell<…>>` — the
/// runtime is single-threaded by design, mirroring the paper's
/// handler-atomicity guarantee.
pub type NativeFn = Box<dyn FnMut(&[Value]) -> Result<Value, String>>;

/// Runtime failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// Handler execution failed.
    Exec(ExecError),
    /// A raise referenced an event the module does not declare.
    UnknownEvent(EventId),
    /// A name-based lookup failed.
    UnknownName(String),
    /// Timed raise without a leading non-negative integer delay argument.
    BadTimedRaise,
    /// `run_until_idle` exceeded the configured step budget.
    StepLimit,
    /// Synchronous raise nesting exceeded the configured depth.
    SyncDepthExceeded,
    /// Marshaled arguments failed to unmarshal (indicates corruption).
    Marshal(String),
    /// An injected fault fired under [`FaultPolicy::Abort`].
    Fault {
        /// The event whose occurrence was targeted.
        event: EventId,
        /// The injected fault kind.
        kind: FaultKind,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Exec(e) => write!(f, "handler failed: {e}"),
            RuntimeError::UnknownEvent(e) => write!(f, "unknown event {e}"),
            RuntimeError::UnknownName(n) => write!(f, "unknown name `{n}`"),
            RuntimeError::BadTimedRaise => {
                write!(f, "timed raise requires a leading non-negative delay")
            }
            RuntimeError::StepLimit => write!(f, "event-loop step budget exhausted"),
            RuntimeError::SyncDepthExceeded => write!(f, "synchronous raise nesting too deep"),
            RuntimeError::Marshal(m) => write!(f, "marshaling failed: {m}"),
            RuntimeError::Fault { event, kind } => {
                write!(f, "injected fault {kind:?} on {event}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<ExecError> for RuntimeError {
    fn from(e: ExecError) -> Self {
        RuntimeError::Exec(e)
    }
}

/// Tunable limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Maximum synchronous raise nesting (default 64).
    pub max_sync_depth: u32,
    /// Maximum queue/timer dispatches per `run_until_idle` (default 10M).
    pub max_steps: u64,
    /// Optional instruction budget shared by all handler executions.
    pub fuel: Option<u64>,
    /// What a handler fault (injected or organic) does to the event loop
    /// (default [`FaultPolicy::Abort`], the pre-fault-harness behavior).
    pub fault_policy: FaultPolicy,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            max_sync_depth: 64,
            max_steps: 10_000_000,
            fuel: None,
            fault_policy: FaultPolicy::Abort,
        }
    }
}

/// Observable robustness counters, recorded per run.
///
/// These are part of the runtime's *observable behavior* for the chaos
/// equivalence property: an original and an optimized run of the same
/// workload under the same fault plan must agree on every field except the
/// specialization-dependent ones (`chains_removed`,
/// `despecialized_by_event`, `guard_misses_by_event`), which necessarily
/// differ between a run with chains installed and one without.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Faults recorded per event (injected and contained-organic).
    pub faults_by_event: BTreeMap<EventId, u64>,
    /// Injected faults that fired.
    pub injected_faults: u64,
    /// Organic handler traps contained by the policy.
    pub handler_traps: u64,
    /// Dispatches skipped (entirely or partially) by containment.
    pub skipped_dispatches: u64,
    /// Timed raises dropped by [`FaultKind::DropTimed`].
    pub dropped_timed: u64,
    /// Timed raises delayed by [`FaultKind::DelayTimed`].
    pub delayed_timed: u64,
    /// Compiled chains removed by [`FaultPolicy::Despecialize`].
    pub chains_removed: u64,
    /// Despecializations per event (chains actually removed).
    pub despecialized_by_event: BTreeMap<EventId, u64>,
    /// Guard misses per event (chain installed but stale), for
    /// quarantine-churn accounting in the optimizer's workflow loop.
    pub guard_misses_by_event: BTreeMap<EventId, u64>,
    /// Generic (registry-path) dispatches per event, recorded only when
    /// [`Runtime::set_dispatch_accounting`] is on. An adaptive daemon uses
    /// this as a tracing-free hotness signal while its tracer sleeps: fast
    /// path dispatches are by definition already specialized, so a rising
    /// count here means an unspecialized event went hot.
    pub generic_dispatches_by_event: BTreeMap<EventId, u64>,
    /// Nested synchronous raises per (parent event, raising handler, child
    /// event), recorded only when [`Runtime::set_dispatch_accounting`] is
    /// on. This is the tracing-free counterpart of the handler graph's
    /// nested-raise evidence: while an adaptive daemon's tracer sleeps,
    /// these counts are the only signal that a handler of one event
    /// synchronously raises another — the evidence subsumption needs. Like
    /// the other specialization-dependent fields, the counts differ
    /// between original and optimized runs (a subsumed raise becomes a
    /// direct call and never reaches the raise path), so they are *not*
    /// part of [`RuntimeStats::observable`].
    pub nested_sync_by_event: BTreeMap<(EventId, FuncId, EventId), u64>,
}

impl RuntimeStats {
    /// Recorded faults for one event.
    pub fn faults(&self, event: EventId) -> u64 {
        self.faults_by_event.get(&event).copied().unwrap_or(0)
    }

    /// Guard misses for one event.
    pub fn guard_misses(&self, event: EventId) -> u64 {
        self.guard_misses_by_event.get(&event).copied().unwrap_or(0)
    }

    /// Total recorded faults.
    pub fn total_faults(&self) -> u64 {
        self.faults_by_event.values().sum()
    }

    /// The fields every equivalent pair of runs must agree on, independent
    /// of whether chains are installed (see the struct docs).
    pub fn observable(&self) -> ObservableStats {
        ObservableStats {
            faults_by_event: self.faults_by_event.iter().map(|(e, n)| (*e, *n)).collect(),
            injected_faults: self.injected_faults,
            handler_traps: self.handler_traps,
            skipped_dispatches: self.skipped_dispatches,
            dropped_timed: self.dropped_timed,
            delayed_timed: self.delayed_timed,
        }
    }
}

/// The specialization-independent projection of [`RuntimeStats`]: the
/// fields an original and an optimized run of the same workload under the
/// same fault plan must agree on. This is the equality the chaos oracle
/// asserts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObservableStats {
    /// Faults recorded per event, in event order.
    pub faults_by_event: Vec<(EventId, u64)>,
    /// Injected faults that fired.
    pub injected_faults: u64,
    /// Organic handler traps contained by the policy.
    pub handler_traps: u64,
    /// Dispatches skipped (entirely or partially) by containment.
    pub skipped_dispatches: u64,
    /// Timed raises dropped by [`FaultKind::DropTimed`].
    pub dropped_timed: u64,
    /// Timed raises delayed by [`FaultKind::DelayTimed`].
    pub delayed_timed: u64,
}

/// Ids of the runtime-implemented ("reserved") native slots, resolved from
/// the module's native declarations by name.
#[derive(Debug, Clone, Copy, Default)]
struct ReservedNatives {
    binding_version: Option<NativeId>,
    bind: Option<NativeId>,
    unbind: Option<NativeId>,
    cancel_timer: Option<NativeId>,
    clock: Option<NativeId>,
    advance_clock: Option<NativeId>,
    fuel_boundary: Option<NativeId>,
}

impl ReservedNatives {
    fn resolve(module: &Module) -> Self {
        ReservedNatives {
            binding_version: module.native_by_name(Runtime::NATIVE_BINDING_VERSION),
            bind: module.native_by_name(Runtime::NATIVE_BIND),
            unbind: module.native_by_name(Runtime::NATIVE_UNBIND),
            cancel_timer: module.native_by_name(Runtime::NATIVE_CANCEL_TIMER),
            clock: module.native_by_name(Runtime::NATIVE_CLOCK),
            advance_clock: module.native_by_name(Runtime::NATIVE_ADVANCE_CLOCK),
            fuel_boundary: module.native_by_name(Runtime::NATIVE_FUEL_BOUNDARY),
        }
    }
}

/// A callback fired inside [`Runtime::run_until`] whenever the virtual clock
/// crosses an epoch boundary (see [`Runtime::set_epoch_hook`]). The second
/// argument is the boundary that was crossed, in virtual nanoseconds.
pub type EpochHook = Box<dyn FnMut(&mut Runtime, u64)>;

/// The single-threaded event runtime.
///
/// See the crate-level docs for the execution model. All handler execution,
/// scheduling, and state live here; the [`pdo_ir::interp::Env`]
/// implementation lets handler IR call back into the runtime for globals,
/// locks, natives, and nested raises.
pub struct Runtime {
    module: Arc<Module>,
    registry: Registry,
    globals: Vec<Value>,
    lock_words: Vec<AtomicU64>,
    natives: Vec<Option<NativeFn>>,
    reserved: ReservedNatives,
    spec: SpecTable,
    sched: Scheduler,
    clock: VirtualClock,
    trace: Trace,
    trace_config: Option<TraceConfig>,
    trace_window: Option<usize>,
    sync_depth: u32,
    dispatch_seq: u64,
    fuel: Option<u64>,
    boundary_fuel: Option<u64>,
    epoch_ns: Option<u64>,
    next_epoch_ns: u64,
    epoch_hook: Option<EpochHook>,
    config: RuntimeConfig,
    faults: Option<FaultInjector>,
    dispatch_accounting: bool,
    /// Open handler frames (event, handler) — maintained only while
    /// dispatch accounting is on, so nested synchronous raises can be
    /// attributed to the frame that issued them without tracing.
    frame_stack: Vec<(EventId, FuncId)>,
    /// Observability hub: `None` means metrics are off and every hot path
    /// pays exactly one `Option` check (see [`Runtime::enable_obs`]).
    obs: Option<ObsHub>,
    /// Causal trace store: `None` means tracing is detached and every
    /// instrumentation site pays one `Option` check; attached-but-
    /// disabled adds one `Cell` load (see [`Runtime::set_tracer`]).
    tracer: Option<TraceStore>,
    /// Ambient causal context: the span currently executing, which
    /// nested raises, guard misses, and despecializations parent to.
    cur_tctx: Option<TraceCtx>,
    /// The most recent top-level dispatch's span, retained so the epoch
    /// hook (adaptive engine) and the wire layer can parent audit and
    /// wire spans into the trace that drove them.
    last_tctx: Option<TraceCtx>,
    /// Trace context of a just-popped queue/timer entry, consumed by the
    /// next dispatch (set only inside [`Runtime::run_until`]).
    queued_tctx: Option<(QueuedTrace, DispatchSrc)>,
    /// Opcode/pair frequency profile fed by the interpreter. `None` until
    /// profiling is first enabled; retained (counts intact) while sampling
    /// is paused so duty-cycled windows accumulate into one profile.
    opcode_prof: Option<Box<OpcodeProfile>>,
    /// Whether the interpreter records into `opcode_prof` right now.
    opcode_sampling: bool,
    stats: RuntimeStats,
    /// Cost counters charged by dispatch and handler execution.
    pub cost: CostCounter,
}

impl fmt::Debug for Runtime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Runtime")
            .field("events", &self.module.events.len())
            .field("functions", &self.module.functions.len())
            .field("clock_ns", &self.clock.now_ns())
            .field("cost", &self.cost)
            .finish()
    }
}

impl Runtime {
    /// Reserved native name: `(event:int) -> int` current binding version.
    pub const NATIVE_BINDING_VERSION: &'static str = "__pdo_binding_version";
    /// Reserved native name: `(event:int, func:int, order:int) -> unit`.
    pub const NATIVE_BIND: &'static str = "__pdo_bind";
    /// Reserved native name: `(event:int, func:int) -> bool`.
    pub const NATIVE_UNBIND: &'static str = "__pdo_unbind";
    /// Reserved native name: `(event:int) -> int` timers cancelled.
    pub const NATIVE_CANCEL_TIMER: &'static str = "__pdo_cancel_timer";
    /// Reserved native name: `() -> int` virtual time (ns).
    pub const NATIVE_CLOCK: &'static str = "__pdo_clock";
    /// Reserved native name: `(ns:int) -> unit` advance virtual time.
    pub const NATIVE_ADVANCE_CLOCK: &'static str = "__pdo_advance_clock";
    /// Reserved native name: `() -> unit` charge one handler-boundary unit
    /// of the occurrence's [`crate::fault::FaultKind::ExhaustFuel`] budget
    /// (no-op when no budget is engaged). The optimizer emits a call at the
    /// start of every merged handler segment when
    /// `OptimizeOptions::fuel_boundaries` is set, so merged code trips the
    /// budget at the same pre-merge program points as generic dispatch.
    pub const NATIVE_FUEL_BOUNDARY: &'static str = "__pdo_fuel_boundary";

    /// Creates a runtime for `module` with default configuration. Globals
    /// are initialized from the module's declarations.
    pub fn new(module: impl Into<Arc<Module>>) -> Self {
        Self::with_config(module, RuntimeConfig::default())
    }

    /// Creates a runtime with explicit limits.
    pub fn with_config(module: impl Into<Arc<Module>>, config: RuntimeConfig) -> Self {
        let module = module.into();
        let reserved = ReservedNatives::resolve(&module);
        Runtime {
            globals: module.globals.iter().map(|g| g.init.clone()).collect(),
            lock_words: module.globals.iter().map(|_| AtomicU64::new(0)).collect(),
            natives: module.natives.iter().map(|_| None).collect(),
            registry: Registry::new(),
            spec: SpecTable::new(),
            sched: Scheduler::new(),
            clock: VirtualClock::new(),
            trace: Trace::new(),
            trace_config: None,
            trace_window: None,
            sync_depth: 0,
            dispatch_seq: 0,
            fuel: config.fuel,
            boundary_fuel: None,
            epoch_ns: None,
            next_epoch_ns: u64::MAX,
            epoch_hook: None,
            faults: None,
            dispatch_accounting: false,
            frame_stack: Vec::new(),
            obs: None,
            tracer: None,
            cur_tctx: None,
            last_tctx: None,
            queued_tctx: None,
            opcode_prof: None,
            opcode_sampling: false,
            stats: RuntimeStats::default(),
            cost: CostCounter::new(),
            reserved,
            config,
            module,
        }
    }

    /// The module this runtime executes.
    pub fn module(&self) -> &Module {
        &self.module
    }

    /// The limits this runtime was created with (needed to rebuild an
    /// equivalent runtime elsewhere, e.g. when a server migrates a session
    /// between shards).
    pub fn config(&self) -> RuntimeConfig {
        self.config
    }

    /// A clone of the module handle (for constructing optimized variants).
    pub fn module_arc(&self) -> Arc<Module> {
        Arc::clone(&self.module)
    }

    /// Hot-swaps the executing module for an *extension* of the current one
    /// (same function/global/event ids for existing entities, new ones
    /// appended — exactly what the optimizer produces). Existing bindings,
    /// globals, natives, queues, and the clock are preserved; native slots
    /// and globals added by the new module get fresh empty/initial slots,
    /// and reserved natives are re-resolved by name.
    ///
    /// Remove any installed chains that reference functions only present in
    /// the *old* extension before swapping; the online adaptation loop does
    /// this before installing the chains of the new optimization.
    pub fn replace_module(&mut self, module: impl Into<Arc<Module>>) {
        let module = module.into();
        self.reserved = ReservedNatives::resolve(&module);
        if self.natives.len() < module.natives.len() {
            self.natives.resize_with(module.natives.len(), || None);
        }
        while self.globals.len() < module.globals.len() {
            let idx = self.globals.len();
            self.globals.push(module.globals[idx].init.clone());
            self.lock_words.push(AtomicU64::new(0));
        }
        self.module = module;
    }

    /// Installs an epoch hook: inside [`Runtime::run_until`] (and on
    /// [`Runtime::advance_clock`]), whenever the virtual clock crosses a
    /// multiple of `epoch_ns`, `hook` runs *between* dispatches with full
    /// mutable access to the runtime. This is how background work — trace
    /// sampling, self-healing, re-profiling, chain hot-swaps — is driven
    /// without any caller-side loop. Crossing several boundaries in one
    /// step fires the hook once, with the first boundary crossed.
    ///
    /// The hook slot is emptied while the hook runs, so a hook raising
    /// events or advancing the clock cannot re-enter itself.
    pub fn set_epoch_hook(&mut self, epoch_ns: u64, hook: impl FnMut(&mut Runtime, u64) + 'static) {
        let epoch = epoch_ns.max(1);
        self.epoch_ns = Some(epoch);
        self.next_epoch_ns = (self.clock.now_ns() / epoch + 1).saturating_mul(epoch);
        self.epoch_hook = Some(Box::new(hook));
    }

    /// Removes the epoch hook, returning whether one was installed.
    pub fn clear_epoch_hook(&mut self) -> bool {
        self.epoch_ns = None;
        self.next_epoch_ns = u64::MAX;
        self.epoch_hook.take().is_some()
    }

    /// The configured epoch length, if an epoch hook is installed.
    pub fn epoch_ns(&self) -> Option<u64> {
        self.epoch_ns
    }

    /// Fires the epoch hook if the clock has crossed the next boundary.
    /// Returns true when the hook ran (the hook may have hot-swapped the
    /// module, so cached module handles must be refreshed).
    fn poll_epoch(&mut self) -> bool {
        let Some(epoch) = self.epoch_ns else {
            return false;
        };
        if self.clock.now_ns() < self.next_epoch_ns || self.epoch_hook.is_none() {
            return false;
        }
        let boundary = self.next_epoch_ns;
        self.next_epoch_ns = (self.clock.now_ns() / epoch + 1).saturating_mul(epoch);
        match self.epoch_hook.take() {
            Some(mut hook) => {
                hook(self, boundary);
                // Keep the hook unless it replaced or cleared itself.
                if self.epoch_hook.is_none() && self.epoch_ns.is_some() {
                    self.epoch_hook = Some(hook);
                }
                true
            }
            None => false,
        }
    }

    /// Caps the retained trace at `max_records`, dropping the oldest
    /// records once the window overflows (`None` = unbounded, the default).
    /// Long-running sessions sample their trace in windows on epoch
    /// boundaries; the cap bounds memory if an epoch runs long.
    pub fn set_trace_window(&mut self, max_records: Option<usize>) {
        self.trace_window = max_records;
        self.enforce_trace_window();
    }

    /// Appends a trace record, enforcing the window cap.
    fn trace_push(&mut self, record: TraceRecord) {
        self.trace.records.push(record);
        self.enforce_trace_window();
    }

    fn enforce_trace_window(&mut self) {
        if let Some(max) = self.trace_window {
            let len = self.trace.records.len();
            if len > max {
                // Drop the oldest quarter-window in one pass so the cost
                // amortizes to O(1) per record.
                let drop = (len - max).max(max / 4).min(len);
                self.trace.records.drain(..drop);
            }
        }
    }

    /// The binding registry (read-only; mutate through [`Runtime::bind`]).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Binds `handler` to `event` with an order key.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownEvent`] if the module does not declare
    /// `event`, and [`RuntimeError::UnknownName`] if `handler` is out of
    /// range.
    pub fn bind(
        &mut self,
        event: EventId,
        handler: FuncId,
        order: i32,
    ) -> Result<(), RuntimeError> {
        self.check_event(event)?;
        if handler.index() >= self.module.functions.len() {
            return Err(RuntimeError::UnknownName(format!("{handler}")));
        }
        self.registry.bind(event, handler, order);
        Ok(())
    }

    /// Removes the first binding of `handler` to `event`.
    pub fn unbind(&mut self, event: EventId, handler: FuncId) -> bool {
        self.registry.unbind(event, handler)
    }

    /// Binds a native implementation into slot `native`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of range for the module.
    pub fn bind_native(
        &mut self,
        native: NativeId,
        f: impl FnMut(&[Value]) -> Result<Value, String> + 'static,
    ) {
        self.natives[native.index()] = Some(Box::new(f));
    }

    /// Binds a native implementation by declared name.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownName`] when the module declares no
    /// native slot with that name.
    pub fn bind_native_by_name(
        &mut self,
        name: &str,
        f: impl FnMut(&[Value]) -> Result<Value, String> + 'static,
    ) -> Result<(), RuntimeError> {
        let id = self
            .module
            .native_by_name(name)
            .ok_or_else(|| RuntimeError::UnknownName(name.to_string()))?;
        self.bind_native(id, f);
        Ok(())
    }

    /// Installs a compiled super-handler chain.
    pub fn install_chain(&mut self, chain: CompiledChain) {
        self.spec.install(chain);
    }

    /// Removes the chain for `event`, if any.
    pub fn remove_chain(&mut self, event: EventId) -> Option<CompiledChain> {
        self.spec.remove(event)
    }

    /// The installed specialization table.
    pub fn spec(&self) -> &SpecTable {
        &self.spec
    }

    /// Enables tracing with the given configuration (clears prior records).
    pub fn set_trace_config(&mut self, config: TraceConfig) {
        self.trace_config = Some(config);
        self.trace = Trace::new();
    }

    /// Disables tracing.
    pub fn disable_tracing(&mut self) {
        self.trace_config = None;
    }

    /// Enables (or disables) per-event generic-dispatch accounting in
    /// [`RuntimeStats::generic_dispatches_by_event`]. Off by default: the
    /// counter costs one map update per *generic* dispatch, which only an
    /// adaptive daemon using it as a sleep-mode hotness signal should pay.
    pub fn set_dispatch_accounting(&mut self, on: bool) {
        self.dispatch_accounting = on;
    }

    /// Attaches an observability hub (see `pdo-obs`): dispatches start
    /// feeding per-event fast/slow latency histograms and the flight
    /// recorder, and raises, guard misses, and faults are recorded. The
    /// same hub may be shared with an adaptive engine or a test oracle —
    /// it is a cheap `Rc` handle. When no hub is attached (the default)
    /// every instrumentation site is a single `Option` check.
    pub fn enable_obs(&mut self, hub: ObsHub) {
        self.obs = Some(hub);
    }

    /// Attaches a fresh default-capacity hub and returns a handle to it.
    pub fn enable_observability(&mut self) -> ObsHub {
        let hub = ObsHub::default();
        self.obs = Some(hub.clone());
        hub
    }

    /// The attached observability hub, if any.
    pub fn obs(&self) -> Option<&ObsHub> {
        self.obs.as_ref()
    }

    /// Detaches the observability hub (instrumentation back to one
    /// `Option` check, histograms survive in the returned handle).
    pub fn take_obs(&mut self) -> Option<ObsHub> {
        self.obs.take()
    }

    /// Attaches a causal trace store (see `pdo-obs::trace`, DESIGN.md
    /// §16): every raise, dispatch, timer fire, guard miss, and
    /// despecialization records a span with a parent edge. A raise with
    /// no ambient or caller-supplied context mints a fresh [`TraceId`] —
    /// it is an external stimulus and becomes the trace root. The same
    /// store may be shared with the adaptive engine and the server shard
    /// that owns this runtime; it is a cheap `Rc` handle.
    pub fn set_tracer(&mut self, store: TraceStore) {
        self.tracer = Some(store);
    }

    /// Attaches a fresh default-capacity trace store and returns a
    /// handle to it.
    pub fn enable_tracing(&mut self) -> TraceStore {
        let store = TraceStore::default();
        self.tracer = Some(store.clone());
        store
    }

    /// The attached causal trace store, if any.
    pub fn tracer(&self) -> Option<&TraceStore> {
        self.tracer.as_ref()
    }

    /// Detaches the causal trace store (spans survive in the returned
    /// handle).
    pub fn take_tracer(&mut self) -> Option<TraceStore> {
        self.tracer.take()
    }

    /// Turns interpreter opcode/pair profiling on or off. Off by default.
    /// Turning it off pauses sampling without discarding accumulated
    /// counts, so the adaptive engine can duty-cycle profiling alongside
    /// its trace windows and still aggregate one profile per reprofile
    /// interval.
    pub fn set_opcode_profiling(&mut self, on: bool) {
        if on && self.opcode_prof.is_none() {
            self.opcode_prof = Some(Box::new(OpcodeProfile::new()));
        }
        self.opcode_sampling = on;
    }

    /// Whether the interpreter is currently recording opcode frequencies.
    pub fn opcode_profiling(&self) -> bool {
        self.opcode_sampling
    }

    /// The accumulated opcode profile, if profiling was ever enabled.
    pub fn opcode_profile_data(&self) -> Option<&OpcodeProfile> {
        self.opcode_prof.as_deref()
    }

    /// Takes the accumulated opcode profile, leaving a zeroed one behind
    /// (sampling state unchanged). Returns `None` when profiling was never
    /// enabled.
    pub fn take_opcode_profile(&mut self) -> Option<OpcodeProfile> {
        self.opcode_prof.as_deref_mut().map(|p| {
            let taken = p.clone();
            p.reset();
            taken
        })
    }

    /// The most recent top-level dispatch's trace context — the anchor
    /// the adaptive engine parents its chain-audit spans to, and the
    /// wire layer its segment spans, so cross-layer actions join the
    /// trace that causally drove them.
    pub fn last_trace_ctx(&self) -> Option<TraceCtx> {
        self.last_tctx
    }

    /// Exports the runtime's counters and (when a hub is attached) its
    /// per-event dispatch-latency histograms into `snap`, with `extra`
    /// labels (e.g. `shard`/`session`) on every series.
    pub fn export_metrics(&self, snap: &mut MetricsSnapshot, extra: &[(&str, &str)]) {
        snap.counter(
            "pdo_dispatch_fastpath_total",
            "Dispatches served by a guarded compiled chain",
            extra,
            self.cost.fastpath_hits,
        );
        snap.counter(
            "pdo_dispatch_guard_miss_total",
            "Fast-path attempts that fell back to generic dispatch on stale guards",
            extra,
            self.cost.fastpath_misses,
        );
        snap.counter(
            "pdo_dispatch_generic_total",
            "Dispatches served by the generic registry walk",
            extra,
            self.cost.registry_lookups,
        );
        snap.counter(
            "pdo_faults_injected_total",
            "Injected faults that fired",
            extra,
            self.stats.injected_faults,
        );
        snap.counter(
            "pdo_faults_handler_trap_total",
            "Organic handler traps contained by the fault policy",
            extra,
            self.stats.handler_traps,
        );
        snap.counter(
            "pdo_dispatch_skipped_total",
            "Dispatches skipped (entirely or partially) by containment",
            extra,
            self.stats.skipped_dispatches,
        );
        snap.counter(
            "pdo_timed_dropped_total",
            "Timed raises dropped by fault injection",
            extra,
            self.stats.dropped_timed,
        );
        snap.counter(
            "pdo_timed_delayed_total",
            "Timed raises delayed by fault injection",
            extra,
            self.stats.delayed_timed,
        );
        for (event, n) in &self.stats.faults_by_event {
            let ev = event.0.to_string();
            let mut labels: Vec<(&str, &str)> = vec![("event", &ev)];
            labels.extend_from_slice(extra);
            snap.counter(
                "pdo_faults_by_event_total",
                "Faults recorded per event (injected and contained-organic)",
                &labels,
                *n,
            );
        }
        if let Some(prof) = self.opcode_prof.as_deref() {
            for (op, n) in prof.counts() {
                let mut labels: Vec<(&str, &str)> = vec![("op", op.name())];
                labels.extend_from_slice(extra);
                snap.counter(
                    "pdo_interp_opcode_total",
                    "Interpreter instructions executed per opcode (sampled windows)",
                    &labels,
                    n,
                );
            }
            snap.counter(
                "pdo_interp_fused_total",
                "Interpreter superinstructions executed (sampled windows)",
                extra,
                prof.fused_total(),
            );
        }
        if let Some(obs) = &self.obs {
            obs.export_dispatch(snap, extra);
        }
    }

    /// Installs a fault injector (replacing any previous one; occurrence
    /// counters start fresh).
    pub fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    /// Removes the fault injector, returning it with its counters.
    pub fn take_fault_injector(&mut self) -> Option<FaultInjector> {
        self.faults.take()
    }

    /// Changes the fault-containment policy mid-run.
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.config.fault_policy = policy;
    }

    /// Robustness counters recorded so far.
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// Takes the robustness counters, leaving zeroed ones.
    pub fn take_stats(&mut self) -> RuntimeStats {
        std::mem::take(&mut self.stats)
    }

    /// Takes the recorded trace, leaving an empty one.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Current value of a global cell.
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    pub fn global(&self, global: GlobalId) -> &Value {
        &self.globals[global.index()]
    }

    /// Overwrites a global cell (test/bench setup).
    ///
    /// # Panics
    ///
    /// Panics if `global` is out of range.
    pub fn set_global(&mut self, global: GlobalId, value: Value) {
        self.globals[global.index()] = value;
    }

    /// Current virtual time in nanoseconds.
    pub fn clock_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Advances the virtual clock by `delta_ns` (timers are *not* fired;
    /// use [`Runtime::run_until_idle`] or [`Runtime::run_until`]). Epoch
    /// hooks installed with [`Runtime::set_epoch_hook`] *do* fire if the
    /// advance crosses an epoch boundary, so idle sessions still adapt.
    pub fn advance_clock(&mut self, delta_ns: u64) {
        self.clock.advance_by(delta_ns);
        self.poll_epoch();
    }

    /// Pending asynchronous + timed event count.
    pub fn pending(&self) -> usize {
        self.sched.queued_len() + self.sched.timer_len()
    }

    /// Queued (async FIFO) event count.
    pub fn queued_len(&self) -> usize {
        self.sched.queued_len()
    }

    /// Scheduled (timed) event count.
    pub fn timer_len(&self) -> usize {
        self.sched.timer_len()
    }

    /// Exports the scheduler's complete state (FIFO, timers in pop order,
    /// sequence counter) for snapshotting.
    pub fn export_sched(&self) -> SchedulerState {
        self.sched.export_state()
    }

    /// Restores scheduler state exported by [`Runtime::export_sched`].
    /// Timer deadlines are absolute virtual times; restore the clock (via
    /// [`Runtime::advance_clock`]) to the snapshotted time as well.
    pub fn restore_sched(&mut self, state: SchedulerState) {
        self.sched.restore_state(state);
    }

    /// The installed fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.faults.as_ref()
    }

    /// Resets cost counters.
    pub fn reset_cost(&mut self) {
        self.cost.reset();
    }

    fn check_event(&self, event: EventId) -> Result<(), RuntimeError> {
        if event.index() < self.module.events.len() {
            Ok(())
        } else {
            Err(RuntimeError::UnknownEvent(event))
        }
    }

    /// Raises `event` with `mode`. For [`RaiseMode::Timed`] the first
    /// argument must be a non-negative integer delay in virtual ns; the
    /// remaining arguments are the handler arguments.
    ///
    /// # Errors
    ///
    /// Fails on unknown events, malformed timed raises, or handler faults.
    pub fn raise(
        &mut self,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
    ) -> Result<(), RuntimeError> {
        self.raise_traced(event, mode, args, None)
    }

    /// As [`Runtime::raise`], but joining the caller-supplied causal
    /// trace context instead of minting a fresh trace — how the ingress
    /// front door extends its root span into the runtime. Ignored when
    /// no trace store is attached.
    ///
    /// # Errors
    ///
    /// As [`Runtime::raise`].
    pub fn raise_traced(
        &mut self,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
        ctx: Option<TraceCtx>,
    ) -> Result<(), RuntimeError> {
        let module = self.module_arc();
        self.raise_inner(&module, event, mode, args, ctx)
    }

    /// Raises an event looked up by name.
    ///
    /// # Errors
    ///
    /// As [`Runtime::raise`], plus [`RuntimeError::UnknownName`].
    pub fn raise_by_name(
        &mut self,
        name: &str,
        mode: RaiseMode,
        args: &[Value],
    ) -> Result<(), RuntimeError> {
        let event = self
            .module
            .event_by_name(name)
            .ok_or_else(|| RuntimeError::UnknownName(name.to_string()))?;
        self.raise(event, mode, args)
    }

    fn raise_inner(
        &mut self,
        module: &Module,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
        ctx: Option<TraceCtx>,
    ) -> Result<(), RuntimeError> {
        self.check_event(event)?;
        if self.trace_config.as_ref().is_some_and(|c| c.events) {
            self.trace_push(TraceRecord::Raise {
                event,
                mode,
                depth: self.sync_depth,
                at: self.clock.now_ns(),
            });
        }
        if let Some(obs) = &self.obs {
            if obs.trace_dispatch() {
                let kind = match mode {
                    RaiseMode::Sync => RaiseKind::Sync,
                    RaiseMode::Async => RaiseKind::Async,
                    RaiseMode::Timed => RaiseKind::Timed,
                };
                obs.record(
                    self.clock.now_ns(),
                    ObsKind::Raise {
                        event: event.0,
                        mode: kind,
                    },
                );
            }
        }
        // Causal tracing: a queued raise records an instant `Raise`
        // span — the enqueue half of the queue/timer happens-before
        // edge; the popped dispatch parents to it and charges the wait
        // to `queued_ns`. A *sync* raise IS its dispatch, so it records
        // no span of its own: the dispatch span represents both,
        // keeping the specialization-critical hot path at one ring
        // write per dispatch. Either way an explicit `ctx` (wire
        // caller) wins, then the ambient span; with neither, the raise
        // is an external stimulus and the span roots a fresh trace.
        let traise: Option<TraceCtx> = match &self.tracer {
            Some(t) if t.enabled() => match mode {
                RaiseMode::Sync => ctx.or(self.cur_tctx),
                RaiseMode::Async | RaiseMode::Timed => {
                    let now = self.clock.now_ns();
                    let src = if matches!(mode, RaiseMode::Async) {
                        DispatchSrc::Queue
                    } else {
                        DispatchSrc::Timer
                    };
                    t.record_under(
                        ctx.or(self.cur_tctx),
                        now,
                        now,
                        SpanKind::Raise {
                            event: event.0,
                            mode: src,
                        },
                    )
                }
            },
            _ => None,
        };
        match mode {
            RaiseMode::Sync => {
                if self.sync_depth >= self.config.max_sync_depth {
                    return Err(RuntimeError::SyncDepthExceeded);
                }
                // Tracing-free nested-raise accounting: a synchronous raise
                // issued from inside a handler frame is exactly the
                // subsumption evidence the optimizer wants, and while a
                // duty-cycled tracer sleeps this counter is the only place
                // it is recorded (mirroring `generic_dispatches_by_event`).
                if self.dispatch_accounting {
                    if let Some(&(parent, handler)) = self.frame_stack.last() {
                        *self
                            .stats
                            .nested_sync_by_event
                            .entry((parent, handler, event))
                            .or_insert(0) += 1;
                    }
                }
                self.sync_depth += 1;
                let saved_tctx = self.cur_tctx;
                if traise.is_some() {
                    // The synchronous dispatch (and everything nested in
                    // it) parents to the caller's context — the wire
                    // span for ingress-originated raises.
                    self.cur_tctx = traise;
                }
                let r = self.dispatch_now(module, event, args);
                if traise.is_some() {
                    self.cur_tctx = saved_tctx;
                }
                self.sync_depth -= 1;
                r
            }
            RaiseMode::Async => {
                self.sched.push_async_traced(
                    event,
                    args.to_vec(),
                    traise.map(|c| QueuedTrace {
                        ctx: c,
                        enqueued_ns: self.clock.now_ns(),
                    }),
                );
                Ok(())
            }
            RaiseMode::Timed => {
                let delay = args
                    .first()
                    .and_then(Value::as_int)
                    .filter(|d| *d >= 0)
                    .ok_or(RuntimeError::BadTimedRaise)?;
                let mut delay = delay as u64;
                // Timed raises are never subsumed by the optimizer, so the
                // injector counts every one of them (unlike dispatches,
                // which count only top-level occurrences).
                match self.faults.as_mut().and_then(|f| f.on_timed(event)) {
                    Some(kind @ FaultKind::DropTimed) => {
                        self.note_fault(event, kind);
                        self.stats.dropped_timed += 1;
                        return Ok(());
                    }
                    Some(kind @ FaultKind::DelayTimed { extra_ns }) => {
                        self.note_fault(event, kind);
                        self.stats.delayed_timed += 1;
                        delay = delay.saturating_add(extra_ns);
                    }
                    _ => {}
                }
                self.sched.push_timed_traced(
                    self.clock.now_ns(),
                    delay,
                    event,
                    args[1..].to_vec(),
                    traise.map(|c| QueuedTrace {
                        ctx: c,
                        enqueued_ns: self.clock.now_ns(),
                    }),
                );
                Ok(())
            }
        }
    }

    /// Records one fault occurrence in stats and (when event tracing is on)
    /// in the trace.
    fn note_fault(&mut self, event: EventId, kind: FaultKind) {
        *self.stats.faults_by_event.entry(event).or_insert(0) += 1;
        if kind == FaultKind::HandlerTrap {
            self.stats.handler_traps += 1;
        } else {
            self.stats.injected_faults += 1;
        }
        if let Some(obs) = &self.obs {
            obs.record(
                self.clock.now_ns(),
                ObsKind::Fault {
                    event: event.0,
                    kind: kind.label(),
                },
            );
        }
        if self.trace_config.as_ref().is_some_and(|c| c.events) {
            self.trace_push(TraceRecord::Fault {
                event,
                kind,
                at: self.clock.now_ns(),
            });
        }
    }

    /// Removes `event`'s compiled chain as a containment action, updating
    /// despecialization stats. No-op when no chain is installed, which is
    /// what makes [`FaultPolicy::Despecialize`] equivalence-safe: the
    /// original (chain-less) run takes the same generic path afterwards.
    fn despecialize(&mut self, event: EventId) {
        if self.spec.remove(event).is_some() {
            self.stats.chains_removed += 1;
            *self.stats.despecialized_by_event.entry(event).or_insert(0) += 1;
            if let Some(t) = &self.tracer {
                let now = self.clock.now_ns();
                t.record_under(
                    self.cur_tctx,
                    now,
                    now,
                    SpanKind::Despecialize { event: event.0 },
                );
            }
        }
    }

    /// Records an organic handler trap (unless it is the fuel exhaustion we
    /// injected ourselves, which was already noted at injection time).
    fn note_trap(&mut self, event: EventId, err: &ExecError, injected_fuel: bool) {
        if injected_fuel && matches!(err, ExecError::OutOfFuel) {
            return;
        }
        self.note_fault(event, FaultKind::HandlerTrap);
    }

    /// Dispatches the handlers of `event` immediately: guarded fast path
    /// when a chain is installed and valid, generic registry walk otherwise.
    ///
    /// Fault injection happens here, but only for *top-level* occurrences
    /// (workload raises and queue/timer pops, `sync_depth <= 1`): nested
    /// synchronous dispatch counts differ between original and optimized
    /// runs because of subsumption, so keying faults on them would make the
    /// chaos equivalence property ill-defined (see `crate::fault`).
    fn dispatch_now(
        &mut self,
        module: &Module,
        event: EventId,
        args: &[Value],
    ) -> Result<(), RuntimeError> {
        let injected = if self.sync_depth <= 1 {
            self.faults.as_mut().and_then(|f| f.on_dispatch(event))
        } else {
            None
        };
        let Some(kind) = injected else {
            return self.dispatch_handlers(module, event, args, false, false);
        };
        self.note_fault(event, kind);
        match kind {
            FaultKind::TrapDispatch => match self.config.fault_policy {
                FaultPolicy::Abort => Err(RuntimeError::Fault { event, kind }),
                FaultPolicy::SkipEvent => {
                    self.stats.skipped_dispatches += 1;
                    Ok(())
                }
                FaultPolicy::Despecialize => {
                    // No handler effect has happened yet, so removing the
                    // chain and dispatching this occurrence generically is
                    // observably identical in original and optimized runs.
                    self.despecialize(event);
                    self.dispatch_handlers(module, event, args, true, false)
                }
            },
            FaultKind::CorruptArg { index } if !args.is_empty() => {
                let mut owned = args.to_vec();
                let i = usize::from(index) % owned.len();
                owned[i] = corrupt_value(&owned[i]);
                self.dispatch_handlers(module, event, &owned, false, false)
            }
            FaultKind::CorruptArg { .. } => {
                self.dispatch_handlers(module, event, args, false, false)
            }
            FaultKind::ExhaustFuel => {
                // Meter *pre-merge handler boundaries* for this occurrence:
                // every handler the original program would invoke (directly
                // or through nested synchronous raises) charges one unit
                // before its body runs, and super-handlers compiled with
                // `__pdo_fuel_boundary` markers charge at the same program
                // points — so exhaustion trips identically in original and
                // optimized runs (see `crate::fault`).
                let saved = self.boundary_fuel.take();
                self.boundary_fuel = Some(EXHAUST_FUEL_BUDGET);
                let r = self.dispatch_handlers(module, event, args, false, true);
                self.boundary_fuel = saved;
                r
            }
            // Timed kinds never reach the dispatch plan (see
            // `FaultInjector::from_plan`) and HandlerTrap is never planned.
            FaultKind::DropTimed | FaultKind::DelayTimed { .. } | FaultKind::HandlerTrap => {
                self.dispatch_handlers(module, event, args, false, false)
            }
        }
    }

    /// Observability wrapper around the dispatch body: with no hub
    /// attached this is one `Option` check and a tail call; with a hub it
    /// brackets the dispatch with virtual-clock reads and feeds the
    /// per-event fast/slow latency histogram and (optionally) the flight
    /// recorder.
    fn dispatch_handlers(
        &mut self,
        module: &Module,
        event: EventId,
        args: &[Value],
        force_generic: bool,
        injected_fuel: bool,
    ) -> Result<(), RuntimeError> {
        // Causal tracing bracket: with no store this is one `Option`
        // check (plus the `queued_tctx` take, a plain field move). The
        // span's parent is the popped queue/timer entry's raise (with
        // its queue wait), or the ambient span for sync dispatch.
        let queued = self.queued_tctx.take();
        let tspan = match &self.tracer {
            Some(t) if t.enabled() => {
                let t0 = self.clock.now_ns();
                let (src, parent_ctx, queued_ns) = match queued {
                    Some((qt, src)) => (src, Some(qt.ctx), t0.saturating_sub(qt.enqueued_ns)),
                    None => (DispatchSrc::Sync, self.cur_tctx, 0),
                };
                let (trace, parent, id) = t.begin(parent_ctx);
                Some((trace, parent, id, t0, queued_ns, src))
            }
            _ => None,
        };
        let saved_tctx = self.cur_tctx;
        if let Some((trace, _, id, ..)) = tspan {
            self.cur_tctx = Some(TraceCtx { trace, parent: id });
        }
        let r = self.dispatch_handlers_obs(module, event, args, force_generic, injected_fuel);
        if let Some((trace, parent, id, t0, queued_ns, src)) = tspan {
            self.cur_tctx = saved_tctx;
            let ctx = TraceCtx { trace, parent: id };
            self.last_tctx = Some(ctx);
            // An aborting dispatch has no lane; attribute it slow, like
            // the metrics path does.
            let fast = *r.as_ref().unwrap_or(&false);
            let end = self.clock.now_ns();
            if let Some(t) = &self.tracer {
                t.record(Span {
                    id,
                    trace,
                    parent,
                    start_ns: t0,
                    end_ns: end,
                    kind: SpanKind::Dispatch {
                        event: event.0,
                        fast,
                        src,
                        queued_ns,
                    },
                });
            }
        }
        r.map(|_fast| ())
    }

    /// Observability (metrics) wrapper — see [`Runtime::dispatch_handlers`]
    /// for the tracing layer above it. Returns the lane like the body.
    fn dispatch_handlers_obs(
        &mut self,
        module: &Module,
        event: EventId,
        args: &[Value],
        force_generic: bool,
        injected_fuel: bool,
    ) -> Result<bool, RuntimeError> {
        let Some(obs) = self.obs.clone() else {
            return self.dispatch_handlers_inner(module, event, args, force_generic, injected_fuel);
        };
        let t0 = self.clock.now_ns();
        if obs.trace_dispatch() {
            // Only the (debug-oriented) per-dispatch trace needs the lane
            // up front; it replicates the body's fast-path condition, which
            // is read-only and safe to evaluate twice.
            let fast = !force_generic
                && self.spec.get(event).is_some_and(|chain| {
                    usize::from(chain.params) == args.len() && chain.guards_hold(&self.registry)
                });
            obs.record(
                t0,
                ObsKind::DispatchBegin {
                    event: event.0,
                    fast,
                },
            );
        }
        let r = self.dispatch_handlers_inner(module, event, args, force_generic, injected_fuel);
        let t1 = self.clock.now_ns();
        // The body reports which lane it entered, so the metrics-on hot
        // path pays no second guard evaluation. An aborting dispatch has
        // no lane to attribute; count it as slow.
        let fast = *r.as_ref().unwrap_or(&false);
        obs.dispatch_end(t1, event.0, fast, t1 - t0);
        r
    }

    /// The actual fast-path / generic dispatch, with per-call trap
    /// containment according to the configured [`FaultPolicy`]. Returns
    /// `true` when the dispatch entered a compiled chain (even if it then
    /// trapped and was contained), `false` for the generic path — the lane
    /// the observability wrapper attributes its latency sample to.
    fn dispatch_handlers_inner(
        &mut self,
        module: &Module,
        event: EventId,
        args: &[Value],
        force_generic: bool,
        injected_fuel: bool,
    ) -> Result<bool, RuntimeError> {
        // Fast path: compiled chain with matching guards.
        if !force_generic {
            if let Some(chain) = self.spec.get(event) {
                if usize::from(chain.params) == args.len() && chain.guards_hold(&self.registry) {
                    let func = chain.func;
                    self.cost.fastpath_hits += 1;
                    self.cost.direct_handler_calls += 1;
                    let trace_handlers = self
                        .trace_config
                        .as_ref()
                        .is_some_and(|c| c.handlers.traces(event));
                    let dispatch = self.dispatch_seq;
                    self.dispatch_seq += 1;
                    if trace_handlers {
                        self.trace_push(TraceRecord::HandlerEnter {
                            event,
                            handler: func,
                            dispatch,
                            at: self.clock.now_ns(),
                        });
                    }
                    let track_frames = self.dispatch_accounting;
                    if track_frames {
                        self.frame_stack.push((event, func));
                    }
                    let result = call(module, self, func, args);
                    if track_frames {
                        self.frame_stack.pop();
                    }
                    if trace_handlers {
                        // Pushed even on a trap so handler-profile stacks
                        // stay balanced under containment.
                        self.trace_push(TraceRecord::HandlerExit {
                            event,
                            handler: func,
                            dispatch,
                            at: self.clock.now_ns(),
                        });
                    }
                    return match result {
                        Ok(_) => Ok(true),
                        Err(err) => {
                            if self.boundary_fuel.is_some()
                                && !injected_fuel
                                && matches!(err, ExecError::OutOfFuel)
                            {
                                // Boundary-fuel exhaustion in a *nested*
                                // dispatch must propagate so the enclosing
                                // occurrence aborts at the same program
                                // point a merged chain would.
                                return Err(RuntimeError::Exec(err));
                            }
                            match self.config.fault_policy {
                                FaultPolicy::Abort => Err(RuntimeError::Exec(err)),
                                FaultPolicy::SkipEvent => {
                                    self.note_trap(event, &err, injected_fuel);
                                    self.stats.skipped_dispatches += 1;
                                    Ok(true)
                                }
                                FaultPolicy::Despecialize => {
                                    self.note_trap(event, &err, injected_fuel);
                                    self.stats.skipped_dispatches += 1;
                                    self.despecialize(event);
                                    if injected_fuel {
                                        // Injected exhaustion stops the
                                        // occurrence at a well-defined
                                        // boundary; re-dispatching would
                                        // re-run the completed prefix.
                                        return Ok(true);
                                    }
                                    // Best-effort generic re-dispatch: the chain
                                    // may have applied partial effects, so this
                                    // is NOT equivalence-preserving — it keeps
                                    // the occurrence from being lost entirely.
                                    self.dispatch_handlers(module, event, args, true, false)
                                        .map(|()| true)
                                }
                            }
                        }
                    };
                }
                self.cost.fastpath_misses += 1;
                *self.stats.guard_misses_by_event.entry(event).or_insert(0) += 1;
                if let Some(obs) = &self.obs {
                    obs.record(self.clock.now_ns(), ObsKind::GuardMiss { event: event.0 });
                }
                if let Some(t) = &self.tracer {
                    let now = self.clock.now_ns();
                    t.record_under(
                        self.cur_tctx,
                        now,
                        now,
                        SpanKind::GuardMiss { event: event.0 },
                    );
                }
            }
        }

        // Generic path: registry lookup, snapshot, marshal per handler,
        // indirect invocation.
        self.cost.registry_lookups += 1;
        if self.dispatch_accounting {
            *self
                .stats
                .generic_dispatches_by_event
                .entry(event)
                .or_insert(0) += 1;
        }
        let dispatch = self.dispatch_seq;
        self.dispatch_seq += 1;
        let bindings = self.registry.snapshot(event);
        for binding in bindings {
            // Boundary-fuel metering: one unit per pre-merge handler
            // invocation, charged *before* the body runs — the same points
            // where super-handlers compiled with `fuel_boundaries` place
            // their `__pdo_fuel_boundary` markers.
            if let Some(n) = self.boundary_fuel {
                if n == 0 {
                    let err = ExecError::OutOfFuel;
                    if !injected_fuel {
                        // Nested dispatch: propagate to the occurrence's
                        // top-level frame, which owns containment.
                        return Err(RuntimeError::Exec(err));
                    }
                    match self.config.fault_policy {
                        FaultPolicy::Abort => return Err(RuntimeError::Exec(err)),
                        policy => {
                            self.note_trap(event, &err, injected_fuel);
                            self.stats.skipped_dispatches += 1;
                            if policy == FaultPolicy::Despecialize {
                                self.despecialize(event);
                            }
                            return Ok(false);
                        }
                    }
                }
                self.boundary_fuel = Some(n - 1);
            }
            self.cost.indirect_calls += 1;
            self.cost.marshaled_values += args.len() as u64;
            let packed = marshal(args);
            let unpacked = unmarshal(&packed).map_err(RuntimeError::Marshal)?;
            let trace_handlers = self
                .trace_config
                .as_ref()
                .is_some_and(|c| c.handlers.traces(event));
            if trace_handlers {
                self.trace_push(TraceRecord::HandlerEnter {
                    event,
                    handler: binding.handler,
                    dispatch,
                    at: self.clock.now_ns(),
                });
            }
            let track_frames = self.dispatch_accounting;
            if track_frames {
                self.frame_stack.push((event, binding.handler));
            }
            let result = call(module, self, binding.handler, &unpacked);
            if track_frames {
                self.frame_stack.pop();
            }
            if trace_handlers {
                self.trace_push(TraceRecord::HandlerExit {
                    event,
                    handler: binding.handler,
                    dispatch,
                    at: self.clock.now_ns(),
                });
            }
            if let Err(err) = result {
                if self.boundary_fuel.is_some()
                    && !injected_fuel
                    && matches!(err, ExecError::OutOfFuel)
                {
                    // Nested boundary exhaustion: abort the whole occurrence
                    // (containment happens at its top-level frame).
                    return Err(RuntimeError::Exec(err));
                }
                match self.config.fault_policy {
                    FaultPolicy::Abort => return Err(RuntimeError::Exec(err)),
                    policy => {
                        // Contain: record, skip the rest of this dispatch.
                        self.note_trap(event, &err, injected_fuel);
                        self.stats.skipped_dispatches += 1;
                        if policy == FaultPolicy::Despecialize {
                            self.despecialize(event); // stale chain, if any
                        }
                        return Ok(false);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Drains the asynchronous queue and timer heap, advancing the virtual
    /// clock to each timer deadline. Returns the number of dispatches.
    ///
    /// # Errors
    ///
    /// Propagates handler faults; fails with [`RuntimeError::StepLimit`] if
    /// the configured budget is exhausted (guards against self-sustaining
    /// event cascades).
    pub fn run_until_idle(&mut self) -> Result<u64, RuntimeError> {
        self.run_until(u64::MAX)
    }

    /// As [`Runtime::run_until_idle`], but stops once the next piece of
    /// work would lie after virtual time `deadline_ns`.
    ///
    /// # Errors
    ///
    /// See [`Runtime::run_until_idle`].
    pub fn run_until(&mut self, deadline_ns: u64) -> Result<u64, RuntimeError> {
        let mut module = self.module_arc();
        let mut steps = 0u64;
        loop {
            if self.sched.queued_len() > 0 {
                if steps >= self.config.max_steps {
                    return Err(RuntimeError::StepLimit);
                }
                let p = self.sched.pop_async().expect("queue non-empty");
                self.queued_tctx = p.trace.map(|qt| (qt, DispatchSrc::Queue));
                self.dispatch_now(&module, p.event, &p.args)?;
                steps += 1;
                if self.poll_epoch() {
                    // The hook may have hot-swapped the module.
                    module = self.module_arc();
                }
                continue;
            }
            match self.sched.next_deadline() {
                Some(d) if d <= deadline_ns => {
                    if steps >= self.config.max_steps {
                        return Err(RuntimeError::StepLimit);
                    }
                    self.clock.advance_to(d);
                    let t = self
                        .sched
                        .pop_due_timer(self.clock.now_ns())
                        .expect("deadline was due");
                    self.queued_tctx = t.trace.map(|qt| (qt, DispatchSrc::Timer));
                    self.dispatch_now(&module, t.event, &t.args)?;
                    steps += 1;
                    if self.poll_epoch() {
                        module = self.module_arc();
                    }
                }
                _ => return Ok(steps),
            }
        }
    }

    fn reserved_native(
        &mut self,
        native: NativeId,
        args: &[Value],
    ) -> Option<Result<Value, ExecError>> {
        let arg_int = |i: usize| -> Result<i64, ExecError> {
            args.get(i)
                .and_then(Value::as_int)
                .ok_or_else(|| ExecError::Native("reserved native: bad argument".into()))
        };
        if Some(native) == self.reserved.binding_version {
            return Some(
                arg_int(0).map(|e| Value::Int(self.registry.version(EventId(e as u32)) as i64)),
            );
        }
        if Some(native) == self.reserved.bind {
            return Some((|| {
                let (e, f, o) = (arg_int(0)?, arg_int(1)?, arg_int(2)?);
                self.registry
                    .bind(EventId(e as u32), FuncId(f as u32), o as i32);
                Ok(Value::Unit)
            })());
        }
        if Some(native) == self.reserved.unbind {
            return Some((|| {
                let (e, f) = (arg_int(0)?, arg_int(1)?);
                Ok(Value::Bool(
                    self.registry.unbind(EventId(e as u32), FuncId(f as u32)),
                ))
            })());
        }
        if Some(native) == self.reserved.cancel_timer {
            return Some(
                arg_int(0).map(|e| Value::Int(self.sched.cancel_timers(EventId(e as u32)) as i64)),
            );
        }
        if Some(native) == self.reserved.clock {
            return Some(Ok(Value::Int(self.clock.now_ns() as i64)));
        }
        if Some(native) == self.reserved.advance_clock {
            return Some(arg_int(0).map(|ns| {
                self.clock.advance_by(ns.max(0) as u64);
                Value::Unit
            }));
        }
        if Some(native) == self.reserved.fuel_boundary {
            // Marker emitted by the optimizer before each merged handler
            // segment: charges the same boundary unit the generic dispatcher
            // charges before each pre-merge handler call.
            return Some(match self.boundary_fuel {
                Some(0) => Err(ExecError::OutOfFuel),
                Some(n) => {
                    self.boundary_fuel = Some(n - 1);
                    Ok(Value::Unit)
                }
                None => Ok(Value::Unit),
            });
        }
        None
    }
}

impl Env for Runtime {
    fn load_global(&mut self, global: GlobalId) -> Result<Value, ExecError> {
        self.globals
            .get(global.index())
            .cloned()
            .ok_or(ExecError::GlobalOutOfRange(global))
    }

    fn store_global(&mut self, global: GlobalId, value: Value) -> Result<(), ExecError> {
        match self.globals.get_mut(global.index()) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(ExecError::GlobalOutOfRange(global)),
        }
    }

    fn lock(&mut self, global: GlobalId) -> Result<(), ExecError> {
        match self.lock_words.get(global.index()) {
            Some(w) => {
                // A real atomic RMW: this is the measurable state-maintenance
                // cost the paper's lock elimination removes.
                w.fetch_add(1, Ordering::AcqRel);
                Ok(())
            }
            None => Err(ExecError::GlobalOutOfRange(global)),
        }
    }

    fn unlock(&mut self, global: GlobalId) -> Result<(), ExecError> {
        match self.lock_words.get(global.index()) {
            Some(w) => {
                w.fetch_sub(1, Ordering::AcqRel);
                Ok(())
            }
            None => Err(ExecError::GlobalOutOfRange(global)),
        }
    }

    fn call_native(&mut self, native: NativeId, args: &[Value]) -> Result<Value, ExecError> {
        if let Some(result) = self.reserved_native(native, args) {
            return result;
        }
        match self.natives.get_mut(native.index()) {
            Some(Some(f)) => f(args).map_err(ExecError::Native),
            Some(None) | None => Err(ExecError::UnboundNative(native)),
        }
    }

    fn raise(
        &mut self,
        module: &Module,
        event: EventId,
        mode: RaiseMode,
        args: &[Value],
    ) -> Result<(), ExecError> {
        // Nested raise from handler IR: the ambient span (the dispatch
        // executing this handler) is the causal parent.
        self.raise_inner(module, event, mode, args, None)
            .map_err(|e| match e {
                RuntimeError::Exec(inner) => inner,
                other => ExecError::Raise(other.to_string()),
            })
    }

    fn cost(&mut self) -> &mut CostCounter {
        &mut self.cost
    }

    fn fuel(&mut self) -> Option<&mut u64> {
        self.fuel.as_mut()
    }

    fn opcode_profile(&mut self) -> Option<&mut OpcodeProfile> {
        if self.opcode_sampling {
            self.opcode_prof.as_deref_mut()
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Guard;
    use pdo_ir::{BinOp, FunctionBuilder};

    /// Module with one event `E` and two handlers that append 1 / 2 to a
    /// global accumulator encoded as `acc = acc * 10 + k`.
    fn two_handler_module() -> (Module, EventId, GlobalId, FuncId, FuncId) {
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("acc", Value::Int(0));
        let mk = |m: &mut Module, name: &str, k: i64| {
            let mut b = FunctionBuilder::new(name, 1);
            let v = b.load_global(g);
            let ten = b.const_int(10);
            let scaled = b.bin(BinOp::Mul, v, ten);
            let kk = b.const_int(k);
            let out = b.bin(BinOp::Add, scaled, kk);
            b.store_global(g, out);
            b.ret(None);
            m.add_function(b.finish())
        };
        let h1 = mk(&mut m, "h1", 1);
        let h2 = mk(&mut m, "h2", 2);
        (m, e, g, h1, h2)
    }

    #[test]
    fn sync_raise_runs_handlers_in_order() {
        let (m, e, g, h1, h2) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.bind(e, h2, 1).unwrap();
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(12));
    }

    #[test]
    fn order_key_reorders_handlers() {
        let (m, e, g, h1, h2) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 5).unwrap();
        rt.bind(e, h2, 0).unwrap();
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(21));
    }

    #[test]
    fn async_raise_deferred_until_run() {
        let (m, e, g, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.raise(e, RaiseMode::Async, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(0));
        assert_eq!(rt.pending(), 1);
        let steps = rt.run_until_idle().unwrap();
        assert_eq!(steps, 1);
        assert_eq!(rt.global(g), &Value::Int(1));
    }

    #[test]
    fn timed_raise_advances_clock() {
        let (m, e, g, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.raise(e, RaiseMode::Timed, &[Value::Int(5_000), Value::Unit])
            .unwrap();
        assert_eq!(rt.clock_ns(), 0);
        rt.run_until_idle().unwrap();
        assert_eq!(rt.clock_ns(), 5_000);
        assert_eq!(rt.global(g), &Value::Int(1));
    }

    #[test]
    fn timed_raise_requires_delay() {
        let (m, e, _, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        assert_eq!(
            rt.raise(e, RaiseMode::Timed, &[Value::Unit]),
            Err(RuntimeError::BadTimedRaise)
        );
        assert_eq!(
            rt.raise(e, RaiseMode::Timed, &[Value::Int(-1), Value::Unit]),
            Err(RuntimeError::BadTimedRaise)
        );
    }

    #[test]
    fn run_until_respects_deadline() {
        let (m, e, g, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.raise(e, RaiseMode::Timed, &[Value::Int(100), Value::Unit])
            .unwrap();
        rt.raise(e, RaiseMode::Timed, &[Value::Int(10_000), Value::Unit])
            .unwrap();
        rt.run_until(1_000).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
        assert_eq!(rt.pending(), 1);
        rt.run_until_idle().unwrap();
        assert_eq!(rt.global(g), &Value::Int(11));
    }

    #[test]
    fn unbound_event_is_ignored() {
        let (m, e, g, _, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(0));
    }

    #[test]
    fn unknown_event_rejected() {
        let (m, _, _, _, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        assert!(matches!(
            rt.raise(EventId(99), RaiseMode::Sync, &[]),
            Err(RuntimeError::UnknownEvent(_))
        ));
    }

    #[test]
    fn nested_raise_from_handler() {
        // h raises F sync; F's handler bumps the global.
        let mut m = Module::new();
        let e = m.add_event("E");
        let f = m.add_event("F");
        let g = m.add_global("acc", Value::Int(0));
        let mut hb = FunctionBuilder::new("hf", 1);
        let v = hb.load_global(g);
        let one = hb.const_int(1);
        let out = hb.bin(BinOp::Add, v, one);
        hb.store_global(g, out);
        hb.ret(None);
        let hf = m.add_function(hb.finish());

        let mut eb = FunctionBuilder::new("he", 1);
        eb.raise(f, RaiseMode::Sync, &[eb.param(0)]);
        eb.raise(f, RaiseMode::Sync, &[eb.param(0)]);
        eb.ret(None);
        let he = m.add_function(eb.finish());

        let mut rt = Runtime::new(m);
        rt.bind(e, he, 0).unwrap();
        rt.bind(f, hf, 0).unwrap();
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(2));
        assert_eq!(rt.cost.raises_sync, 2); // the two nested raises
    }

    #[test]
    fn runaway_sync_recursion_detected() {
        let mut m = Module::new();
        let e = m.add_event("E");
        let mut b = FunctionBuilder::new("h", 0);
        b.raise(e, RaiseMode::Sync, &[]);
        b.ret(None);
        let h = m.add_function(b.finish());
        let mut rt = Runtime::new(m);
        rt.bind(e, h, 0).unwrap();
        let err = rt.raise(e, RaiseMode::Sync, &[]).unwrap_err();
        assert!(matches!(err, RuntimeError::Exec(ExecError::Raise(_))));
    }

    #[test]
    fn runaway_async_cascade_hits_step_limit() {
        let mut m = Module::new();
        let e = m.add_event("E");
        let mut b = FunctionBuilder::new("h", 0);
        b.raise(e, RaiseMode::Async, &[]);
        b.ret(None);
        let h = m.add_function(b.finish());
        let mut rt = Runtime::with_config(
            m,
            RuntimeConfig {
                max_steps: 1000,
                ..Default::default()
            },
        );
        rt.bind(e, h, 0).unwrap();
        rt.raise(e, RaiseMode::Async, &[]).unwrap();
        assert_eq!(rt.run_until_idle(), Err(RuntimeError::StepLimit));
    }

    #[test]
    fn tracing_records_raises_and_handlers() {
        let (m, e, _, h1, h2) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.bind(e, h2, 1).unwrap();
        rt.set_trace_config(TraceConfig::full());
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        let t = rt.take_trace();
        assert_eq!(t.raise_count(), 1);
        let kinds: Vec<&'static str> = t
            .records
            .iter()
            .map(|r| match r {
                TraceRecord::Raise { .. } => "raise",
                TraceRecord::HandlerEnter { .. } => "enter",
                TraceRecord::HandlerExit { .. } => "exit",
                TraceRecord::Fault { .. } => "fault",
            })
            .collect();
        assert_eq!(kinds, vec!["raise", "enter", "exit", "enter", "exit"]);
    }

    #[test]
    fn cost_counters_track_generic_overheads() {
        let (m, e, _, h1, h2) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.bind(e, h2, 1).unwrap();
        rt.raise(e, RaiseMode::Sync, &[Value::Int(1), Value::Int(2)])
            .unwrap_err(); // arity mismatch faults; counters still charged
        rt.reset_cost();
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.cost.registry_lookups, 1);
        assert_eq!(rt.cost.indirect_calls, 2);
        assert_eq!(rt.cost.marshaled_values, 2);
        assert_eq!(rt.cost.fastpath_hits, 0);
    }

    #[test]
    fn fast_path_dispatch_with_valid_guard() {
        let (m, e, g, h1, h2) = two_handler_module();
        // Build a "merged" super-handler equivalent to h1;h2.
        let mut m = m;
        let mut b = FunctionBuilder::new("super", 1);
        let v = b.load_global(g);
        let ten = b.const_int(10);
        let s1 = b.bin(BinOp::Mul, v, ten);
        let one = b.const_int(1);
        let a1 = b.bin(BinOp::Add, s1, one);
        let s2 = b.bin(BinOp::Mul, a1, ten);
        let two = b.const_int(2);
        let a2 = b.bin(BinOp::Add, s2, two);
        b.store_global(g, a2);
        b.ret(None);
        let sup = m.add_function(b.finish());

        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.bind(e, h2, 1).unwrap();
        rt.install_chain(CompiledChain {
            head: e,
            guards: vec![Guard {
                event: e,
                version: rt.registry().version(e),
            }],
            func: sup,
            params: 1,
            partitioned: false,
        });
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(12));
        assert_eq!(rt.cost.fastpath_hits, 1);
        assert_eq!(rt.cost.registry_lookups, 0);
        assert_eq!(rt.cost.marshaled_values, 0);
    }

    #[test]
    fn rebinding_invalidates_fast_path() {
        let (m, e, g, h1, h2) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.install_chain(CompiledChain {
            head: e,
            guards: vec![Guard {
                event: e,
                version: rt.registry().version(e),
            }],
            func: h1, // "merged" = just h1 at this point
            params: 1,
            partitioned: false,
        });
        // Re-bind: guard version no longer matches.
        rt.bind(e, h2, 1).unwrap();
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.cost.fastpath_misses, 1);
        assert_eq!(rt.cost.fastpath_hits, 0);
        // Generic path ran both current handlers.
        assert_eq!(rt.global(g), &Value::Int(12));
    }

    #[test]
    fn reserved_natives_bind_and_version() {
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("acc", Value::Int(0));
        let nv = m.add_native(Runtime::NATIVE_BINDING_VERSION);
        let nb = m.add_native(Runtime::NATIVE_BIND);

        // target handler: acc += 1
        let mut tb = FunctionBuilder::new("target", 0);
        let v = tb.load_global(g);
        let one = tb.const_int(1);
        let out = tb.bin(BinOp::Add, v, one);
        tb.store_global(g, out);
        tb.ret(None);
        let target_id_placeholder = 1u32; // will be function index 1

        // driver: binds `target` to E via reserved native, then returns the
        // binding version of E.
        let mut db = FunctionBuilder::new("driver", 0);
        let ev = db.const_int(e.0 as i64);
        let fv = db.const_int(target_id_placeholder as i64);
        let ord = db.const_int(0);
        let _ = db.call_native(nb, &[ev, fv, ord]);
        let ver = db.call_native(nv, &[ev]);
        db.ret(Some(ver));
        let driver = m.add_function(db.finish());
        let target = m.add_function(tb.finish());
        assert_eq!(target.0, target_id_placeholder);

        let mut rt = Runtime::new(m);
        let module = rt.module_arc();
        let ver = call(&module, &mut rt, driver, &[]).unwrap();
        assert_eq!(ver, Value::Int(1));
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
    }

    #[test]
    fn reserved_clock_natives() {
        let mut m = Module::new();
        m.add_event("E");
        let nc = m.add_native(Runtime::NATIVE_CLOCK);
        let na = m.add_native(Runtime::NATIVE_ADVANCE_CLOCK);
        let mut b = FunctionBuilder::new("f", 0);
        let delta = b.const_int(250);
        let _ = b.call_native(na, &[delta]);
        let now = b.call_native(nc, &[]);
        b.ret(Some(now));
        let f = m.add_function(b.finish());
        let mut rt = Runtime::new(m);
        let module = rt.module_arc();
        assert_eq!(call(&module, &mut rt, f, &[]).unwrap(), Value::Int(250));
        assert_eq!(rt.clock_ns(), 250);
    }

    #[test]
    fn handler_rebinding_mid_dispatch_uses_snapshot() {
        // h1 unbinds h2 while handling E; h2 still runs this dispatch
        // because generic dispatch snapshots the binding list.
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("acc", Value::Int(0));
        let nu = m.add_native(Runtime::NATIVE_UNBIND);

        let mut b1 = FunctionBuilder::new("h1", 0);
        let ev = b1.const_int(e.0 as i64);
        let h2id = b1.const_int(1); // function index 1 = h2
        let _ = b1.call_native(nu, &[ev, h2id]);
        b1.ret(None);
        let h1 = m.add_function(b1.finish());

        let mut b2 = FunctionBuilder::new("h2", 0);
        let v = b2.load_global(g);
        let one = b2.const_int(1);
        let out = b2.bin(BinOp::Add, v, one);
        b2.store_global(g, out);
        b2.ret(None);
        let h2 = m.add_function(b2.finish());

        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.bind(e, h2, 1).unwrap();
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1)); // ran from snapshot
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1)); // now unbound
    }

    #[test]
    fn lock_instructions_exercise_lock_words() {
        let mut m = Module::new();
        m.add_event("E");
        let g = m.add_global("st", Value::Int(0));
        let mut b = FunctionBuilder::new("h", 0);
        b.lock(g);
        let v = b.load_global(g);
        let one = b.const_int(1);
        let out = b.bin(BinOp::Add, v, one);
        b.store_global(g, out);
        b.unlock(g);
        b.ret(None);
        let f = m.add_function(b.finish());
        let mut rt = Runtime::new(m);
        let module = rt.module_arc();
        call(&module, &mut rt, f, &[]).unwrap();
        assert_eq!(rt.cost.lock_ops, 2);
        assert_eq!(rt.global(g), &Value::Int(1));
    }

    #[test]
    fn raise_by_name_and_errors() {
        let (m, e, g, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.raise_by_name("E", RaiseMode::Sync, &[Value::Unit])
            .unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
        assert!(matches!(
            rt.raise_by_name("Nope", RaiseMode::Sync, &[]),
            Err(RuntimeError::UnknownName(_))
        ));
    }

    use crate::fault::{FaultInjector, FaultKind, FaultPolicy, FaultSpec};

    fn trap_on_second(e: EventId) -> FaultInjector {
        FaultInjector::from_plan([FaultSpec {
            event: e,
            occurrence: 1,
            kind: FaultKind::TrapDispatch,
        }])
    }

    #[test]
    fn injected_trap_aborts_by_default() {
        let (m, e, g, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.set_fault_injector(trap_on_second(e));
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        let err = rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::Fault {
                kind: FaultKind::TrapDispatch,
                ..
            }
        ));
        assert_eq!(rt.global(g), &Value::Int(1)); // second occurrence had no effect
        assert_eq!(rt.stats().faults(e), 1);
    }

    #[test]
    fn skip_event_contains_injected_trap() {
        let (m, e, g, h1, _) = two_handler_module();
        let mut rt = Runtime::with_config(
            m,
            RuntimeConfig {
                fault_policy: FaultPolicy::SkipEvent,
                ..Default::default()
            },
        );
        rt.bind(e, h1, 0).unwrap();
        rt.set_fault_injector(trap_on_second(e));
        for _ in 0..3 {
            rt.raise(e, RaiseMode::Async, &[Value::Unit]).unwrap();
        }
        assert_eq!(rt.run_until_idle().unwrap(), 3);
        assert_eq!(rt.global(g), &Value::Int(11)); // occurrence 1 skipped
        assert_eq!(rt.stats().skipped_dispatches, 1);
        assert_eq!(rt.stats().injected_faults, 1);
    }

    #[test]
    fn despecialize_removes_chain_and_dispatches_generically() {
        let (m, e, g, h1, h2) = two_handler_module();
        let mut rt = Runtime::with_config(
            m,
            RuntimeConfig {
                fault_policy: FaultPolicy::Despecialize,
                ..Default::default()
            },
        );
        rt.bind(e, h1, 0).unwrap();
        rt.bind(e, h2, 1).unwrap();
        // Broken "merged" chain: runs only h1, so its effect differs from
        // generic dispatch — we only check it is *removed* on fault.
        rt.install_chain(CompiledChain {
            head: e,
            guards: vec![Guard {
                event: e,
                version: rt.registry().version(e),
            }],
            func: h1,
            params: 1,
            partitioned: false,
        });
        rt.set_fault_injector(trap_on_second(e));
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.cost.fastpath_hits, 1);
        assert_eq!(rt.global(g), &Value::Int(1)); // chain ran h1 only
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        // Fault fired: chain removed, occurrence dispatched generically.
        assert!(rt.spec().get(e).is_none());
        assert_eq!(rt.stats().chains_removed, 1);
        assert_eq!(rt.global(g), &Value::Int(112)); // generic ran h1 and h2
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(11212));
        assert_eq!(rt.cost.fastpath_hits, 1); // never took the fast path again
    }

    #[test]
    fn corrupt_arg_reaches_handler_on_both_paths() {
        // Handler stores its argument into the global.
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("seen", Value::Int(0));
        let mut b = FunctionBuilder::new("h", 1);
        let p = b.param(0);
        b.store_global(g, p);
        b.ret(None);
        let h = m.add_function(b.finish());
        let mut rt = Runtime::new(m);
        rt.bind(e, h, 0).unwrap();
        rt.set_fault_injector(FaultInjector::from_plan([FaultSpec {
            event: e,
            occurrence: 0,
            kind: FaultKind::CorruptArg { index: 0 },
        }]));
        rt.raise(e, RaiseMode::Sync, &[Value::Int(7)]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(!7)); // corrupt_value on Int
        rt.raise(e, RaiseMode::Sync, &[Value::Int(7)]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(7)); // only occurrence 0 targeted
    }

    #[test]
    fn dropped_and_delayed_timed_raises() {
        let (m, e, g, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.set_fault_injector(FaultInjector::from_plan([
            FaultSpec {
                event: e,
                occurrence: 0,
                kind: FaultKind::DropTimed,
            },
            FaultSpec {
                event: e,
                occurrence: 1,
                kind: FaultKind::DelayTimed { extra_ns: 500 },
            },
        ]));
        rt.raise(e, RaiseMode::Timed, &[Value::Int(100), Value::Unit])
            .unwrap(); // dropped
        rt.raise(e, RaiseMode::Timed, &[Value::Int(100), Value::Unit])
            .unwrap(); // delayed to t=600
        assert_eq!(rt.pending(), 1);
        rt.run_until_idle().unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
        assert_eq!(rt.clock_ns(), 600);
        assert_eq!(rt.stats().dropped_timed, 1);
        assert_eq!(rt.stats().delayed_timed, 1);
    }

    #[test]
    fn nested_dispatches_do_not_consume_the_plan() {
        // E's handler raises F synchronously; a fault planned for F's
        // occurrence 0 must NOT fire on the nested dispatch (depth 2), only
        // on a top-level raise of F.
        let mut m = Module::new();
        let e = m.add_event("E");
        let f = m.add_event("F");
        let g = m.add_global("acc", Value::Int(0));
        let mut fb = FunctionBuilder::new("hf", 0);
        let v = fb.load_global(g);
        let one = fb.const_int(1);
        let out = fb.bin(BinOp::Add, v, one);
        fb.store_global(g, out);
        fb.ret(None);
        let hf = m.add_function(fb.finish());
        let mut eb = FunctionBuilder::new("he", 0);
        eb.raise(f, RaiseMode::Sync, &[]);
        eb.ret(None);
        let he = m.add_function(eb.finish());

        let mut rt = Runtime::new(m);
        rt.bind(e, he, 0).unwrap();
        rt.bind(f, hf, 0).unwrap();
        rt.set_fault_injector(FaultInjector::from_plan([FaultSpec {
            event: f,
            occurrence: 0,
            kind: FaultKind::TrapDispatch,
        }]));
        rt.raise(e, RaiseMode::Sync, &[]).unwrap(); // nested F unharmed
        assert_eq!(rt.global(g), &Value::Int(1));
        // Top-level F raise is occurrence 0 and faults.
        let err = rt.raise(f, RaiseMode::Sync, &[]).unwrap_err();
        assert!(matches!(err, RuntimeError::Fault { .. }));
    }

    #[test]
    fn organic_trap_contained_and_counted() {
        // Handler always traps (calls an unbound native).
        let mut m = Module::new();
        let e = m.add_event("E");
        let n = m.add_native("boom");
        let mut b = FunctionBuilder::new("h", 0);
        let _ = b.call_native(n, &[]);
        b.ret(None);
        let h = m.add_function(b.finish());
        let mut rt = Runtime::with_config(
            m,
            RuntimeConfig {
                fault_policy: FaultPolicy::SkipEvent,
                ..Default::default()
            },
        );
        rt.bind(e, h, 0).unwrap();
        rt.raise(e, RaiseMode::Async, &[]).unwrap();
        rt.raise(e, RaiseMode::Async, &[]).unwrap();
        assert_eq!(rt.run_until_idle().unwrap(), 2);
        assert_eq!(rt.stats().handler_traps, 2);
        assert_eq!(rt.stats().skipped_dispatches, 2);
        assert_eq!(rt.stats().injected_faults, 0);
    }

    #[test]
    fn fault_records_appear_in_trace() {
        let (m, e, _, h1, _) = two_handler_module();
        let mut rt = Runtime::with_config(
            m,
            RuntimeConfig {
                fault_policy: FaultPolicy::SkipEvent,
                ..Default::default()
            },
        );
        rt.bind(e, h1, 0).unwrap();
        rt.set_trace_config(TraceConfig::events_only());
        rt.set_fault_injector(FaultInjector::from_plan([FaultSpec {
            event: e,
            occurrence: 0,
            kind: FaultKind::TrapDispatch,
        }]));
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        let t = rt.take_trace();
        assert_eq!(t.fault_sequence(), vec![(e, FaultKind::TrapDispatch)]);
    }

    /// Module with three handlers on one event, each computing `g = g*10+k`.
    fn three_handler_module() -> (Module, EventId, GlobalId, [FuncId; 3]) {
        let mut m = Module::new();
        let e = m.add_event("E");
        let g = m.add_global("acc", Value::Int(0));
        let mut hs = [FuncId(0); 3];
        for (i, h) in hs.iter_mut().enumerate() {
            let mut b = FunctionBuilder::new(format!("h{}", i + 1), 0);
            let v = b.load_global(g);
            let ten = b.const_int(10);
            let k = b.const_int(i as i64 + 1);
            let scaled = b.bin(BinOp::Mul, v, ten);
            let out = b.bin(BinOp::Add, scaled, k);
            b.store_global(g, out);
            b.ret(None);
            *h = m.add_function(b.finish());
        }
        (m, e, g, hs)
    }

    #[test]
    fn exhaust_fuel_meters_handler_boundaries() {
        // Budget is EXHAUST_FUEL_BUDGET = 2 boundary units: the first two
        // handlers run, the third trips at its pre-call boundary and the
        // occurrence is contained. The next occurrence runs all three.
        let (m, e, g, [h1, h2, h3]) = three_handler_module();
        let mut rt = Runtime::with_config(
            m,
            RuntimeConfig {
                fault_policy: FaultPolicy::SkipEvent,
                ..Default::default()
            },
        );
        rt.bind(e, h1, 0).unwrap();
        rt.bind(e, h2, 1).unwrap();
        rt.bind(e, h3, 2).unwrap();
        rt.set_fault_injector(FaultInjector::from_plan([FaultSpec {
            event: e,
            occurrence: 0,
            kind: FaultKind::ExhaustFuel,
        }]));
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(12)); // h1, h2 ran; h3 tripped
        assert_eq!(rt.stats().skipped_dispatches, 1);
        assert_eq!(rt.stats().injected_faults, 1); // noted at injection time
        assert_eq!(rt.stats().handler_traps, 0); // injected OutOfFuel suppressed
                                                 // Budget restored: occurrence 1 runs all three handlers.
        rt.raise(e, RaiseMode::Sync, &[]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(12123));
    }

    #[test]
    fn epoch_hook_fires_between_dispatches_in_run_until() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (m, e, _, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        let boundaries: Rc<RefCell<Vec<u64>>> = Rc::default();
        let seen = Rc::clone(&boundaries);
        rt.set_epoch_hook(1_000, move |_rt, at| seen.borrow_mut().push(at));
        for delay in [500i64, 1_500, 2_500] {
            rt.raise(e, RaiseMode::Timed, &[Value::Int(delay), Value::Unit])
                .unwrap();
        }
        rt.run_until_idle().unwrap();
        assert_eq!(*boundaries.borrow(), vec![1_000, 2_000]);
    }

    #[test]
    fn epoch_hook_fires_on_advance_clock() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let (m, _, _, _, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        let fired: Rc<RefCell<Vec<u64>>> = Rc::default();
        let seen = Rc::clone(&fired);
        rt.set_epoch_hook(1_000, move |_rt, at| seen.borrow_mut().push(at));
        rt.advance_clock(2_500); // crosses 1000 and 2000; one poll, re-arms past now
        assert_eq!(*fired.borrow(), vec![1_000]);
        rt.advance_clock(1_000); // now 3500, crosses the re-armed 3000 boundary
        assert_eq!(*fired.borrow(), vec![1_000, 3_000]);
        assert!(rt.clear_epoch_hook());
        rt.advance_clock(10_000);
        assert_eq!(fired.borrow().len(), 2);
    }

    #[test]
    fn replace_module_keeps_state_and_extends_globals() {
        let (m, e, g, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m.clone());
        rt.bind(e, h1, 0).unwrap();
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(1));
        // Extend the module (as the optimizer does) and hot-swap it in.
        let mut m2 = m;
        let g2 = m2.add_global("extra", Value::Int(99));
        rt.replace_module(m2);
        assert_eq!(rt.global(g), &Value::Int(1)); // existing state preserved
        assert_eq!(rt.global(g2), &Value::Int(99)); // new global initialized
        rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        assert_eq!(rt.global(g), &Value::Int(11)); // bindings still live
    }

    #[test]
    fn trace_window_bounds_record_count() {
        let (m, e, _, h1, _) = two_handler_module();
        let mut rt = Runtime::new(m);
        rt.bind(e, h1, 0).unwrap();
        rt.set_trace_config(TraceConfig::full());
        rt.set_trace_window(Some(16));
        for _ in 0..200 {
            rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        }
        let len = rt.trace().records.len();
        assert!(len <= 16, "window exceeded: {len}");
        assert!(len > 0, "window must retain recent records");
    }

    /// Module where every dispatch of `P` runs a handler that synchronously
    /// raises `C` (whose handler increments a counter).
    fn nesting_module() -> (Module, EventId, EventId, GlobalId, FuncId, FuncId) {
        let mut m = Module::new();
        let p = m.add_event("P");
        let c = m.add_event("C");
        let g = m.add_global("n", Value::Int(0));
        let mut b = FunctionBuilder::new("child", 0);
        let v = b.load_global(g);
        let one = b.const_int(1);
        let out = b.bin(BinOp::Add, v, one);
        b.store_global(g, out);
        b.ret(None);
        let hc = m.add_function(b.finish());
        let mut b = FunctionBuilder::new("parent", 0);
        b.raise(c, RaiseMode::Sync, &[]);
        b.ret(None);
        let hp = m.add_function(b.finish());
        (m, p, c, g, hp, hc)
    }

    #[test]
    fn nested_sync_raises_counted_without_tracing() {
        let (m, p, c, g, hp, hc) = nesting_module();
        let mut rt = Runtime::new(m);
        rt.bind(p, hp, 0).unwrap();
        rt.bind(c, hc, 0).unwrap();
        rt.set_dispatch_accounting(true);
        // No tracing at all: the slow-path counter is the only record.
        for _ in 0..7 {
            rt.raise(p, RaiseMode::Sync, &[]).unwrap();
        }
        assert_eq!(rt.global(g), &Value::Int(7));
        let stats = rt.take_stats();
        assert_eq!(
            stats.nested_sync_by_event.get(&(p, hp, c)).copied(),
            Some(7),
            "nested raise attributed to the raising frame: {:?}",
            stats.nested_sync_by_event
        );
        // Top-level raises of P are not nested in anything.
        assert!(stats
            .nested_sync_by_event
            .keys()
            .all(|(_, _, child)| *child == c));
    }

    #[test]
    fn nested_sync_counting_requires_dispatch_accounting() {
        let (m, p, c, _, hp, hc) = nesting_module();
        let mut rt = Runtime::new(m);
        rt.bind(p, hp, 0).unwrap();
        rt.bind(c, hc, 0).unwrap();
        for _ in 0..5 {
            rt.raise(p, RaiseMode::Sync, &[]).unwrap();
        }
        assert!(
            rt.stats().nested_sync_by_event.is_empty(),
            "accounting off must stay zero-overhead"
        );
    }

    #[test]
    fn nested_sync_counting_attributes_fast_path_frames() {
        // A compiled chain whose body raises synchronously still records
        // the nested raise, keyed by the chain function — a sleeping
        // adaptive daemon needs this to learn that an already specialized
        // (but flat) chain started nesting.
        let (mut m, p, c, g, _hp, hc) = nesting_module();
        let mut b = FunctionBuilder::new("super_parent", 0);
        b.raise(c, RaiseMode::Sync, &[]);
        b.ret(None);
        let chain_fn = m.add_function(b.finish());
        let mut rt = Runtime::new(m);
        rt.bind(c, hc, 0).unwrap();
        let version = rt.registry().version(p);
        rt.install_chain(CompiledChain {
            head: p,
            guards: vec![Guard { event: p, version }],
            func: chain_fn,
            params: 0,
            partitioned: false,
        });
        rt.set_dispatch_accounting(true);
        for _ in 0..3 {
            rt.raise(p, RaiseMode::Sync, &[]).unwrap();
        }
        assert_eq!(rt.global(g), &Value::Int(3));
        assert!(rt.cost.fastpath_hits >= 3);
        assert_eq!(
            rt.stats()
                .nested_sync_by_event
                .get(&(p, chain_fn, c))
                .copied(),
            Some(3)
        );
    }
}
