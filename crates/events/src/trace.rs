//! Execution traces for event and handler profiling.
//!
//! Profiling is two-phase, as in §3.1 of the paper: the first run records
//! only event raises (event profiling); once hot event paths are known, a
//! second run additionally instruments the handlers of selected events
//! (handler profiling). [`TraceConfig`] selects the phase.

use crate::fault::FaultKind;
use pdo_ir::{EventId, FuncId, RaiseMode};
use std::collections::HashSet;

/// One record in an execution trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceRecord {
    /// An event was raised. `depth` is the synchronous nesting depth at the
    /// raise site: a non-zero depth means the raise happened from inside
    /// another event's handler, which is what subsumption detection (§3.2.1,
    /// Fig 8) looks for.
    Raise {
        /// The raised event.
        event: EventId,
        /// How it was activated.
        mode: RaiseMode,
        /// Synchronous nesting depth at the raise site.
        depth: u32,
        /// Virtual-clock timestamp (ns).
        at: u64,
    },
    /// A handler started executing for `event`.
    HandlerEnter {
        /// Event being dispatched.
        event: EventId,
        /// The handler function.
        handler: FuncId,
        /// Dispatch group: all handlers run by one event occurrence share it.
        dispatch: u64,
        /// Virtual-clock timestamp (ns).
        at: u64,
    },
    /// The handler finished.
    HandlerExit {
        /// Event being dispatched.
        event: EventId,
        /// The handler function.
        handler: FuncId,
        /// Dispatch group: all handlers run by one event occurrence share it.
        dispatch: u64,
        /// Virtual-clock timestamp (ns).
        at: u64,
    },
    /// A fault (injected or contained organic trap) was recorded for
    /// `event`. Only present when event tracing is enabled.
    Fault {
        /// The faulting event.
        event: EventId,
        /// The fault kind.
        kind: FaultKind,
        /// Virtual-clock timestamp (ns).
        at: u64,
    },
}

/// Which handlers to instrument.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum HandlerTraceMode {
    /// No handler records (event-profiling phase).
    #[default]
    Off,
    /// Record handlers of every event.
    All,
    /// Record handlers only for the given events (the paper instruments the
    /// handlers of events on hot paths).
    Selected(HashSet<EventId>),
}

impl HandlerTraceMode {
    /// Should handlers of `event` be recorded?
    pub fn traces(&self, event: EventId) -> bool {
        match self {
            HandlerTraceMode::Off => false,
            HandlerTraceMode::All => true,
            HandlerTraceMode::Selected(set) => set.contains(&event),
        }
    }
}

/// Tracing configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record [`TraceRecord::Raise`] entries.
    pub events: bool,
    /// Handler instrumentation mode.
    pub handlers: HandlerTraceMode,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            events: true,
            handlers: HandlerTraceMode::Off,
        }
    }
}

impl TraceConfig {
    /// Event-profiling phase: raises only.
    pub fn events_only() -> Self {
        Self::default()
    }

    /// No instrumentation at all — what a duty-cycled online profiler
    /// installs between sampling windows.
    pub fn off() -> Self {
        TraceConfig {
            events: false,
            handlers: HandlerTraceMode::Off,
        }
    }

    /// Full instrumentation: raises plus every handler.
    pub fn full() -> Self {
        TraceConfig {
            events: true,
            handlers: HandlerTraceMode::All,
        }
    }

    /// Handler-profiling phase for the given hot events.
    pub fn handlers_for(events: impl IntoIterator<Item = EventId>) -> Self {
        TraceConfig {
            events: true,
            handlers: HandlerTraceMode::Selected(events.into_iter().collect()),
        }
    }
}

/// A recorded execution trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Records in execution order.
    pub records: Vec<TraceRecord>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sequence of raised events, in order.
    pub fn event_sequence(&self) -> Vec<(EventId, RaiseMode)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Raise { event, mode, .. } => Some((*event, *mode)),
                _ => None,
            })
            .collect()
    }

    /// Number of raise records.
    pub fn raise_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Raise { .. }))
            .count()
    }

    /// The recorded fault events, in order, as `(event, kind)` pairs. Part
    /// of the observable behavior the chaos equivalence property compares.
    pub fn fault_sequence(&self) -> Vec<(EventId, FaultKind)> {
        self.records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Fault { event, kind, .. } => Some((*event, *kind)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handler_mode_selection() {
        assert!(!HandlerTraceMode::Off.traces(EventId(0)));
        assert!(HandlerTraceMode::All.traces(EventId(0)));
        let sel = HandlerTraceMode::Selected([EventId(1)].into_iter().collect());
        assert!(sel.traces(EventId(1)));
        assert!(!sel.traces(EventId(2)));
    }

    #[test]
    fn event_sequence_filters_raises() {
        let t = Trace {
            records: vec![
                TraceRecord::Raise {
                    event: EventId(0),
                    mode: RaiseMode::Sync,
                    depth: 0,
                    at: 0,
                },
                TraceRecord::HandlerEnter {
                    event: EventId(0),
                    handler: FuncId(1),
                    dispatch: 0,
                    at: 1,
                },
                TraceRecord::Raise {
                    event: EventId(1),
                    mode: RaiseMode::Async,
                    depth: 1,
                    at: 2,
                },
                TraceRecord::HandlerExit {
                    event: EventId(0),
                    handler: FuncId(1),
                    dispatch: 0,
                    at: 3,
                },
            ],
        };
        assert_eq!(
            t.event_sequence(),
            vec![
                (EventId(0), RaiseMode::Sync),
                (EventId(1), RaiseMode::Async)
            ]
        );
        assert_eq!(t.raise_count(), 2);
    }

    #[test]
    fn fault_records_are_separated_from_raises() {
        let t = Trace {
            records: vec![
                TraceRecord::Raise {
                    event: EventId(3),
                    mode: RaiseMode::Timed,
                    depth: 0,
                    at: 99,
                },
                TraceRecord::Fault {
                    event: EventId(3),
                    kind: FaultKind::DropTimed,
                    at: 99,
                },
            ],
        };
        assert_eq!(t.raise_count(), 1);
        assert_eq!(t.event_sequence(), vec![(EventId(3), RaiseMode::Timed)]);
        assert_eq!(t.fault_sequence(), vec![(EventId(3), FaultKind::DropTimed)]);
    }
}
