//! Property tests for argument marshaling: roundtrip fidelity over
//! arbitrary value mixes, matching what the generic dispatch path does for
//! every handler invocation.

use pdo_events::marshal::{marshal, unmarshal, Tag};
use pdo_ir::Value;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Unit),
        any::<i64>().prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Value::bytes),
        "[a-zA-Z0-9 ]{0,32}".prop_map(|s| Value::str(&s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn marshal_roundtrips_any_argument_list(
        args in prop::collection::vec(value_strategy(), 0..8)
    ) {
        let m = marshal(&args);
        prop_assert_eq!(m.len(), args.len());
        let back = unmarshal(&m).expect("tags match by construction");
        prop_assert_eq!(back, args);
    }

    #[test]
    fn tags_always_describe_their_values(
        args in prop::collection::vec(value_strategy(), 0..8)
    ) {
        let m = marshal(&args);
        for (v, t) in m.values.iter().zip(m.tags.iter()) {
            prop_assert_eq!(Tag::of(v), *t);
        }
    }

    #[test]
    fn marshaled_bytes_share_no_mutation_with_source(
        data in prop::collection::vec(any::<u8>(), 1..32)
    ) {
        let mut original = Value::bytes(data.clone());
        let m = marshal(std::slice::from_ref(&original));
        // Mutating the original after marshaling must not change the
        // marshaled copy (copy-on-write).
        original.bytes_mut().expect("bytes")[0] ^= 0xFF;
        prop_assert_eq!(m.values[0].as_bytes().expect("bytes"), &data[..]);
    }
}
