//! Incremental, windowed profile construction for online adaptation.
//!
//! The offline workflow builds a [`Profile`](crate::Profile) from one big
//! trace. A long-running server cannot afford that: re-profiling must be
//! O(window), not O(everything the session ever did). [`ProfileBuilder`]
//! therefore consumes *trace windows* (whatever [`pdo_events::Runtime`]
//! accumulated since the last sample) and merges each window's event and
//! handler observations into running accumulators.
//!
//! To let the profile track a *shifting* workload — the property the
//! adaptive server needs so a chain that went cold is eventually
//! despecialized — the builder applies **exponential decay**: on each
//! [`ProfileBuilder::end_epoch`] every accumulated weight is halved (and
//! zero-weight entries dropped). An event path that stops occurring falls
//! below any reduction threshold after a logarithmic number of epochs,
//! while a newly hot path crosses it as soon as one window carries enough
//! occurrences.

use crate::graph::EventGraph;
use crate::handlers::{HandlerGraph, HandlerSeq, NestedRaise};
use crate::Profile;
use pdo_events::{Trace, TraceRecord};
use pdo_ir::{EventId, FuncId, RaiseMode};

/// The complete externally serializable state of a [`ProfileBuilder`]:
/// the decaying accumulators, the cross-window boundary raise, and the
/// fresh-raise counter. Exporting and restoring this is exact — a
/// restored builder produces the same profiles as the original.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BuilderState {
    /// Accumulated (decayed) event graph.
    pub event_graph: EventGraph,
    /// Accumulated (decayed) handler graph.
    pub handler_graph: HandlerGraph,
    /// Last raise of the previous window, if any.
    pub prev_raise: Option<EventId>,
    /// Raises observed since the last re-profile.
    pub fresh: u64,
}

/// Accumulates trace windows into a decaying profile.
#[derive(Debug, Clone, Default)]
pub struct ProfileBuilder {
    event_graph: EventGraph,
    handler_graph: HandlerGraph,
    /// Carried across windows so the boundary edge between the last raise
    /// of one window and the first raise of the next is not lost.
    prev_raise: Option<EventId>,
    /// Raise records observed since the last [`ProfileBuilder::take_fresh`].
    fresh: u64,
}

impl ProfileBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges one trace window into the accumulators. Cost is linear in the
    /// window, independent of how much has been observed before.
    ///
    /// Windows are expected to end *between* dispatches (the epoch hook in
    /// [`pdo_events::Runtime::run_until`] fires there): a window cut inside
    /// an open handler frame loses the nesting attribution of raises whose
    /// `HandlerEnter` fell in the previous window.
    pub fn observe(&mut self, window: &Trace) {
        // Event graph: same walk as `EventGraph::from_trace`, but `prev`
        // persists across windows.
        for record in &window.records {
            let TraceRecord::Raise { event, mode, .. } = record else {
                continue;
            };
            self.fresh += 1;
            *self.event_graph.nodes.entry(*event).or_insert(0) += 1;
            if let Some(p) = self.prev_raise {
                let data = self.event_graph.edges.entry((p, *event)).or_default();
                data.weight += 1;
                match mode {
                    RaiseMode::Sync => data.sync += 1,
                    RaiseMode::Async | RaiseMode::Timed => data.asynchronous += 1,
                }
            }
            self.prev_raise = Some(*event);
        }

        // Handler graph: fold the window's graph into the accumulator.
        // Dispatch ids are globally monotonic per runtime, so windows never
        // alias each other's dispatches.
        let win = HandlerGraph::from_trace(window);
        for (event, seqs) in win.sequences {
            let acc = self.handler_graph.sequences.entry(event).or_default();
            for seq in seqs {
                match acc.iter_mut().find(|s| s.handlers == seq.handlers) {
                    Some(s) => s.count += seq.count,
                    None => acc.push(HandlerSeq {
                        handlers: seq.handlers,
                        count: seq.count,
                    }),
                }
            }
        }
        for (key, count) in win.nested {
            *self.handler_graph.nested.entry(key).or_insert(0) += count;
        }
    }

    /// Ends an adaptation epoch: halves every accumulated weight and drops
    /// entries that reach zero, so hotness observed `k` epochs ago carries
    /// weight `w / 2^k` today.
    pub fn end_epoch(&mut self) {
        for count in self.event_graph.nodes.values_mut() {
            *count /= 2;
        }
        self.event_graph.nodes.retain(|_, c| *c > 0);
        for data in self.event_graph.edges.values_mut() {
            data.weight /= 2;
            data.sync /= 2;
            data.asynchronous /= 2;
        }
        self.event_graph.edges.retain(|_, d| d.weight > 0);

        for seqs in self.handler_graph.sequences.values_mut() {
            for seq in seqs.iter_mut() {
                seq.count /= 2;
            }
            seqs.retain(|s| s.count > 0);
        }
        self.handler_graph.sequences.retain(|_, s| !s.is_empty());
        for count in self.handler_graph.nested.values_mut() {
            *count /= 2;
        }
        self.handler_graph.nested.retain(|_, c| *c > 0);
    }

    /// Merges per-event dispatch *counts* into the event graph — the
    /// tracing-free hotness signal a sleeping daemon gets from
    /// `RuntimeStats::generic_dispatches_by_event`. Counts carry no
    /// ordering, so each event's `n` dispatches are folded as `n` node
    /// occurrences plus an `n`-weight self-edge — exactly what a trace
    /// window of `n` back-to-back raises would produce, which is what
    /// "this one event went hot" looks like. Handler sequences still come
    /// from real trace windows once the daemon wakes its tracer back up.
    pub fn observe_dispatches<'a>(
        &mut self,
        counts: impl IntoIterator<Item = (&'a EventId, &'a u64)>,
    ) {
        for (&event, &n) in counts {
            if n == 0 {
                continue;
            }
            self.fresh += n;
            *self.event_graph.nodes.entry(event).or_insert(0) += n;
            let data = self.event_graph.edges.entry((event, event)).or_default();
            data.weight += n;
            // The dispatch loop delivers queued (async/timed) raises.
            data.asynchronous += n;
        }
    }

    /// Merges per-site nested-synchronous-raise *counts* into the handler
    /// graph — the tracing-free subsumption evidence a sleeping daemon gets
    /// from `RuntimeStats::nested_sync_by_event`. Counts carry exactly the
    /// (parent event, raising handler, child event) key the subsumption
    /// heuristic consults, so a session whose tracer never wakes over a
    /// newly nested hot path still accumulates the evidence to fold the
    /// child chain in. Does not touch the event graph or the fresh-raise
    /// counter: the child dispatches behind these raises are already folded
    /// in by [`ProfileBuilder::observe_dispatches`] (nested synchronous
    /// dispatches take the generic path too while unspecialized).
    pub fn observe_nested<'a>(
        &mut self,
        counts: impl IntoIterator<Item = (&'a (EventId, FuncId, EventId), &'a u64)>,
    ) {
        for (&(parent_event, handler, child_event), &n) in counts {
            if n == 0 {
                continue;
            }
            *self
                .handler_graph
                .nested
                .entry(NestedRaise {
                    parent_event,
                    handler,
                    child_event,
                })
                .or_insert(0) += n;
        }
    }

    /// Number of raises observed since the last [`ProfileBuilder::take_fresh`].
    pub fn fresh_events(&self) -> u64 {
        self.fresh
    }

    /// Returns and resets the fresh-raise counter (called when the daemon
    /// decides to re-profile).
    pub fn take_fresh(&mut self) -> u64 {
        std::mem::take(&mut self.fresh)
    }

    /// A [`Profile`] snapshot of the current accumulators at `threshold`.
    pub fn snapshot(&self, threshold: u64) -> Profile {
        Profile {
            event_graph: self.event_graph.clone(),
            handler_graph: self.handler_graph.clone(),
            threshold,
        }
    }

    /// The accumulated event graph (reporting/tests).
    pub fn event_graph(&self) -> &EventGraph {
        &self.event_graph
    }

    /// The accumulated handler graph (reporting/tests).
    pub fn handler_graph(&self) -> &HandlerGraph {
        &self.handler_graph
    }

    /// Exports the builder's complete state for snapshotting.
    pub fn export_state(&self) -> BuilderState {
        BuilderState {
            event_graph: self.event_graph.clone(),
            handler_graph: self.handler_graph.clone(),
            prev_raise: self.prev_raise,
            fresh: self.fresh,
        }
    }

    /// Rebuilds a builder from exported state (the inverse of
    /// [`ProfileBuilder::export_state`]).
    pub fn from_state(state: BuilderState) -> Self {
        ProfileBuilder {
            event_graph: state.event_graph,
            handler_graph: state.handler_graph,
            prev_raise: state.prev_raise,
            fresh: state.fresh,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::FuncId;

    fn raise(event: u32) -> TraceRecord {
        TraceRecord::Raise {
            event: EventId(event),
            mode: RaiseMode::Sync,
            depth: 0,
            at: 0,
        }
    }

    fn enter(event: u32, handler: u32, dispatch: u64) -> TraceRecord {
        TraceRecord::HandlerEnter {
            event: EventId(event),
            handler: FuncId(handler),
            dispatch,
            at: 0,
        }
    }

    fn exit(event: u32, handler: u32, dispatch: u64) -> TraceRecord {
        TraceRecord::HandlerExit {
            event: EventId(event),
            handler: FuncId(handler),
            dispatch,
            at: 0,
        }
    }

    #[test]
    fn windows_merge_and_carry_the_boundary_edge() {
        let mut b = ProfileBuilder::new();
        b.observe(&Trace {
            records: vec![raise(0), raise(1)],
        });
        b.observe(&Trace {
            records: vec![raise(0), raise(1)],
        });
        let g = b.event_graph();
        assert_eq!(g.edges[&(EventId(0), EventId(1))].weight, 2);
        // The 1 -> 0 edge spans the window boundary.
        assert_eq!(g.edges[&(EventId(1), EventId(0))].weight, 1);
        assert_eq!(b.fresh_events(), 4);
    }

    #[test]
    fn windowed_build_matches_offline_build() {
        // Splitting one trace into windows must produce the same profile as
        // one offline pass (modulo nothing: prev carries over).
        let records: Vec<TraceRecord> = (0..20u64)
            .flat_map(|d| vec![raise(0), enter(0, 7, d), raise(1), exit(0, 7, d)])
            .collect();
        let offline = Profile::from_trace(
            &Trace {
                records: records.clone(),
            },
            5,
        );
        let mut b = ProfileBuilder::new();
        // Windows cut at dispatch boundaries (4 records per dispatch here),
        // matching how the epoch hook samples between dispatches.
        for chunk in records.chunks(12) {
            b.observe(&Trace {
                records: chunk.to_vec(),
            });
        }
        let windowed = b.snapshot(5);
        assert_eq!(windowed.event_graph, offline.event_graph);
        assert_eq!(windowed.handler_graph, offline.handler_graph);
    }

    #[test]
    fn decay_forgets_cold_paths() {
        let mut b = ProfileBuilder::new();
        // 40 A->B traversals, then silence.
        let mut records = Vec::new();
        for _ in 0..40 {
            records.push(raise(0));
            records.push(raise(1));
        }
        b.observe(&Trace { records });
        assert!(b.event_graph().edges[&(EventId(0), EventId(1))].weight >= 39);
        for _ in 0..7 {
            b.end_epoch();
        }
        // 40 / 2^7 = 0: the edge is gone.
        assert!(!b
            .event_graph()
            .edges
            .contains_key(&(EventId(0), EventId(1))));
    }

    #[test]
    fn fresh_counter_resets_on_take() {
        let mut b = ProfileBuilder::new();
        b.observe(&Trace {
            records: vec![raise(0), raise(1), raise(0)],
        });
        assert_eq!(b.take_fresh(), 3);
        assert_eq!(b.fresh_events(), 0);
    }

    #[test]
    fn observe_nested_accumulates_subsumption_evidence_and_decays() {
        let mut b = ProfileBuilder::new();
        let key = (EventId(3), FuncId(7), EventId(4));
        let counts = std::collections::BTreeMap::from([(key, 6u64)]);
        b.observe_nested(&counts);
        b.observe_nested(&counts);
        let nested_key = NestedRaise {
            parent_event: EventId(3),
            handler: FuncId(7),
            child_event: EventId(4),
        };
        assert_eq!(b.handler_graph().nested.get(&nested_key).copied(), Some(12));
        // Counts carry no ordering and no new raises: the fresh counter and
        // event graph are untouched (dispatch counts already cover them).
        assert_eq!(b.fresh_events(), 0);
        assert!(b.event_graph().nodes.is_empty());
        // Evidence decays with everything else.
        for _ in 0..4 {
            b.end_epoch();
        }
        assert!(!b.handler_graph().nested.contains_key(&nested_key));
    }

    #[test]
    fn export_restore_round_trips_and_continues_identically() {
        let mut a = ProfileBuilder::new();
        a.observe(&Trace {
            records: vec![raise(0), enter(0, 7, 0), raise(1), exit(0, 7, 0)],
        });
        a.end_epoch();
        let state = a.export_state();
        let mut b = ProfileBuilder::from_state(state.clone());
        assert_eq!(b.export_state(), state, "round trip is exact");
        // Both continue identically, including the boundary edge carried
        // in prev_raise and the fresh counter.
        let window = Trace {
            records: vec![raise(0), raise(1)],
        };
        a.observe(&window);
        b.observe(&window);
        assert_eq!(a.export_state(), b.export_state());
        assert_eq!(a.fresh_events(), b.fresh_events());
        assert_eq!(a.snapshot(1).reduced().nodes, b.snapshot(1).reduced().nodes);
    }

    #[test]
    fn snapshot_reduces_at_threshold() {
        let mut b = ProfileBuilder::new();
        let mut records = Vec::new();
        for _ in 0..12 {
            records.push(raise(0));
            records.push(raise(1));
        }
        records.push(raise(2));
        b.observe(&Trace { records });
        let p = b.snapshot(10);
        let r = p.reduced();
        assert!(r.edges.contains_key(&(EventId(0), EventId(1))));
        assert!(!r.nodes.contains_key(&EventId(2)));
    }
}
