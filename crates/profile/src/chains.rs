//! Event paths and event chains (paper §3.1, §3.2.1).

use crate::graph::EventGraph;
use pdo_ir::EventId;
use std::collections::{BTreeMap, BTreeSet};

/// Events that appear in the reduced graph at `threshold` — the candidates
/// the paper selects for handler-level profiling ("The event paths in the
/// event graph are used to identify the most promising events for handler
/// level profiling").
pub fn hot_events(graph: &EventGraph, threshold: u64) -> BTreeSet<EventId> {
    graph.reduce(threshold).nodes.keys().copied().collect()
}

/// Maximal *event paths* in the (already reduced) graph: simple paths that
/// follow edges greedily from nodes with no qualifying predecessor,
/// extending while the current node has exactly one successor.
///
/// Event paths differ from chains in that their edges may be asynchronous;
/// they indicate frequent sequences, not guaranteed ones.
pub fn event_paths(reduced: &EventGraph) -> Vec<Vec<EventId>> {
    extract_paths(reduced, false)
}

/// *Event chains* (§3.2.1): paths `v1 … vk` where every vertex except
/// possibly the last has exactly one successor edge, and every edge is a
/// synchronous activation — sequences guaranteed to occur when the head
/// occurs. (The head's own activation mode is unconstrained: "the current
/// optimization can only address event paths in which all activations but
/// the initial one are synchronous", §5.)
pub fn event_chains(reduced: &EventGraph) -> Vec<Vec<EventId>> {
    extract_paths(reduced, true)
}

fn extract_paths(reduced: &EventGraph, sync_only: bool) -> Vec<Vec<EventId>> {
    // next(v) = the unique successor of v (respecting sync_only).
    let mut next: BTreeMap<EventId, EventId> = BTreeMap::new();
    for &node in reduced.nodes.keys() {
        let succs: Vec<(EventId, bool)> = reduced
            .successors(node)
            .map(|(to, data)| (to, data.is_pure_sync()))
            .collect();
        if succs.len() == 1 {
            let (to, pure_sync) = succs[0];
            if !sync_only || pure_sync {
                next.insert(node, to);
            }
        }
    }

    // Heads: nodes with a next pointer that are not the target of another
    // node's next pointer (or that only appear as targets in cycles).
    let targets: BTreeSet<EventId> = next.values().copied().collect();
    let mut consumed: BTreeSet<EventId> = BTreeSet::new();
    let mut paths = Vec::new();

    let walk =
        |head: EventId, next: &BTreeMap<EventId, EventId>, consumed: &mut BTreeSet<EventId>| {
            let mut path = vec![head];
            consumed.insert(head);
            let mut cur = head;
            while let Some(&n) = next.get(&cur) {
                if path.contains(&n) {
                    break; // cycle: stop before repeating
                }
                path.push(n);
                consumed.insert(n);
                cur = n;
            }
            path
        };

    for &head in next.keys() {
        if !targets.contains(&head) && !consumed.contains(&head) {
            let p = walk(head, &next, &mut consumed);
            if p.len() >= 2 {
                paths.push(p);
            }
        }
    }
    // Remaining unconsumed nodes with next pointers are cycle members.
    let keys: Vec<EventId> = next.keys().copied().collect();
    for head in keys {
        if !consumed.contains(&head) {
            let p = walk(head, &next, &mut consumed);
            if p.len() >= 2 {
                paths.push(p);
            }
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::EdgeData;

    fn graph(edges: &[(u32, u32, u64, bool)]) -> EventGraph {
        let mut g = EventGraph::new();
        for &(from, to, weight, sync) in edges {
            g.nodes.entry(EventId(from)).or_insert(1);
            g.nodes.entry(EventId(to)).or_insert(1);
            g.edges.insert(
                (EventId(from), EventId(to)),
                EdgeData {
                    weight,
                    sync: if sync { weight } else { 0 },
                    asynchronous: if sync { 0 } else { weight },
                },
            );
        }
        g
    }

    fn ids(v: &[u32]) -> Vec<EventId> {
        v.iter().map(|&i| EventId(i)).collect()
    }

    #[test]
    fn straight_chain_extracted() {
        let g = graph(&[(0, 1, 100, true), (1, 2, 100, true), (2, 3, 100, true)]);
        let chains = event_chains(&g);
        assert_eq!(chains, vec![ids(&[0, 1, 2, 3])]);
    }

    #[test]
    fn async_edge_breaks_chain_but_not_path() {
        let g = graph(&[(0, 1, 100, true), (1, 2, 100, false), (2, 3, 100, true)]);
        let chains = event_chains(&g);
        // 0->1 sync chain; 1's only successor edge is async so the chain
        // stops at 1; 2->3 forms its own chain.
        assert!(chains.contains(&ids(&[0, 1])), "chains: {chains:?}");
        assert!(chains.contains(&ids(&[2, 3])), "chains: {chains:?}");
        let paths = event_paths(&g);
        assert_eq!(paths, vec![ids(&[0, 1, 2, 3])]);
    }

    #[test]
    fn branching_node_ends_chain() {
        // 0 -> 1 -> {2, 3}: 1 has two successors, so the chain is 0,1.
        let g = graph(&[(0, 1, 100, true), (1, 2, 60, true), (1, 3, 40, true)]);
        let chains = event_chains(&g);
        assert_eq!(chains, vec![ids(&[0, 1])]);
    }

    #[test]
    fn last_vertex_may_branch() {
        // 0 -> 1, 1 -> {2,3}; chain (0,1) is valid because only interior
        // vertices need unique successors.
        let g = graph(&[(0, 1, 100, true), (1, 2, 50, true), (1, 3, 50, true)]);
        assert_eq!(event_chains(&g), vec![ids(&[0, 1])]);
    }

    #[test]
    fn cycle_terminates() {
        let g = graph(&[(0, 1, 100, true), (1, 0, 100, true)]);
        let chains = event_chains(&g);
        assert_eq!(chains.len(), 1);
        assert_eq!(chains[0].len(), 2);
    }

    #[test]
    fn two_independent_chains() {
        let g = graph(&[(0, 1, 100, true), (5, 6, 100, true), (6, 7, 100, true)]);
        let chains = event_chains(&g);
        assert_eq!(chains.len(), 2);
        assert!(chains.contains(&ids(&[0, 1])));
        assert!(chains.contains(&ids(&[5, 6, 7])));
    }

    #[test]
    fn mixed_mode_edge_not_chainable() {
        let mut g = graph(&[(0, 1, 100, true)]);
        // Make edge mixed.
        g.edges
            .get_mut(&(EventId(0), EventId(1)))
            .unwrap()
            .asynchronous = 3;
        assert!(event_chains(&g).is_empty());
        assert_eq!(event_paths(&g).len(), 1);
    }

    #[test]
    fn hot_events_from_threshold() {
        let g = graph(&[(0, 1, 100, true), (1, 2, 3, true)]);
        let hot = hot_events(&g, 50);
        assert!(hot.contains(&EventId(0)));
        assert!(hot.contains(&EventId(1)));
        assert!(!hot.contains(&EventId(2)));
    }

    #[test]
    fn chain_head_into_existing_chain_merges() {
        // 9 -> 0 -> 1 -> 2 should be one chain, head 9.
        let g = graph(&[(9, 0, 100, true), (0, 1, 100, true), (1, 2, 100, true)]);
        assert_eq!(event_chains(&g), vec![ids(&[9, 0, 1, 2])]);
    }
}
