//! Saving and loading profiles as JSON artifacts.
//!
//! The paper's workflow is offline: run the instrumented program, persist
//! the profile, then optimize a fresh build against it. These helpers give
//! that persistence a concrete format, using the in-repo [`crate::json`]
//! codec (the build environment has no registry access, see EXPERIMENTS.md).
//!
//! Format (schema version 1):
//!
//! ```json
//! {
//!   "version": 1,
//!   "threshold": 3,
//!   "event_graph": {
//!     "nodes": [[event, count], …],
//!     "edges": [[from, to, weight, sync, async], …]
//!   },
//!   "handler_graph": {
//!     "sequences": [[event, [[[handler, …], count], …]], …],
//!     "nested": [[parent_event, handler, child_event, count], …]
//!   }
//! }
//! ```

use crate::graph::{EdgeData, EventGraph};
use crate::handlers::{HandlerGraph, HandlerSeq, NestedRaise};
use crate::json::{self, Json};
use crate::Profile;
use pdo_ir::{EventId, FuncId};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::path::Path;

/// Failure to save or load a profile.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Encoding or decoding failure.
    Json(json::ParseError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "profile i/o failed: {e}"),
            StoreError::Json(e) => write!(f, "profile encoding failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<json::ParseError> for StoreError {
    fn from(e: json::ParseError) -> Self {
        StoreError::Json(e)
    }
}

const VERSION: u64 = 1;

fn uint_pair(a: u64, b: u64) -> Json {
    Json::Arr(vec![Json::UInt(a), Json::UInt(b)])
}

fn encode(profile: &Profile) -> Json {
    let eg = &profile.event_graph;
    let nodes = eg
        .nodes
        .iter()
        .map(|(e, c)| uint_pair(u64::from(e.0), *c))
        .collect();
    let edges = eg
        .edges
        .iter()
        .map(|(&(from, to), d)| {
            Json::Arr(vec![
                Json::UInt(u64::from(from.0)),
                Json::UInt(u64::from(to.0)),
                Json::UInt(d.weight),
                Json::UInt(d.sync),
                Json::UInt(d.asynchronous),
            ])
        })
        .collect();

    let hg = &profile.handler_graph;
    let sequences = hg
        .sequences
        .iter()
        .map(|(event, seqs)| {
            let seqs = seqs
                .iter()
                .map(|s| {
                    let handlers = Json::Arr(
                        s.handlers
                            .iter()
                            .map(|h| Json::UInt(u64::from(h.0)))
                            .collect(),
                    );
                    Json::Arr(vec![handlers, Json::UInt(s.count)])
                })
                .collect();
            Json::Arr(vec![Json::UInt(u64::from(event.0)), Json::Arr(seqs)])
        })
        .collect();
    let nested = hg
        .nested
        .iter()
        .map(|(k, &count)| {
            Json::Arr(vec![
                Json::UInt(u64::from(k.parent_event.0)),
                Json::UInt(u64::from(k.handler.0)),
                Json::UInt(u64::from(k.child_event.0)),
                Json::UInt(count),
            ])
        })
        .collect();

    let mut event_graph = BTreeMap::new();
    event_graph.insert("nodes".to_string(), Json::Arr(nodes));
    event_graph.insert("edges".to_string(), Json::Arr(edges));

    let mut handler_graph = BTreeMap::new();
    handler_graph.insert("sequences".to_string(), Json::Arr(sequences));
    handler_graph.insert("nested".to_string(), Json::Arr(nested));

    let mut root = BTreeMap::new();
    root.insert("version".to_string(), Json::UInt(VERSION));
    root.insert("threshold".to_string(), Json::UInt(profile.threshold));
    root.insert("event_graph".to_string(), Json::Obj(event_graph));
    root.insert("handler_graph".to_string(), Json::Obj(handler_graph));
    Json::Obj(root)
}

fn schema_err(msg: &str) -> json::ParseError {
    json::ParseError {
        at: 0,
        msg: msg.to_string(),
    }
}

fn event_id(v: &Json) -> Result<EventId, json::ParseError> {
    let n = v.as_u64()?;
    u32::try_from(n)
        .map(EventId)
        .map_err(|_| schema_err("event id out of range"))
}

fn func_id(v: &Json) -> Result<FuncId, json::ParseError> {
    let n = v.as_u64()?;
    u32::try_from(n)
        .map(FuncId)
        .map_err(|_| schema_err("function id out of range"))
}

fn fixed<const N: usize>(v: &Json) -> Result<&[Json; N], json::ParseError> {
    let arr = v.as_arr()?;
    arr.try_into()
        .map_err(|_| schema_err("wrong tuple arity in profile"))
}

fn decode(root: &Json) -> Result<Profile, json::ParseError> {
    let version = root.get("version")?.as_u64()?;
    if version != VERSION {
        return Err(schema_err("unsupported profile version"));
    }
    let threshold = root.get("threshold")?.as_u64()?;

    let eg = root.get("event_graph")?;
    let mut event_graph = EventGraph::new();
    for node in eg.get("nodes")?.as_arr()? {
        let [event, count] = fixed::<2>(node)?;
        event_graph.nodes.insert(event_id(event)?, count.as_u64()?);
    }
    for edge in eg.get("edges")?.as_arr()? {
        let [from, to, weight, sync, asynchronous] = fixed::<5>(edge)?;
        event_graph.edges.insert(
            (event_id(from)?, event_id(to)?),
            EdgeData {
                weight: weight.as_u64()?,
                sync: sync.as_u64()?,
                asynchronous: asynchronous.as_u64()?,
            },
        );
    }

    let hg = root.get("handler_graph")?;
    let mut handler_graph = HandlerGraph::new();
    for entry in hg.get("sequences")?.as_arr()? {
        let [event, seqs] = fixed::<2>(entry)?;
        let mut out = Vec::new();
        for seq in seqs.as_arr()? {
            let [handlers, count] = fixed::<2>(seq)?;
            let handlers = handlers
                .as_arr()?
                .iter()
                .map(func_id)
                .collect::<Result<Vec<_>, _>>()?;
            out.push(HandlerSeq {
                handlers,
                count: count.as_u64()?,
            });
        }
        handler_graph.sequences.insert(event_id(event)?, out);
    }
    for entry in hg.get("nested")?.as_arr()? {
        let [parent, handler, child, count] = fixed::<4>(entry)?;
        handler_graph.nested.insert(
            NestedRaise {
                parent_event: event_id(parent)?,
                handler: func_id(handler)?,
                child_event: event_id(child)?,
            },
            count.as_u64()?,
        );
    }

    Ok(Profile {
        event_graph,
        handler_graph,
        threshold,
    })
}

/// Writes `profile` to `path` as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`StoreError`] on filesystem failure.
pub fn save_profile(profile: &Profile, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let mut text = encode(profile).pretty();
    text.push('\n');
    fs::write(path, text)?;
    Ok(())
}

/// Reads a profile previously written by [`save_profile`].
///
/// # Errors
///
/// Returns [`StoreError`] on filesystem or decoding failure.
pub fn load_profile(path: impl AsRef<Path>) -> Result<Profile, StoreError> {
    let text = fs::read_to_string(path)?;
    Ok(decode(&json::parse(&text)?)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeData, EventGraph};
    use pdo_ir::EventId;

    fn sample_profile() -> Profile {
        let mut g = EventGraph::new();
        g.nodes.insert(EventId(0), 5);
        g.edges.insert(
            (EventId(0), EventId(0)),
            EdgeData {
                weight: 4,
                sync: 4,
                asynchronous: 0,
            },
        );
        let mut h = HandlerGraph::new();
        h.sequences.insert(
            EventId(0),
            vec![HandlerSeq {
                handlers: vec![FuncId(3), FuncId(9)],
                count: 5,
            }],
        );
        h.nested.insert(
            NestedRaise {
                parent_event: EventId(0),
                handler: FuncId(3),
                child_event: EventId(1),
            },
            2,
        );
        Profile {
            event_graph: g,
            handler_graph: h,
            threshold: 3,
        }
    }

    #[test]
    fn roundtrip_via_tempfile() {
        let p = sample_profile();
        let path =
            std::env::temp_dir().join(format!("pdo-profile-test-{}.json", std::process::id()));
        save_profile(&p, &path).unwrap();
        let back = load_profile(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(p, back);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_profile("/nonexistent/definitely/missing.json").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn load_malformed_json_errors() {
        let path =
            std::env::temp_dir().join(format!("pdo-profile-bad-{}.json", std::process::id()));
        std::fs::write(&path, "{ not json").unwrap();
        let err = load_profile(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, StoreError::Json(_)));
    }

    #[test]
    fn rejects_wrong_version() {
        let path =
            std::env::temp_dir().join(format!("pdo-profile-ver-{}.json", std::process::id()));
        let mut text = encode(&sample_profile()).pretty();
        text = text.replace("\"version\": 1", "\"version\": 999");
        std::fs::write(&path, text).unwrap();
        let err = load_profile(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(err.to_string().contains("version"));
    }
}
