//! Saving and loading profiles as JSON artifacts.
//!
//! The paper's workflow is offline: run the instrumented program, persist
//! the profile, then optimize a fresh build against it. These helpers give
//! that persistence a concrete format.

use crate::Profile;
use std::fmt;
use std::fs;
use std::path::Path;

/// Failure to save or load a profile.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Serialization or deserialization failure.
    Json(serde_json::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "profile i/o failed: {e}"),
            StoreError::Json(e) => write!(f, "profile encoding failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Json(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<serde_json::Error> for StoreError {
    fn from(e: serde_json::Error) -> Self {
        StoreError::Json(e)
    }
}

/// Writes `profile` to `path` as pretty-printed JSON.
///
/// # Errors
///
/// Returns [`StoreError`] on filesystem or serialization failure.
pub fn save_profile(profile: &Profile, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let json = serde_json::to_string_pretty(profile)?;
    fs::write(path, json)?;
    Ok(())
}

/// Reads a profile previously written by [`save_profile`].
///
/// # Errors
///
/// Returns [`StoreError`] on filesystem or deserialization failure.
pub fn load_profile(path: impl AsRef<Path>) -> Result<Profile, StoreError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{EdgeData, EventGraph};
    use pdo_ir::EventId;

    #[test]
    fn roundtrip_via_tempfile() {
        let mut g = EventGraph::new();
        g.nodes.insert(EventId(0), 5);
        g.edges.insert(
            (EventId(0), EventId(0)),
            EdgeData {
                weight: 4,
                sync: 4,
                asynchronous: 0,
            },
        );
        let p = Profile {
            event_graph: g,
            handler_graph: Default::default(),
            threshold: 3,
        };
        let path = std::env::temp_dir().join(format!("pdo-profile-test-{}.json", std::process::id()));
        save_profile(&p, &path).unwrap();
        let back = load_profile(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(p, back);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_profile("/nonexistent/definitely/missing.json").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn load_malformed_json_errors() {
        let path = std::env::temp_dir().join(format!("pdo-profile-bad-{}.json", std::process::id()));
        std::fs::write(&path, "{ not json").unwrap();
        let err = load_profile(&path).unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, StoreError::Json(_)));
    }
}
