//! # pdo-profile — event and handler profiling
//!
//! Implements §3.1 of the paper:
//!
//! 1. Run the instrumented program and collect a [`pdo_events::Trace`].
//! 2. Build the **event graph** with the Fig 4 `GraphBuilder` algorithm:
//!    an edge `(e1, e2)` weighted by how many times `e2` immediately
//!    followed `e1` in the trace, annotated with the raise mode of `e2`.
//! 3. **Reduce** the graph by a threshold `T` (Fig 5 → Fig 6) and extract
//!    *event paths* and *event chains* (sequences guaranteed to follow
//!    their head, all activations after the head synchronous).
//! 4. Instrument the handlers of hot events and build the **handler
//!    graph**: the observed handler sequence per event and the nesting
//!    structure that reveals subsumable synchronous raises (Fig 8).
//!
//! The assembled [`Profile`] is a serializable artifact: produce it once,
//! save it as JSON, and feed it to the optimizer offline — the workflow the
//! paper describes ("the analysis and optimizations are currently performed
//! manually off-line after the program … has been executed enough times to
//! develop an adequate profile").

pub mod builder;
pub mod chains;
pub mod graph;
pub mod handlers;
pub mod json;
pub mod store;

pub use builder::ProfileBuilder;
pub use chains::{event_chains, event_paths, hot_events};
pub use graph::{EdgeData, EdgeMode, EventGraph};
pub use handlers::{HandlerGraph, HandlerSeq, NestedRaise};
pub use store::{load_profile, save_profile, StoreError};

use pdo_events::Trace;
use pdo_ir::EventId;

/// A complete profile of one program configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// The event graph from the event-profiling phase.
    pub event_graph: EventGraph,
    /// The handler graph from the handler-profiling phase.
    pub handler_graph: HandlerGraph,
    /// Threshold used when reducing (recorded for reports).
    pub threshold: u64,
}

impl Profile {
    /// Builds a profile from a single fully-instrumented trace (both event
    /// and handler records), using `threshold` for reduction.
    pub fn from_trace(trace: &Trace, threshold: u64) -> Self {
        Profile {
            event_graph: EventGraph::from_trace(trace),
            handler_graph: HandlerGraph::from_trace(trace),
            threshold,
        }
    }

    /// The reduced event graph at this profile's threshold.
    pub fn reduced(&self) -> EventGraph {
        self.event_graph.reduce(self.threshold)
    }

    /// Event chains in the reduced graph (candidates for chain merging).
    pub fn chains(&self) -> Vec<Vec<EventId>> {
        event_chains(&self.reduced())
    }
}
