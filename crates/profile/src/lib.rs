//! # pdo-profile — event and handler profiling
//!
//! Implements §3.1 of the paper:
//!
//! 1. Run the instrumented program and collect a [`pdo_events::Trace`].
//! 2. Build the **event graph** with the Fig 4 `GraphBuilder` algorithm:
//!    an edge `(e1, e2)` weighted by how many times `e2` immediately
//!    followed `e1` in the trace, annotated with the raise mode of `e2`.
//! 3. **Reduce** the graph by a threshold `T` (Fig 5 → Fig 6) and extract
//!    *event paths* and *event chains* (sequences guaranteed to follow
//!    their head, all activations after the head synchronous).
//! 4. Instrument the handlers of hot events and build the **handler
//!    graph**: the observed handler sequence per event and the nesting
//!    structure that reveals subsumable synchronous raises (Fig 8).
//!
//! The assembled [`Profile`] is a serializable artifact: produce it once,
//! save it as JSON, and feed it to the optimizer offline — the workflow the
//! paper describes ("the analysis and optimizations are currently performed
//! manually off-line after the program … has been executed enough times to
//! develop an adequate profile").

pub mod builder;
pub mod chains;
pub mod graph;
pub mod handlers;
pub mod json;
pub mod store;

pub use builder::{BuilderState, ProfileBuilder};
pub use chains::{event_chains, event_paths, hot_events};
pub use graph::{EdgeData, EdgeMode, EventGraph};
pub use handlers::{HandlerGraph, HandlerSeq, NestedRaise};
pub use store::{load_profile, save_profile, StoreError};

use pdo_events::Trace;
use pdo_ir::EventId;

/// A complete profile of one program configuration.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// The event graph from the event-profiling phase.
    pub event_graph: EventGraph,
    /// The handler graph from the handler-profiling phase.
    pub handler_graph: HandlerGraph,
    /// Threshold used when reducing (recorded for reports).
    pub threshold: u64,
}

impl Profile {
    /// Builds a profile from a single fully-instrumented trace (both event
    /// and handler records), using `threshold` for reduction.
    pub fn from_trace(trace: &Trace, threshold: u64) -> Self {
        Profile {
            event_graph: EventGraph::from_trace(trace),
            handler_graph: HandlerGraph::from_trace(trace),
            threshold,
        }
    }

    /// The reduced event graph at this profile's threshold.
    pub fn reduced(&self) -> EventGraph {
        self.event_graph.reduce(self.threshold)
    }

    /// Event chains in the reduced graph (candidates for chain merging).
    pub fn chains(&self) -> Vec<Vec<EventId>> {
        event_chains(&self.reduced())
    }

    /// A canonical hash of the profile's *shape*: the structure that
    /// determines what `optimize` produces, with absolute weights left
    /// out so a workload phase hashes the same no matter how long it ran.
    ///
    /// Covers: the reduction threshold, the reduced graph's node set and
    /// edge set (with each edge's activation mode — mode flips change
    /// chain eligibility), the distinct handler sequences of every
    /// reduced node (sorted, counts excluded), and the presence of each
    /// nested-raise key rooted at a reduced node (subsumption structure).
    ///
    /// The hash is deliberately approximate: two profiles with equal
    /// shape hashes may still differ in weights, but any optimization
    /// cached under the hash was built from the same base module against
    /// a structurally identical profile, so replaying it is
    /// behavior-preserving — guard validity is always re-checked against
    /// the live registry at install time.
    pub fn shape_hash(&self) -> u64 {
        let reduced = self.reduced();
        let mut h = Fnv64::new();
        h.u64(self.threshold);
        h.u64(reduced.nodes.len() as u64);
        for &event in reduced.nodes.keys() {
            h.u64(u64::from(event.0));
        }
        h.u64(reduced.edges.len() as u64);
        for (&(from, to), data) in &reduced.edges {
            h.u64(u64::from(from.0));
            h.u64(u64::from(to.0));
            h.u64(match data.mode() {
                EdgeMode::Sync => 0,
                EdgeMode::Async => 1,
                EdgeMode::Mixed => 2,
            });
        }
        for &event in reduced.nodes.keys() {
            let mut seqs: Vec<&[pdo_ir::FuncId]> = self
                .handler_graph
                .sequences
                .get(&event)
                .map(|s| s.iter().map(|seq| seq.handlers.as_slice()).collect())
                .unwrap_or_default();
            seqs.sort();
            h.u64(u64::from(event.0));
            h.u64(seqs.len() as u64);
            for seq in seqs {
                h.u64(seq.len() as u64);
                for &f in seq {
                    h.u64(u64::from(f.0));
                }
            }
        }
        for key in self.handler_graph.nested.keys() {
            if reduced.nodes.contains_key(&key.parent_event) {
                h.u64(u64::from(key.parent_event.0));
                h.u64(u64::from(key.handler.0));
                h.u64(u64::from(key.child_event.0));
            }
        }
        h.finish()
    }
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a cache key needs (`DefaultHasher` is allowed to change
/// between Rust releases).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod shape_tests {
    use super::*;
    use pdo_events::TraceRecord;
    use pdo_ir::RaiseMode;

    fn raise(event: u32, mode: RaiseMode) -> TraceRecord {
        TraceRecord::Raise {
            event: EventId(event),
            mode,
            depth: 0,
            at: 0,
        }
    }

    fn phase_trace(reps: usize) -> Trace {
        let mut records = Vec::new();
        for _ in 0..reps {
            records.push(raise(0, RaiseMode::Sync));
            records.push(raise(1, RaiseMode::Sync));
        }
        Trace { records }
    }

    #[test]
    fn shape_hash_ignores_absolute_weights() {
        let short = Profile::from_trace(&phase_trace(10), 5);
        let long = Profile::from_trace(&phase_trace(1000), 5);
        assert_eq!(short.shape_hash(), long.shape_hash());
    }

    #[test]
    fn shape_hash_sees_edge_mode_and_structure() {
        let sync = Profile::from_trace(&phase_trace(10), 5);
        let mut async_records = Vec::new();
        for _ in 0..10 {
            async_records.push(raise(0, RaiseMode::Sync));
            async_records.push(raise(1, RaiseMode::Async));
        }
        let asynchronous = Profile::from_trace(
            &Trace {
                records: async_records,
            },
            5,
        );
        assert_ne!(sync.shape_hash(), asynchronous.shape_hash());

        let mut third = Vec::new();
        for _ in 0..10 {
            third.push(raise(0, RaiseMode::Sync));
            third.push(raise(1, RaiseMode::Sync));
            third.push(raise(2, RaiseMode::Sync));
        }
        let wider = Profile::from_trace(&Trace { records: third }, 5);
        assert_ne!(sync.shape_hash(), wider.shape_hash());
    }

    #[test]
    fn shape_hash_sees_handler_sequences() {
        use pdo_ir::FuncId;
        let base = phase_trace(10);
        let plain = Profile::from_trace(&base, 5);
        let mut with_handlers = base.clone();
        for d in 0..10u64 {
            with_handlers.records.push(TraceRecord::HandlerEnter {
                event: EventId(0),
                handler: FuncId(7),
                dispatch: d,
                at: 0,
            });
            with_handlers.records.push(TraceRecord::HandlerExit {
                event: EventId(0),
                handler: FuncId(7),
                dispatch: d,
                at: 0,
            });
        }
        let seq = Profile::from_trace(&with_handlers, 5);
        assert_ne!(plain.shape_hash(), seq.shape_hash());
    }

    #[test]
    fn shape_hash_sees_threshold() {
        let t = phase_trace(10);
        assert_ne!(
            Profile::from_trace(&t, 5).shape_hash(),
            Profile::from_trace(&t, 6).shape_hash()
        );
    }
}
