//! The handler graph (paper §3.1, Fig 8).
//!
//! Handler-level profiling answers two questions the event graph cannot:
//!
//! 1. **Which handlers run, in what order, when an event fires?** The
//!    registry is dynamic, so this is only observable from execution. If
//!    every dispatch of an event executed the same handler sequence, that
//!    sequence is *stable* and eligible for merging (Fig 7).
//! 2. **Which synchronous raises nest inside which handlers?** A raise of
//!    `Seg2Net` from inside a `SegFromUser` handler (Fig 8) means the
//!    child's handlers can be *subsumed* into the parent's super-handler
//!    (Fig 9).

use pdo_events::{Trace, TraceRecord};
use pdo_ir::{EventId, FuncId, RaiseMode};
use std::collections::BTreeMap;

/// An observed handler sequence with its occurrence count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HandlerSeq {
    /// Handlers in execution order.
    pub handlers: Vec<FuncId>,
    /// How many dispatches executed exactly this sequence.
    pub count: u64,
}

/// A synchronous raise observed inside a handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NestedRaise {
    /// The event whose handler performed the raise.
    pub parent_event: EventId,
    /// The handler that raised.
    pub handler: FuncId,
    /// The raised (child) event.
    pub child_event: EventId,
}

/// Per-event handler observations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HandlerGraph {
    /// For each event: the distinct handler sequences observed.
    pub sequences: BTreeMap<EventId, Vec<HandlerSeq>>,
    /// Counts of synchronous raises nested within handlers.
    pub nested: BTreeMap<NestedRaise, u64>,
}

impl HandlerGraph {
    /// An empty handler graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the handler graph from a trace containing handler records.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut graph = HandlerGraph::new();
        // Collect per-dispatch sequences.
        let mut dispatches: BTreeMap<u64, (EventId, Vec<FuncId>)> = BTreeMap::new();
        // Stack of currently-open handler frames.
        let mut stack: Vec<(EventId, FuncId)> = Vec::new();

        for record in &trace.records {
            match record {
                TraceRecord::HandlerEnter {
                    event,
                    handler,
                    dispatch,
                    ..
                } => {
                    dispatches
                        .entry(*dispatch)
                        .or_insert_with(|| (*event, Vec::new()))
                        .1
                        .push(*handler);
                    stack.push((*event, *handler));
                }
                TraceRecord::HandlerExit { .. } => {
                    stack.pop();
                }
                TraceRecord::Raise { event, mode, .. } => {
                    if *mode == RaiseMode::Sync {
                        if let Some(&(parent_event, handler)) = stack.last() {
                            *graph
                                .nested
                                .entry(NestedRaise {
                                    parent_event,
                                    handler,
                                    child_event: *event,
                                })
                                .or_insert(0) += 1;
                        }
                    }
                }
                // Fault records carry no handler-nesting information.
                TraceRecord::Fault { .. } => {}
            }
        }

        // Fold dispatches into distinct sequences per event.
        for (_, (event, handlers)) in dispatches {
            let seqs = graph.sequences.entry(event).or_default();
            match seqs.iter_mut().find(|s| s.handlers == handlers) {
                Some(s) => s.count += 1,
                None => seqs.push(HandlerSeq { handlers, count: 1 }),
            }
        }
        graph
    }

    /// The unique stable handler sequence for `event`, if every observed
    /// dispatch executed the same one.
    pub fn stable_sequence(&self, event: EventId) -> Option<&[FuncId]> {
        match self.sequences.get(&event)?.as_slice() {
            [only] => Some(&only.handlers),
            _ => None,
        }
    }

    /// Total dispatches observed for `event`.
    pub fn dispatch_count(&self, event: EventId) -> u64 {
        self.sequences
            .get(&event)
            .map(|seqs| seqs.iter().map(|s| s.count).sum())
            .unwrap_or(0)
    }

    /// How many times `handler` (running for `parent`) synchronously raised
    /// `child`.
    pub fn nested_count(&self, parent: EventId, handler: FuncId, child: EventId) -> u64 {
        self.nested
            .get(&NestedRaise {
                parent_event: parent,
                handler,
                child_event: child,
            })
            .copied()
            .unwrap_or(0)
    }

    /// Events that `handler` of `parent` is observed to synchronously raise,
    /// with counts.
    pub fn raises_from(&self, parent: EventId, handler: FuncId) -> Vec<(EventId, u64)> {
        self.nested
            .iter()
            .filter(|(k, _)| k.parent_event == parent && k.handler == handler)
            .map(|(k, &v)| (k.child_event, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enter(event: u32, handler: u32, dispatch: u64) -> TraceRecord {
        TraceRecord::HandlerEnter {
            event: EventId(event),
            handler: FuncId(handler),
            dispatch,
            at: 0,
        }
    }
    fn exit(event: u32, handler: u32, dispatch: u64) -> TraceRecord {
        TraceRecord::HandlerExit {
            event: EventId(event),
            handler: FuncId(handler),
            dispatch,
            at: 0,
        }
    }
    fn raise(event: u32, mode: RaiseMode, depth: u32) -> TraceRecord {
        TraceRecord::Raise {
            event: EventId(event),
            mode,
            depth,
            at: 0,
        }
    }

    #[test]
    fn stable_sequence_detected() {
        let t = Trace {
            records: vec![
                raise(0, RaiseMode::Sync, 0),
                enter(0, 10, 0),
                exit(0, 10, 0),
                enter(0, 11, 0),
                exit(0, 11, 0),
                raise(0, RaiseMode::Sync, 0),
                enter(0, 10, 1),
                exit(0, 10, 1),
                enter(0, 11, 1),
                exit(0, 11, 1),
            ],
        };
        let g = HandlerGraph::from_trace(&t);
        assert_eq!(
            g.stable_sequence(EventId(0)),
            Some(&[FuncId(10), FuncId(11)][..])
        );
        assert_eq!(g.dispatch_count(EventId(0)), 2);
    }

    #[test]
    fn unstable_sequences_not_merged() {
        let t = Trace {
            records: vec![
                enter(0, 10, 0),
                exit(0, 10, 0),
                enter(0, 11, 1), // second dispatch ran a different handler
                exit(0, 11, 1),
            ],
        };
        let g = HandlerGraph::from_trace(&t);
        assert_eq!(g.stable_sequence(EventId(0)), None);
        assert_eq!(g.sequences[&EventId(0)].len(), 2);
        assert_eq!(g.dispatch_count(EventId(0)), 2);
    }

    #[test]
    fn nested_sync_raise_attributed_to_handler() {
        // Handler 10 of event 0 synchronously raises event 1 (Fig 8 shape).
        let t = Trace {
            records: vec![
                raise(0, RaiseMode::Sync, 0),
                enter(0, 10, 0),
                raise(1, RaiseMode::Sync, 1),
                enter(1, 20, 1),
                exit(1, 20, 1),
                exit(0, 10, 0),
            ],
        };
        let g = HandlerGraph::from_trace(&t);
        assert_eq!(g.nested_count(EventId(0), FuncId(10), EventId(1)), 1);
        assert_eq!(g.raises_from(EventId(0), FuncId(10)), vec![(EventId(1), 1)]);
        // The inner handler raised nothing.
        assert!(g.raises_from(EventId(1), FuncId(20)).is_empty());
    }

    #[test]
    fn async_raise_inside_handler_not_nested() {
        let t = Trace {
            records: vec![
                enter(0, 10, 0),
                raise(1, RaiseMode::Async, 1),
                raise(2, RaiseMode::Timed, 1),
                exit(0, 10, 0),
            ],
        };
        let g = HandlerGraph::from_trace(&t);
        assert!(g.nested.is_empty());
    }

    #[test]
    fn top_level_raise_not_nested() {
        let t = Trace {
            records: vec![raise(0, RaiseMode::Sync, 0), raise(1, RaiseMode::Sync, 0)],
        };
        let g = HandlerGraph::from_trace(&t);
        assert!(g.nested.is_empty());
    }

    #[test]
    fn deeply_nested_raise_attributed_to_innermost() {
        let t = Trace {
            records: vec![
                enter(0, 10, 0),
                enter(1, 20, 1),
                raise(2, RaiseMode::Sync, 2),
                exit(1, 20, 1),
                exit(0, 10, 0),
            ],
        };
        let g = HandlerGraph::from_trace(&t);
        assert_eq!(g.nested_count(EventId(1), FuncId(20), EventId(2)), 1);
        assert_eq!(g.nested_count(EventId(0), FuncId(10), EventId(2)), 0);
    }

    #[test]
    fn empty_trace_yields_empty_graph() {
        let g = HandlerGraph::from_trace(&Trace::new());
        assert!(g.sequences.is_empty());
        assert!(g.nested.is_empty());
        assert_eq!(g.dispatch_count(EventId(0)), 0);
        assert_eq!(g.stable_sequence(EventId(0)), None);
    }
}
