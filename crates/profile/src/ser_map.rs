//! Serde adapter: (de)serializes `BTreeMap`s with non-string keys as entry
//! lists, so profiles round-trip through JSON.

use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::collections::BTreeMap;

/// Serializes a map as a `Vec` of `(key, value)` pairs.
///
/// # Errors
///
/// Propagates serializer errors.
pub fn serialize<K, V, S>(map: &BTreeMap<K, V>, serializer: S) -> Result<S::Ok, S::Error>
where
    K: Serialize + Ord,
    V: Serialize,
    S: Serializer,
{
    let entries: Vec<(&K, &V)> = map.iter().collect();
    entries.serialize(serializer)
}

/// Deserializes a map from a `Vec` of `(key, value)` pairs.
///
/// # Errors
///
/// Propagates deserializer errors.
pub fn deserialize<'de, K, V, D>(deserializer: D) -> Result<BTreeMap<K, V>, D::Error>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
    D: Deserializer<'de>,
{
    let entries: Vec<(K, V)> = Vec::deserialize(deserializer)?;
    Ok(entries.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Holder {
        #[serde(with = "super")]
        map: BTreeMap<(u32, u32), String>,
    }

    #[test]
    fn tuple_keys_roundtrip_through_json() {
        let mut map = BTreeMap::new();
        map.insert((1, 2), "a".to_string());
        map.insert((3, 4), "b".to_string());
        let h = Holder { map };
        let json = serde_json::to_string(&h).unwrap();
        let back: Holder = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
