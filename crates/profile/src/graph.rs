//! The event graph (paper Fig 4 / Fig 5).

use pdo_events::{Trace, TraceRecord};
use pdo_ir::{EventId, Module, RaiseMode};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Activation-mode classification of an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeMode {
    /// Every traversal raised the successor synchronously.
    Sync,
    /// Every traversal raised the successor asynchronously (or timed).
    Async,
    /// A mix of both.
    Mixed,
}

/// Weight and activation statistics of one edge.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeData {
    /// Times the successor immediately followed the predecessor.
    pub weight: u64,
    /// Traversals where the successor was raised synchronously.
    pub sync: u64,
    /// Traversals where the successor was raised asynchronously or timed.
    pub asynchronous: u64,
}

impl EdgeData {
    /// The edge's activation classification.
    pub fn mode(&self) -> EdgeMode {
        match (self.sync, self.asynchronous) {
            (_, 0) => EdgeMode::Sync,
            (0, _) => EdgeMode::Async,
            _ => EdgeMode::Mixed,
        }
    }

    /// True when the edge only ever carried synchronous activations, making
    /// it eligible for chain/subsumption optimization.
    pub fn is_pure_sync(&self) -> bool {
        self.asynchronous == 0 && self.sync > 0
    }
}

/// A weighted directed multigraph over events.
///
/// Built with the `GraphBuilder` algorithm of Fig 4: consecutive raises
/// `(prev, next)` in the trace add (or bump) the edge `prev → next`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EventGraph {
    /// Occurrence count per event (node weights).
    pub nodes: BTreeMap<EventId, u64>,
    /// Edge data keyed by `(from, to)`.
    pub edges: BTreeMap<(EventId, EventId), EdgeData>,
}

impl EventGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the Fig 4 `GraphBuilder` over a trace's raise records.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut g = EventGraph::new();
        let mut prev: Option<EventId> = None;
        for record in &trace.records {
            let TraceRecord::Raise { event, mode, .. } = record else {
                continue;
            };
            *g.nodes.entry(*event).or_insert(0) += 1;
            if let Some(p) = prev {
                let data = g.edges.entry((p, *event)).or_default();
                data.weight += 1;
                match mode {
                    RaiseMode::Sync => data.sync += 1,
                    RaiseMode::Async | RaiseMode::Timed => data.asynchronous += 1,
                }
            }
            prev = Some(*event);
        }
        g
    }

    /// The reduced graph: edges with `weight >= threshold` and the nodes
    /// they touch ("we first discard from the event graph edges whose
    /// weights are below the threshold T", §3.1).
    pub fn reduce(&self, threshold: u64) -> EventGraph {
        let mut g = EventGraph::new();
        for (&(from, to), &data) in &self.edges {
            if data.weight >= threshold {
                g.edges.insert((from, to), data);
                g.nodes
                    .insert(from, self.nodes.get(&from).copied().unwrap_or(0));
                g.nodes
                    .insert(to, self.nodes.get(&to).copied().unwrap_or(0));
            }
        }
        g
    }

    /// Outgoing edges of `event`.
    pub fn successors(&self, event: EventId) -> impl Iterator<Item = (EventId, &EdgeData)> {
        self.edges
            .range((event, EventId(0))..=(event, EventId(u32::MAX)))
            .map(|(&(_, to), data)| (to, data))
    }

    /// Incoming edges of `event` (linear scan; reporting only).
    pub fn predecessors(&self, event: EventId) -> Vec<(EventId, &EdgeData)> {
        self.edges
            .iter()
            .filter(|(&(_, to), _)| to == event)
            .map(|(&(from, _), data)| (from, data))
            .collect()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Graphviz rendering with weights; solid edges are synchronous, dashed
    /// asynchronous (the key of Fig 5), bold both-styles for mixed.
    pub fn to_dot(&self, module: &Module) -> String {
        let mut out = String::from("digraph events {\n  rankdir=TB;\n  node [shape=box];\n");
        for (&node, &count) in &self.nodes {
            let _ = writeln!(
                out,
                "  \"{}\" [label=\"{} ({count})\"];",
                module.event_name(node),
                module.event_name(node)
            );
        }
        for (&(from, to), data) in &self.edges {
            let style = match data.mode() {
                EdgeMode::Sync => "solid",
                EdgeMode::Async => "dashed",
                EdgeMode::Mixed => "bold",
            };
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\", style={}];",
                module.event_name(from),
                module.event_name(to),
                data.weight,
                style
            );
        }
        out.push_str("}\n");
        out
    }

    /// A compact text listing (for reports): one `from -> to weight mode`
    /// line per edge, sorted by descending weight.
    pub fn edge_listing(&self, module: &Module) -> String {
        let mut edges: Vec<_> = self.edges.iter().collect();
        edges.sort_by(|a, b| b.1.weight.cmp(&a.1.weight).then(a.0.cmp(b.0)));
        let mut out = String::new();
        for (&(from, to), data) in edges {
            let _ = writeln!(
                out,
                "{:>6}  {:5}  {} -> {}",
                data.weight,
                match data.mode() {
                    EdgeMode::Sync => "sync",
                    EdgeMode::Async => "async",
                    EdgeMode::Mixed => "mixed",
                },
                module.event_name(from),
                module.event_name(to)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raise(event: u32, mode: RaiseMode) -> TraceRecord {
        TraceRecord::Raise {
            event: EventId(event),
            mode,
            depth: 0,
            at: 0,
        }
    }

    fn trace_of(seq: &[(u32, RaiseMode)]) -> Trace {
        Trace {
            records: seq.iter().map(|&(e, m)| raise(e, m)).collect(),
        }
    }

    #[test]
    fn graph_builder_counts_consecutive_pairs() {
        // A B A B A  =>  A->B x2, B->A x2
        let t = trace_of(&[
            (0, RaiseMode::Sync),
            (1, RaiseMode::Sync),
            (0, RaiseMode::Sync),
            (1, RaiseMode::Sync),
            (0, RaiseMode::Sync),
        ]);
        let g = EventGraph::from_trace(&t);
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edges[&(EventId(0), EventId(1))].weight, 2);
        assert_eq!(g.edges[&(EventId(1), EventId(0))].weight, 2);
        assert_eq!(g.nodes[&EventId(0)], 3);
    }

    #[test]
    fn edge_mode_classification() {
        let t = trace_of(&[
            (0, RaiseMode::Sync),
            (1, RaiseMode::Sync),
            (0, RaiseMode::Async),
            (1, RaiseMode::Async),
            (2, RaiseMode::Timed),
        ]);
        let g = EventGraph::from_trace(&t);
        // 0->1 traversed twice: once sync, once async => mixed.
        assert_eq!(g.edges[&(EventId(0), EventId(1))].mode(), EdgeMode::Mixed);
        // 1->0: async only.
        assert_eq!(g.edges[&(EventId(1), EventId(0))].mode(), EdgeMode::Async);
        // 1->2 timed counts as async.
        assert_eq!(g.edges[&(EventId(1), EventId(2))].mode(), EdgeMode::Async);
    }

    #[test]
    fn reduce_drops_light_edges_and_orphan_nodes() {
        let mut t = Vec::new();
        for _ in 0..10 {
            t.push((0, RaiseMode::Sync));
            t.push((1, RaiseMode::Sync));
        }
        t.push((2, RaiseMode::Sync)); // 1->2 weight 1
        let g = EventGraph::from_trace(&trace_of(&t));
        let r = g.reduce(5);
        assert!(r.edges.contains_key(&(EventId(0), EventId(1))));
        assert!(r.edges.contains_key(&(EventId(1), EventId(0))));
        assert!(!r.edges.contains_key(&(EventId(1), EventId(2))));
        assert!(!r.nodes.contains_key(&EventId(2)));
    }

    #[test]
    fn reduce_keeps_node_occurrence_counts() {
        let t = trace_of(&[
            (0, RaiseMode::Sync),
            (1, RaiseMode::Sync),
            (0, RaiseMode::Sync),
        ]);
        let g = EventGraph::from_trace(&t);
        let r = g.reduce(1);
        assert_eq!(r.nodes[&EventId(0)], 2);
    }

    #[test]
    fn successors_iterates_in_order() {
        let t = trace_of(&[
            (5, RaiseMode::Sync),
            (1, RaiseMode::Sync),
            (5, RaiseMode::Sync),
            (3, RaiseMode::Sync),
        ]);
        let g = EventGraph::from_trace(&t);
        let succ: Vec<u32> = g.successors(EventId(5)).map(|(e, _)| e.0).collect();
        assert_eq!(succ, vec![1, 3]);
        assert_eq!(g.predecessors(EventId(5)).len(), 1);
    }

    #[test]
    fn empty_trace_empty_graph() {
        let g = EventGraph::from_trace(&Trace::new());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn single_event_has_node_but_no_edges() {
        let g = EventGraph::from_trace(&trace_of(&[(0, RaiseMode::Sync)]));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn dot_output_contains_names_and_styles() {
        let mut m = Module::new();
        m.add_event("A");
        m.add_event("B");
        let t = trace_of(&[(0, RaiseMode::Sync), (1, RaiseMode::Async)]);
        let g = EventGraph::from_trace(&t);
        let dot = g.to_dot(&m);
        assert!(dot.contains("\"A\" -> \"B\""));
        assert!(dot.contains("style=dashed"));
        let listing = g.edge_listing(&m);
        assert!(listing.contains("A -> B"));
    }

    #[test]
    fn self_loop_edges_supported() {
        let g = EventGraph::from_trace(&trace_of(&[(0, RaiseMode::Sync), (0, RaiseMode::Sync)]));
        assert_eq!(g.edges[&(EventId(0), EventId(0))].weight, 1);
    }
}
