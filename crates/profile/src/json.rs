//! A minimal JSON reader/writer for profile artifacts.
//!
//! The build environment has no registry access (see EXPERIMENTS.md), so the
//! profile store cannot use `serde_json`; this module implements the small
//! JSON subset the store needs — objects, arrays, unsigned integers, and
//! strings — with precise error positions for malformed input.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value (subset: no floats, no escapes beyond `\"`/`\\`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (profiles only store counts and ids).
    UInt(u64),
    /// String literal.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with preserved-order-irrelevant keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as `u64`, or a type error.
    pub fn as_u64(&self) -> Result<u64, ParseError> {
        match self {
            Json::UInt(n) => Ok(*n),
            other => Err(ParseError::type_mismatch("unsigned integer", other)),
        }
    }

    /// The value as an array slice, or a type error.
    pub fn as_arr(&self) -> Result<&[Json], ParseError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(ParseError::type_mismatch("array", other)),
        }
    }

    /// A required object member, or an error naming the missing key.
    pub fn get(&self, key: &str) -> Result<&Json, ParseError> {
        match self {
            Json::Obj(map) => map.get(key).ok_or_else(|| ParseError {
                at: 0,
                msg: format!("missing object key `{key}`"),
            }),
            other => Err(ParseError::type_mismatch("object", other)),
        }
    }

    /// Serializes with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Flat arrays of scalars print on one line; nested ones wrap.
                let flat = items
                    .iter()
                    .all(|i| !matches!(i, Json::Arr(_) | Json::Obj(_)));
                if flat {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, 0);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (i, item) in items.iter().enumerate() {
                        let _ = write!(out, "{pad}  ");
                        item.write(out, indent + 1);
                        if i + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    let _ = write!(out, "{pad}]");
                }
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    let _ = write!(out, "{pad}  \"{k}\": ");
                    v.write(out, indent + 1);
                    if i + 1 < map.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

/// A parse or schema error with a byte offset (0 for schema errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input (0 when not positional).
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    fn type_mismatch(wanted: &str, got: &Json) -> Self {
        let kind = match got {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::UInt(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        };
        ParseError {
            at: 0,
            msg: format!("expected {wanted}, found {kind}"),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after value"));
    }
    Ok(value)
}

fn err(at: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        at,
        msg: msg.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", Json::Null),
        Some(&c) => Err(err(*pos, format!("unexpected character `{}`", c as char))),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, kw: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(kw.as_bytes()) {
        *pos += kw.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{kw}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are utf8");
    text.parse::<u64>()
        .map(Json::UInt)
        .map_err(|_| err(start, "integer out of range"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    _ => return Err(err(*pos, "unsupported escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (profiles only emit ASCII keys, but
                // be safe for hand-edited files).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf8 in string"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structure() {
        let mut obj = BTreeMap::new();
        obj.insert(
            "k".to_string(),
            Json::Arr(vec![Json::UInt(1), Json::UInt(2)]),
        );
        obj.insert("s".to_string(), Json::Str("a\"b\\c".to_string()));
        obj.insert(
            "nested".to_string(),
            Json::Arr(vec![
                Json::Arr(vec![Json::UInt(7)]),
                Json::Obj(BTreeMap::new()),
            ]),
        );
        let v = Json::Obj(obj);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{ not json").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12x").is_err());
        assert!(parse("").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_report_type_mismatches() {
        let v = parse("{\"a\": [3]}").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[0].as_u64().unwrap(),
            3
        );
        assert!(v.get("b").is_err());
        assert!(v.get("a").unwrap().as_u64().is_err());
        assert!(Json::UInt(1).get("x").is_err());
    }
}
