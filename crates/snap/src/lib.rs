//! # pdo-snap — durable snapshot framing
//!
//! A small, dependency-light binary format for persisting session and
//! server snapshots. The frame layout is
//!
//! ```text
//! magic (8 bytes) | version (u32 LE) | payload_len (u64 LE)
//! | payload | fnv1a64(all preceding bytes) (u64 LE)
//! ```
//!
//! so a reader can reject foreign files ([`SnapshotError::BadMagic`]),
//! future formats ([`SnapshotError::UnsupportedVersion`]), torn writes
//! ([`SnapshotError::Truncated`]) and bit rot
//! ([`SnapshotError::ChecksumMismatch`]) before decoding a single payload
//! byte — always as a typed error, never a panic.
//!
//! [`SnapWriter`] and [`SnapReader`] provide the primitive vocabulary
//! (fixed-width little-endian integers, length-prefixed byte strings,
//! tagged [`Value`]s, and whole [`Module`]s carried as IR text, which
//! round-trips exactly). [`write_atomic`] persists a frame with the
//! write-temp-then-rename discipline so a crash mid-write leaves either
//! the old file or the new one, never a torn hybrid.

use pdo_ir::{display::print_module, parse::parse_module, Module, Value};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::Path;

/// Leading bytes of every snapshot frame.
pub const MAGIC: [u8; 8] = *b"PDOSNAP\0";

/// Current frame version.
pub const VERSION: u32 = 1;

/// A typed decode/persistence failure. Corrupt or truncated input must
/// surface as one of these — decoding never panics.
#[derive(Debug)]
pub enum SnapshotError {
    /// Input ended before a field's bytes: `needed` more than `available`.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The leading bytes are not [`MAGIC`] — not a snapshot file.
    BadMagic,
    /// The frame declares a version this build does not understand.
    UnsupportedVersion(u32),
    /// The trailing FNV-1a checksum does not match the frame contents.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        expected: u64,
        /// Checksum recomputed over the frame.
        actual: u64,
    },
    /// A field decoded but its value is invalid (bad tag, bad UTF-8,
    /// unparsable module text, inconsistent counts...).
    Malformed(String),
    /// Bytes remained after the decoder consumed the full payload.
    TrailingBytes,
    /// The filesystem failed underneath persistence.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated snapshot: needed {needed} bytes, {available} available"
                )
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {VERSION})"
                )
            }
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch: stored {expected:#018x}, computed {actual:#018x}"
            ),
            SnapshotError::Malformed(why) => write!(f, "malformed snapshot: {why}"),
            SnapshotError::TrailingBytes => {
                write!(f, "snapshot has trailing bytes after the payload")
            }
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// Value tag bytes (mirrors the marshaling vocabulary in pdo-events).
const TAG_UNIT: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BOOL: u8 = 2;
const TAG_BYTES: u8 = 3;
const TAG_STR: u8 = 4;

/// Builds a snapshot payload and frames it.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Appends a tagged [`Value`].
    pub fn value(&mut self, v: &Value) {
        match v {
            Value::Unit => self.u8(TAG_UNIT),
            Value::Int(i) => {
                self.u8(TAG_INT);
                self.i64(*i);
            }
            Value::Bool(b) => {
                self.u8(TAG_BOOL);
                self.bool(*b);
            }
            Value::Bytes(b) => {
                self.u8(TAG_BYTES);
                self.bytes(b);
            }
            Value::Str(s) => {
                self.u8(TAG_STR);
                self.str(s);
            }
        }
    }

    /// Appends a whole [`Module`] as its IR text (which parses back to an
    /// identical module).
    pub fn module(&mut self, m: &Module) {
        self.str(&print_module(m));
    }

    /// Payload bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Frames the payload: magic, version, length, payload, checksum.
    pub fn finish(self) -> Vec<u8> {
        self.finish_frame(&MAGIC, VERSION)
    }

    /// As [`SnapWriter::finish`], but under a caller-supplied magic and
    /// version — the same framing discipline reused by other formats
    /// (the `pdo-ingress` wire protocol frames with its own magic so a
    /// network peer can never confuse a wire frame with a durable image).
    pub fn finish_frame(self, magic: &[u8; 8], version: u32) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 28);
        out.extend_from_slice(magic);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.buf);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }
}

/// Total framed length (header + payload + checksum) declared by the
/// frame starting at `bytes`, or `None` when too few bytes have arrived
/// to read the header yet. This is the stream-reassembly primitive: a
/// socket reader calls it on its receive buffer to learn how many bytes
/// to accumulate before handing the exact slice to
/// [`SnapReader::framed`].
///
/// # Errors
///
/// [`SnapshotError::BadMagic`] as soon as the available prefix provably
/// mismatches `magic` (no point buffering more of a foreign stream), and
/// [`SnapshotError::Malformed`] when the declared length cannot fit in
/// memory.
pub fn peek_frame_len(bytes: &[u8], magic: &[u8; 8]) -> Result<Option<usize>, SnapshotError> {
    let probe = bytes.len().min(magic.len());
    if bytes[..probe] != magic[..probe] {
        return Err(SnapshotError::BadMagic);
    }
    let header = magic.len() + 4 + 8;
    if bytes.len() < header {
        return Ok(None);
    }
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len = usize::try_from(payload_len)
        .map_err(|_| SnapshotError::Malformed("payload length overflows usize".into()))?;
    let framed = header
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(8))
        .ok_or_else(|| SnapshotError::Malformed("payload length overflows usize".into()))?;
    Ok(Some(framed))
}

/// Decodes a framed snapshot: validates magic, version, length, and
/// checksum up front, then hands out payload fields.
#[derive(Debug)]
pub struct SnapReader<'a> {
    payload: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Validates the frame around `bytes` and positions a reader at the
    /// start of the payload.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] / [`BadMagic`](SnapshotError::BadMagic)
    /// / [`UnsupportedVersion`](SnapshotError::UnsupportedVersion) /
    /// [`ChecksumMismatch`](SnapshotError::ChecksumMismatch) /
    /// [`TrailingBytes`](SnapshotError::TrailingBytes) describe exactly how
    /// the frame is unusable.
    pub fn new(bytes: &'a [u8]) -> Result<SnapReader<'a>, SnapshotError> {
        SnapReader::framed(bytes, &MAGIC, VERSION)
    }

    /// As [`SnapReader::new`], but validating against a caller-supplied
    /// magic and version (see [`SnapWriter::finish_frame`]).
    ///
    /// # Errors
    ///
    /// As [`SnapReader::new`].
    pub fn framed(
        bytes: &'a [u8],
        magic: &[u8; 8],
        expect_version: u32,
    ) -> Result<SnapReader<'a>, SnapshotError> {
        let header = magic.len() + 4 + 8;
        if bytes.len() < header {
            return Err(SnapshotError::Truncated {
                needed: header,
                available: bytes.len(),
            });
        }
        if bytes[..magic.len()] != *magic {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != expect_version {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let payload_len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let payload_len = usize::try_from(payload_len)
            .map_err(|_| SnapshotError::Malformed("payload length overflows usize".into()))?;
        let framed = header
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8))
            .ok_or_else(|| SnapshotError::Malformed("payload length overflows usize".into()))?;
        if bytes.len() < framed {
            return Err(SnapshotError::Truncated {
                needed: framed,
                available: bytes.len(),
            });
        }
        if bytes.len() > framed {
            return Err(SnapshotError::TrailingBytes);
        }
        let body = &bytes[..framed - 8];
        let expected = u64::from_le_bytes(bytes[framed - 8..framed].try_into().expect("8 bytes"));
        let actual = fnv1a64(body);
        if expected != actual {
            return Err(SnapshotError::ChecksumMismatch { expected, actual });
        }
        Ok(SnapReader {
            payload: &bytes[header..framed - 8],
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.payload.len() - self.pos;
        if available < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                available,
            });
        }
        let out = &self.payload[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Truncated`] if the payload is exhausted. The same
    /// holds for every `take_*` method below.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// See [`SnapReader::take_u8`].
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// See [`SnapReader::take_u8`].
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// See [`SnapReader::take_u8`].
    pub fn take_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a bool byte.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on a byte that is neither 0 nor 1, and
    /// truncation as in [`SnapReader::take_u8`].
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Malformed(format!(
                "invalid bool byte {b:#04x}"
            ))),
        }
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// See [`SnapReader::take_u8`].
    pub fn take_bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let len = self.take_u64()?;
        let len = usize::try_from(len)
            .map_err(|_| SnapshotError::Malformed("byte-string length overflows usize".into()))?;
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on invalid UTF-8, plus truncation.
    pub fn take_str(&mut self) -> Result<String, SnapshotError> {
        String::from_utf8(self.take_bytes()?)
            .map_err(|e| SnapshotError::Malformed(format!("invalid UTF-8 string: {e}")))
    }

    /// Reads a tagged [`Value`].
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on an unknown tag, plus truncation.
    pub fn take_value(&mut self) -> Result<Value, SnapshotError> {
        match self.take_u8()? {
            TAG_UNIT => Ok(Value::Unit),
            TAG_INT => Ok(Value::Int(self.take_i64()?)),
            TAG_BOOL => Ok(Value::Bool(self.take_bool()?)),
            TAG_BYTES => Ok(Value::Bytes(self.take_bytes()?.into())),
            TAG_STR => Ok(Value::Str(self.take_str()?.into())),
            t => Err(SnapshotError::Malformed(format!(
                "unknown value tag {t:#04x}"
            ))),
        }
    }

    /// Reads a [`Module`] from its IR text.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when the text does not parse, plus
    /// truncation.
    pub fn take_module(&mut self) -> Result<Module, SnapshotError> {
        let text = self.take_str()?;
        parse_module(&text)
            .map_err(|e| SnapshotError::Malformed(format!("module does not parse: {e}")))
    }

    /// Payload bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.payload.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingBytes`] if fields remain.
    pub fn finish(self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes)
        }
    }
}

/// Persists `bytes` at `path` atomically: writes a sibling temp file,
/// syncs it, then renames it over `path`. A crash mid-write leaves either
/// the previous file or the complete new one.
///
/// # Errors
///
/// [`SnapshotError::Io`] on any filesystem failure.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            path.with_file_name(n)
        }
        None => {
            return Err(SnapshotError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "snapshot path has no file name",
            )))
        }
    };
    let mut f = fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a snapshot file whole.
///
/// # Errors
///
/// [`SnapshotError::Io`] on any filesystem failure. The bytes are returned
/// unvalidated; frame validation happens in [`SnapReader::new`].
pub fn read(path: &Path) -> Result<Vec<u8>, SnapshotError> {
    Ok(fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdo_ir::{FunctionBuilder, RaiseMode};

    fn sample_frame() -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u8(7);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 3);
        w.i64(-42);
        w.bool(true);
        w.bytes(b"raw bytes");
        w.str("a string");
        w.value(&Value::Unit);
        w.value(&Value::Int(-7));
        w.value(&Value::Bool(false));
        w.value(&Value::bytes(vec![1, 2, 3]));
        w.value(&Value::str("hello"));
        w.finish()
    }

    #[test]
    fn primitives_round_trip() {
        let frame = sample_frame();
        let mut r = SnapReader::new(&frame).unwrap();
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.take_i64().unwrap(), -42);
        assert!(r.take_bool().unwrap());
        assert_eq!(r.take_bytes().unwrap(), b"raw bytes");
        assert_eq!(r.take_str().unwrap(), "a string");
        assert_eq!(r.take_value().unwrap(), Value::Unit);
        assert_eq!(r.take_value().unwrap(), Value::Int(-7));
        assert_eq!(r.take_value().unwrap(), Value::Bool(false));
        assert_eq!(r.take_value().unwrap(), Value::bytes(vec![1, 2, 3]));
        assert_eq!(r.take_value().unwrap(), Value::str("hello"));
        r.finish().unwrap();
    }

    #[test]
    fn module_round_trips_exactly() {
        let mut m = Module::new();
        let ev = m.add_event("Tick");
        let g = m.add_global("count", Value::Int(0));
        let mut f = FunctionBuilder::new("on_tick", 1);
        let c = f.load_global(g);
        let p = f.param(0);
        let sum = f.bin(pdo_ir::BinOp::Add, c, p);
        f.store_global(g, sum);
        f.raise(ev, RaiseMode::Async, &[]);
        f.ret(None);
        m.add_function(f.finish());

        let mut w = SnapWriter::new();
        w.module(&m);
        let frame = w.finish();
        let mut r = SnapReader::new(&frame).unwrap();
        assert_eq!(r.take_module().unwrap(), m);
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let frame = sample_frame();
        for len in 0..frame.len() {
            let err = match SnapReader::new(&frame[..len]) {
                Err(e) => e,
                Ok(mut r) => loop {
                    // A prefix that still frames (impossible here, but keep
                    // the loop total): drain fields until one fails.
                    match r.take_u8() {
                        Ok(_) => {}
                        Err(e) => break e,
                    }
                },
            };
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
                ),
                "prefix of {len} bytes gave {err}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = sample_frame();
        for byte in 0..frame.len() {
            let mut bad = frame.clone();
            bad[byte] ^= 1 << (byte % 8);
            let err = SnapReader::new(&bad).expect_err("flip must be rejected");
            match byte {
                0..=7 => assert!(matches!(err, SnapshotError::BadMagic), "byte {byte}: {err}"),
                8..=11 => assert!(
                    matches!(err, SnapshotError::UnsupportedVersion(_)),
                    "byte {byte}: {err}"
                ),
                12..=19 => assert!(
                    matches!(
                        err,
                        SnapshotError::Truncated { .. } | SnapshotError::TrailingBytes
                    ),
                    "byte {byte}: {err}"
                ),
                _ => assert!(
                    matches!(err, SnapshotError::ChecksumMismatch { .. }),
                    "byte {byte}: {err}"
                ),
            }
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut frame = sample_frame();
        frame.push(0);
        assert!(matches!(
            SnapReader::new(&frame),
            Err(SnapshotError::TrailingBytes)
        ));
    }

    #[test]
    fn foreign_version_is_rejected() {
        let mut frame = SnapWriter::new().finish();
        frame[8] = 99;
        assert!(matches!(
            SnapReader::new(&frame),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn reader_rejects_overconsumption_and_bad_tags() {
        let mut w = SnapWriter::new();
        w.u8(200); // not a bool, not a value tag
        let frame = w.finish();

        let mut r = SnapReader::new(&frame).unwrap();
        assert!(matches!(r.take_bool(), Err(SnapshotError::Malformed(_))));

        let mut r = SnapReader::new(&frame).unwrap();
        assert!(matches!(r.take_value(), Err(SnapshotError::Malformed(_))));

        let mut r = SnapReader::new(&frame).unwrap();
        assert!(matches!(
            r.take_u64(),
            Err(SnapshotError::Truncated {
                needed: 8,
                available: 1
            })
        ));

        let r = SnapReader::new(&frame).unwrap();
        assert!(matches!(r.finish(), Err(SnapshotError::TrailingBytes)));
    }

    #[test]
    fn foreign_magic_frames_round_trip_and_stay_disjoint() {
        const WIRE: [u8; 8] = *b"PDOWIRE\0";
        let mut w = SnapWriter::new();
        w.u64(42);
        w.str("hello");
        let frame = w.finish_frame(&WIRE, 3);

        // Streams reassemble via peek: short prefixes ask for more bytes,
        // the full header declares the exact framed length.
        for cut in 0..20.min(frame.len()) {
            assert!(matches!(peek_frame_len(&frame[..cut], &WIRE), Ok(None)));
        }
        assert_eq!(peek_frame_len(&frame, &WIRE).unwrap(), Some(frame.len()));
        // A provably foreign prefix fails fast, even before 8 bytes.
        assert!(matches!(
            peek_frame_len(b"NOTPDO", &WIRE),
            Err(SnapshotError::BadMagic)
        ));

        let mut r = SnapReader::framed(&frame, &WIRE, 3).unwrap();
        assert_eq!(r.take_u64().unwrap(), 42);
        assert_eq!(r.take_str().unwrap(), "hello");
        r.finish().unwrap();

        // Wrong magic or wrong version is typed, and a wire frame is
        // never readable as a durable image.
        assert!(matches!(
            SnapReader::framed(&frame, &MAGIC, 3),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            SnapReader::framed(&frame, &WIRE, 4),
            Err(SnapshotError::UnsupportedVersion(3))
        ));
        assert!(matches!(
            SnapReader::new(&frame),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join(format!("pdo-snap-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("image.pdosnap");

        let frame = sample_frame();
        write_atomic(&path, &frame).unwrap();
        assert_eq!(read(&path).unwrap(), frame);

        // Overwrite goes through the same temp+rename path.
        let frame2 = SnapWriter::new().finish();
        write_atomic(&path, &frame2).unwrap();
        assert_eq!(read(&path).unwrap(), frame2);
        assert!(!dir.join("image.pdosnap.tmp").exists());

        fs::remove_dir_all(&dir).unwrap();
    }
}
