//! X client experiments: Fig 13 (Scroll and Popup event times).

use pdo::{optimize, Optimization, OptimizeOptions};
use pdo_cactus::EventProgram;
use pdo_events::TraceConfig;
use pdo_profile::Profile;
use pdo_xwin::{x_client_program, XClient};

/// A prepared X client experiment.
pub struct XLab {
    /// The unoptimized client program.
    pub base: EventProgram,
    /// The optimizer-extended program.
    pub opt_program: EventProgram,
    /// The optimization artifacts.
    pub optimization: Optimization,
    /// The gathered profile.
    pub profile: Profile,
}

impl XLab {
    /// Profiles 250 Popup and 250 Scroll gestures (the paper raises each
    /// event 250 times) and optimizes at `threshold`.
    ///
    /// # Panics
    ///
    /// Panics on substrate misconfiguration.
    pub fn prepare(threshold: u64) -> XLab {
        let base = x_client_program();
        let mut client = XClient::new(&base).expect("client");
        client.runtime_mut().set_trace_config(TraceConfig::full());
        for i in 0..250 {
            client.popup(i, i + 1).expect("popup");
            client.scroll(i).expect("scroll");
        }
        let trace = client.runtime_mut().take_trace();
        let profile = Profile::from_trace(&trace, threshold);
        let optimization = optimize(
            &base.module,
            client.runtime().registry(),
            &profile,
            &OptimizeOptions::new(threshold),
        );
        let opt_program = base.with_module(optimization.module.clone());
        XLab {
            base,
            opt_program,
            optimization,
            profile,
        }
    }

    /// A fresh client (chains installed when `optimized`).
    ///
    /// # Panics
    ///
    /// Panics on substrate misconfiguration.
    pub fn client(&self, optimized: bool) -> XClient {
        let program = if optimized {
            &self.opt_program
        } else {
            &self.base
        };
        let mut c = XClient::new(program).expect("client");
        if optimized {
            self.optimization.install_chains(c.runtime_mut());
        }
        c
    }
}

/// One Fig 13 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Gesture / event type.
    pub event: String,
    /// Original time (ns).
    pub orig_ns: f64,
    /// Optimized time (ns).
    pub opt_ns: f64,
}

/// Runs the Fig 13 measurements (`iters` raises per event type).
///
/// # Panics
///
/// Panics on substrate misconfiguration.
pub fn fig13_rows(lab: &XLab, iters: u32) -> Vec<Fig13Row> {
    let mut rows = Vec::new();

    let time_scroll = |optimized: bool| {
        let mut c = lab.client(optimized);
        crate::avg_ns(iters / 10, iters, || {
            c.scroll(42).expect("scroll");
        })
    };
    rows.push(Fig13Row {
        event: "Scroll".to_string(),
        orig_ns: time_scroll(false),
        opt_ns: time_scroll(true),
    });

    let time_popup = |optimized: bool| {
        let mut c = lab.client(optimized);
        crate::avg_ns(iters / 10, iters, || {
            c.popup(10, 20).expect("popup");
        })
    };
    rows.push(Fig13Row {
        event: "Popup".to_string(),
        orig_ns: time_popup(false),
        opt_ns: time_popup(true),
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_optimizes_actions_and_callbacks() {
        let lab = XLab::prepare(100);
        let report = &lab.optimization.report;
        assert!(
            report.events.len() >= 3,
            "{}",
            report.render(&lab.optimization.module)
        );
    }

    #[test]
    fn optimized_client_behaves_identically() {
        let lab = XLab::prepare(100);
        let mut orig = lab.client(false);
        let mut opt = lab.client(true);
        for i in 0..50 {
            orig.popup(i, i * 2).unwrap();
            opt.popup(i, i * 2).unwrap();
            orig.scroll(i).unwrap();
            opt.scroll(i).unwrap();
            orig.plain_click(i, i).unwrap();
            opt.plain_click(i, i).unwrap();
        }
        assert_eq!(orig.state(), opt.state());
        assert!(opt.runtime().cost.fastpath_hits > 0);
    }

    #[test]
    fn conditional_translation_survives_optimization() {
        // The Ctrl check lives inside the merged ButtonPress super-handler;
        // a plain click must still not pop up a menu.
        let lab = XLab::prepare(100);
        let mut opt = lab.client(true);
        opt.plain_click(5, 5).unwrap();
        assert_eq!(opt.state().menus_created, 0);
        opt.popup(5, 5).unwrap();
        assert_eq!(opt.state().menus_created, 1);
    }
}
