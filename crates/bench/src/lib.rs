//! # pdo-bench — the paper-reproduction harness
//!
//! One module per experiment family, each regenerating a table or figure of
//! the PLDI 2002 paper:
//!
//! | module    | paper artifact |
//! |-----------|----------------|
//! | [`video`] | Fig 5 (event graph), Fig 6 (reduced graph), Fig 10 (video player times), Fig 11 (event processing times) |
//! | [`secc`]  | Fig 12 (SecComm push/pop times by packet size) |
//! | [`xcli`]  | Fig 13 (X client Scroll/Popup times) |
//! | [`sizes`] | §4.2 code-size growth |
//! | [`ablate`]| ablations over the optimizer's design choices (§3.2/§5) |
//!
//! The `report` binary prints each table with the paper's reference numbers
//! alongside; the Criterion benches measure the same paths statistically.

pub mod ablate;
pub mod paper;
pub mod secc;
pub mod sizes;
pub mod video;
pub mod xcli;

use std::time::Instant;

/// Measures the average wall-clock nanoseconds of `op` over `iters`
/// iterations (after `warmup` unmeasured ones). The measurement is the
/// *best of three* batch averages — the minimum is robust against
/// scheduler noise on a shared machine, which otherwise swamps the
/// dispatch-overhead deltas when payload work (e.g. DES) dominates.
pub fn avg_ns(warmup: u32, iters: u32, mut op: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        op();
    }
    let batch = iters.max(1);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..batch {
            op();
        }
        let avg = t0.elapsed().as_nanos() as f64 / f64::from(batch);
        if avg < best {
            best = avg;
        }
    }
    best
}

/// Formats a ratio as the paper's `(%)` columns: optimized as a percentage
/// of original.
pub fn percent(optimized: f64, original: f64) -> f64 {
    if original == 0.0 {
        100.0
    } else {
        optimized * 100.0 / original
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_basics() {
        assert!((percent(50.0, 100.0) - 50.0).abs() < 1e-9);
        assert_eq!(percent(1.0, 0.0), 100.0);
    }

    #[test]
    fn avg_ns_counts_iterations() {
        let mut n = 0u32;
        let _ = avg_ns(2, 10, || n += 1);
        assert_eq!(n, 2 + 3 * 10);
    }
}
