//! Code-size measurement (§4.2): the paper counts instructions with
//! `objdump -d program | wc -l`; here the analogue is the module's IR
//! instruction count before and after optimization.
//!
//! The paper's +1.3% / +1.1% growth is relative to *whole binaries*, where
//! "code in event handlers is usually a small fraction of the total program
//! size" (§4.2). Our IR module contains only the event-handler glue — the
//! application and library code the paper's denominators include live in
//! native Rust here — so the IR-relative growth is much larger. The rows
//! report both: raw IR growth and the whole-program-equivalent growth under
//! the documented assumption that handler glue is [`HANDLER_FRACTION`] of a
//! real program.

use crate::secc::SecLab;
use crate::video::VideoLab;

/// Assumed fraction of a whole program that is event-handler glue, used to
/// express IR growth on the paper's whole-binary scale.
pub const HANDLER_FRACTION: f64 = 0.01;

/// One code-size row.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeRow {
    /// Program name.
    pub program: String,
    /// Instructions before optimization.
    pub before: usize,
    /// Instructions after (original + super-handlers).
    pub after: usize,
    /// Growth percentage of the handler IR.
    pub growth_percent: f64,
    /// Whole-program-equivalent growth (IR growth × [`HANDLER_FRACTION`]).
    pub whole_program_percent: f64,
}

/// Computes the code-size rows for the two measured programs.
pub fn size_rows(video: &VideoLab, secc: &SecLab) -> Vec<SizeRow> {
    let mut rows = Vec::new();
    for (name, report) in [
        ("video player", &video.optimization.report),
        ("SecComm", &secc.optimization.report),
    ] {
        let growth = report.code_growth_percent();
        rows.push(SizeRow {
            program: name.to_string(),
            before: report.module_instrs_before,
            after: report.module_instrs_after,
            growth_percent: growth,
            whole_program_percent: growth * HANDLER_FRACTION,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_bounded_and_whole_program_equivalent_small() {
        let video = VideoLab::prepare(crate::video::THRESHOLD);
        let secc = SecLab::prepare(50);
        for row in size_rows(&video, &secc) {
            assert!(row.after > row.before, "{row:?}");
            assert!(
                row.growth_percent > 0.0 && row.growth_percent < 500.0,
                "unexpected IR growth: {row:?}"
            );
            assert!(
                row.whole_program_percent < 5.0,
                "whole-program-equivalent growth should be single-digit: {row:?}"
            );
        }
    }
}
