//! Video-player experiments: Figs 5, 6, 10, 11.

use pdo::{optimize, Optimization, OptimizeOptions};
use pdo_cactus::EventProgram;
use pdo_ctp::{ctp_program, CtpEndpoint, CtpParams, VideoPlayer};
use pdo_events::TraceConfig;
use pdo_ir::{RaiseMode, Value};
use pdo_profile::Profile;

/// Frames per profiled/measured session (the paper's trace counts ~391
/// message sends, Fig 5).
pub const SESSION_FRAMES: u32 = 391;

/// Default reduction threshold (the paper's Fig 6 uses T = 300).
pub const THRESHOLD: u64 = 300;

/// Endpoint parameters for the video workload: the controller clock fires
/// once per frame at 25 fps, as in the paper's trace (Fig 6 shows the
/// controller chain at the same weight as the sender chain).
pub fn video_params() -> CtpParams {
    CtpParams {
        ack_drop_every: 50,
        clk_period_ns: 40_000_000,
        ..Default::default()
    }
}

/// A prepared video experiment: base program, profile, optimization.
pub struct VideoLab {
    /// The unoptimized program.
    pub base: EventProgram,
    /// The optimizer-extended program (same bindings).
    pub opt_program: EventProgram,
    /// The optimization artifacts (chains, report).
    pub optimization: Optimization,
    /// The profile gathered from the instrumented session.
    pub profile: Profile,
}

impl VideoLab {
    /// Profiles a session and optimizes at `threshold`.
    ///
    /// # Panics
    ///
    /// Panics on substrate misconfiguration (programming error).
    pub fn prepare(threshold: u64) -> VideoLab {
        let base = ctp_program();
        let mut endpoint = CtpEndpoint::new(&base, video_params()).expect("base endpoint");
        endpoint.open().expect("open");
        endpoint.runtime_mut().set_trace_config(TraceConfig::full());
        let mut player = VideoPlayer::new(endpoint, 25);
        player.play(SESSION_FRAMES).expect("profiling session");
        let mut endpoint = player.into_endpoint();
        let trace = endpoint.runtime_mut().take_trace();
        let profile = Profile::from_trace(&trace, threshold);
        let optimization = optimize(
            &base.module,
            endpoint.runtime().registry(),
            &profile,
            &OptimizeOptions::new(threshold),
        );
        let opt_program = base.with_module(optimization.module.clone());
        VideoLab {
            base,
            opt_program,
            optimization,
            profile,
        }
    }

    /// A fresh opened endpoint; optimized endpoints get the chains
    /// installed.
    ///
    /// # Panics
    ///
    /// Panics on substrate misconfiguration.
    pub fn endpoint(&self, optimized: bool) -> CtpEndpoint {
        let program = if optimized {
            &self.opt_program
        } else {
            &self.base
        };
        let mut e = CtpEndpoint::new(program, video_params()).expect("endpoint");
        if optimized {
            self.optimization.install_chains(e.runtime_mut());
        }
        e.open().expect("open");
        e
    }

    /// A fresh player at `rate` fps.
    pub fn player(&self, optimized: bool, rate: u32) -> VideoPlayer {
        VideoPlayer::new(self.endpoint(optimized), rate)
    }
}

/// One Fig 10 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Row {
    /// Frame rate.
    pub rate: u32,
    /// Modeled total execution time, original (seconds).
    pub orig_total_s: f64,
    /// Modeled total execution time, optimized (seconds).
    pub opt_total_s: f64,
    /// Handler (busy) time, original (seconds, scaled).
    pub orig_handler_s: f64,
    /// Handler (busy) time, optimized (seconds, scaled).
    pub opt_handler_s: f64,
}

/// Runs the Fig 10 sweep.
///
/// The CPU scale models the paper's target platform (the authors note the
/// optimizations matter most on weak processors): it is calibrated so the
/// *original* program's mean per-frame busy time lands at ~58 ms-equivalent
/// — just above the 25/20 fps frame budgets and below the 15/10 fps
/// budgets, the regime the paper's measurements sit in.
///
/// # Panics
///
/// Panics on substrate misconfiguration.
pub fn fig10_rows(lab: &VideoLab, frames: u32) -> Vec<Fig10Row> {
    // Calibrate the CPU scale from an unoptimized 25 fps run.
    let calib = lab.player(false, 25).play(frames).expect("calibration run");
    let mean_busy = calib.busy_ns / u64::from(frames.max(1));
    let scale = (58_000_000f64 / mean_busy.max(1) as f64).max(1.0) as u64;

    let mut rows = Vec::new();
    for rate in [10u32, 15, 20, 25] {
        let orig = lab.player(false, rate).play(frames).expect("orig run");
        let opt = lab.player(true, rate).play(frames).expect("opt run");
        rows.push(Fig10Row {
            rate,
            orig_total_s: orig.modeled_total_ns(scale) as f64 / 1e9,
            opt_total_s: opt.modeled_total_ns(scale) as f64 / 1e9,
            orig_handler_s: orig.modeled_busy_ns(scale) as f64 / 1e9,
            opt_handler_s: opt.modeled_busy_ns(scale) as f64 / 1e9,
        });
    }
    rows
}

/// One Fig 11 row: per-event dispatch latency.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Event name.
    pub event: String,
    /// Original dispatch latency (ns).
    pub orig_ns: f64,
    /// Optimized dispatch latency (ns).
    pub opt_ns: f64,
}

/// Measures the Fig 11 event processing times (Adapt, SegFromUser,
/// Seg2Net), dispatch latency per raise.
///
/// # Panics
///
/// Panics on substrate misconfiguration.
pub fn fig11_rows(lab: &VideoLab, iters: u32) -> Vec<Fig11Row> {
    let seg = Value::bytes(vec![0xA5u8; 512]);
    let cases: [(&str, Vec<Value>); 3] = [
        ("Adapt", vec![]),
        ("SegFromUser", vec![seg.clone()]),
        ("Seg2Net", vec![seg]),
    ];
    let mut rows = Vec::new();
    for (name, args) in cases {
        let measure = |optimized: bool| {
            let mut e = lab.endpoint(optimized);
            let event = e
                .runtime()
                .module()
                .event_by_name(name)
                .expect("event exists");
            let mut count = 0u32;
            crate::avg_ns(iters / 10, iters, || {
                e.runtime_mut()
                    .raise(event, RaiseMode::Sync, &args)
                    .expect("raise");
                count += 1;
                if count.is_multiple_of(512) {
                    // Let queued acks/timers settle so heaps stay small.
                    e.drain(10_000_000_000).expect("drain");
                }
            })
        };
        rows.push(Fig11Row {
            event: name.to_string(),
            orig_ns: measure(false),
            opt_ns: measure(true),
        });
    }
    rows
}

/// Renders the Fig 5 event graph (full) as an edge listing plus DOT.
pub fn fig5_text(lab: &VideoLab) -> (String, String) {
    let module = &lab.base.module;
    (
        lab.profile.event_graph.edge_listing(module),
        lab.profile.event_graph.to_dot(module),
    )
}

/// Renders the Fig 6 reduced event graph at the lab's threshold.
pub fn fig6_text(lab: &VideoLab) -> (String, String) {
    let module = &lab.base.module;
    let reduced = lab.profile.reduced();
    (reduced.edge_listing(module), reduced.to_dot(module))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_prepares_and_optimizes_hot_chain() {
        let lab = VideoLab::prepare(THRESHOLD);
        assert!(
            lab.optimization.report.events.len() >= 4,
            "report: {}",
            lab.optimization.report.render(&lab.optimization.module)
        );
        assert!(lab.optimization.report.total_subsumed() >= 3);
        // The hot sender chain is in the reduced graph.
        let reduced = lab.profile.reduced();
        let sfu = lab.base.module.event_by_name("SegFromUser").unwrap();
        assert!(reduced.nodes.contains_key(&sfu));
    }

    #[test]
    fn optimized_endpoint_behaves_identically() {
        let lab = VideoLab::prepare(THRESHOLD);
        let mut orig = VideoPlayer::new(lab.endpoint(false), 25);
        let mut opt = VideoPlayer::new(lab.endpoint(true), 25);
        let s1 = orig.play(60).unwrap();
        let s2 = opt.play(60).unwrap();
        assert_eq!(s1.segments_sent, s2.segments_sent);
        assert_eq!(s1.retransmissions, s2.retransmissions);
        let w1 = orig.endpoint_mut().wire_payload();
        let w2 = opt.endpoint_mut().wire_payload();
        assert_eq!(w1, w2, "wire must be byte-identical");
        // The optimized run used the fast path.
        assert!(opt.endpoint_mut().runtime().cost.fastpath_hits > 0);
        assert_eq!(orig.endpoint_mut().runtime().cost.fastpath_hits, 0);
    }

    #[test]
    fn optimized_dispatch_does_less_abstract_work() {
        let lab = VideoLab::prepare(THRESHOLD);
        let mut orig = VideoPlayer::new(lab.endpoint(false), 25);
        let mut opt = VideoPlayer::new(lab.endpoint(true), 25);
        orig.play(40).unwrap();
        opt.play(40).unwrap();
        let c_orig = orig.endpoint_mut().runtime().cost;
        let c_opt = opt.endpoint_mut().runtime().cost;
        assert!(c_opt.marshaled_values < c_orig.marshaled_values / 2);
        assert!(c_opt.indirect_calls < c_orig.indirect_calls / 2);
        assert!(c_opt.weighted_total() < c_orig.weighted_total());
    }
}
