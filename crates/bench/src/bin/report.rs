//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```text
//! cargo run --release -p pdo-bench --bin report -- all
//! cargo run --release -p pdo-bench --bin report -- fig10
//! ```
//!
//! Subcommands: `fig5`, `fig6`, `fig10`, `fig11`, `fig12`, `fig13`,
//! `codesize`, `ablation`, `all`. Measured numbers are printed next to the
//! paper's published values; absolute magnitudes differ (different
//! substrate and hardware), the comparison target is the shape.

use pdo_bench::{ablate, paper, percent, secc, sizes, video, xcli};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let quick = args.iter().any(|a| a == "--quick");
    let iters: u32 = if quick { 200 } else { 2000 };
    let frames: u32 = if quick { 100 } else { video::SESSION_FRAMES };

    match what {
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig10" => fig10(frames),
        "fig11" => fig11(iters),
        "fig12" => fig12(iters),
        "fig13" => fig13(iters),
        "codesize" => codesize(),
        "ablation" => ablation(iters),
        "all" => {
            fig5();
            fig6();
            fig10(frames);
            fig11(iters);
            fig12(iters);
            fig13(iters);
            codesize();
            ablation(iters);
        }
        other => {
            eprintln!("unknown report `{other}`");
            eprintln!("known: fig5 fig6 fig10 fig11 fig12 fig13 codesize ablation all [--quick]");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!();
    println!("==== {title} ====");
}

fn fig5() {
    header("Figure 5: event graph generated from the video player");
    let lab = video::VideoLab::prepare(video::THRESHOLD);
    let (listing, dot) = video::fig5_text(&lab);
    println!("{listing}");
    println!("--- graphviz ---");
    println!("{dot}");
}

fn fig6() {
    header("Figure 6: reduced event graph (threshold = 300)");
    let lab = video::VideoLab::prepare(video::THRESHOLD);
    let (listing, dot) = video::fig6_text(&lab);
    println!("{listing}");
    println!("--- graphviz ---");
    println!("{dot}");
    println!("--- event chains in the reduced graph ---");
    for chain in lab.profile.chains() {
        let names: Vec<&str> = chain
            .iter()
            .map(|&e| lab.base.module.event_name(e))
            .collect();
        println!("  {}", names.join(" -> "));
    }
}

fn fig10(frames: u32) {
    header("Figure 10: video player optimization results");
    let lab = video::VideoLab::prepare(video::THRESHOLD);
    let rows = video::fig10_rows(&lab, frames);
    println!(
        "{:>5}  {:>11} {:>11} {:>6}   {:>11} {:>11} {:>6}   | paper: total%  handler%",
        "fps", "orig tot(s)", "opt tot(s)", "(%)", "orig hdl(s)", "opt hdl(s)", "(%)"
    );
    for row in rows {
        let p = paper::FIG10
            .iter()
            .find(|(r, ..)| *r == row.rate)
            .expect("paper row");
        println!(
            "{:>5}  {:>11.2} {:>11.2} {:>6.1}   {:>11.2} {:>11.2} {:>6.1}   |        {:>5.1}  {:>7.1}",
            row.rate,
            row.orig_total_s,
            row.opt_total_s,
            percent(row.opt_total_s, row.orig_total_s),
            row.orig_handler_s,
            row.opt_handler_s,
            percent(row.opt_handler_s, row.orig_handler_s),
            p.2 * 100.0 / p.1,
            p.4 * 100.0 / p.3,
        );
    }
}

fn fig11(iters: u32) {
    header("Figure 11: event processing times in the video player");
    let lab = video::VideoLab::prepare(video::THRESHOLD);
    let rows = video::fig11_rows(&lab, iters);
    println!(
        "{:<14} {:>12} {:>12} {:>9}   | paper: {:>8} {:>8} {:>9}",
        "event", "orig (ns)", "opt (ns)", "speedup%", "orig µs", "opt µs", "speedup%"
    );
    for row in rows {
        let p = paper::FIG11
            .iter()
            .find(|(n, ..)| *n == row.event)
            .expect("paper row");
        println!(
            "{:<14} {:>12.0} {:>12.0} {:>9.1}   |        {:>8.0} {:>8.0} {:>9.1}",
            row.event,
            row.orig_ns,
            row.opt_ns,
            100.0 - percent(row.opt_ns, row.orig_ns),
            p.1,
            p.2,
            100.0 - p.2 * 100.0 / p.1,
        );
    }
}

fn fig12(iters: u32) {
    header("Figure 12: impact of optimization in SecComm");
    let lab = secc::SecLab::prepare(50);
    let rows = secc::fig12_rows(&lab, iters);
    println!(
        "{:>6}  {:>11} {:>11} {:>6}  {:>11} {:>11} {:>6}   | paper: push%  pop%",
        "size", "push orig", "push opt", "(%)", "pop orig", "pop opt", "(%)"
    );
    for row in rows {
        let p = paper::FIG12
            .iter()
            .find(|(s, ..)| *s == row.size)
            .expect("paper row");
        println!(
            "{:>6}  {:>11.0} {:>11.0} {:>6.1}  {:>11.0} {:>11.0} {:>6.1}   |        {:>5.1}  {:>5.1}",
            row.size,
            row.push_orig_ns,
            row.push_opt_ns,
            percent(row.push_opt_ns, row.push_orig_ns),
            row.pop_orig_ns,
            row.pop_opt_ns,
            percent(row.pop_opt_ns, row.pop_orig_ns),
            p.2 * 100.0 / p.1,
            p.4 * 100.0 / p.3,
        );
    }
}

fn fig13(iters: u32) {
    header("Figure 13: optimization of X events");
    let lab = xcli::XLab::prepare(100);
    let rows = xcli::fig13_rows(&lab, iters);
    println!(
        "{:<8} {:>12} {:>12} {:>6}   | paper: {:>8} {:>8} {:>6}",
        "type", "orig (ns)", "opt (ns)", "(%)", "orig µs", "opt µs", "(%)"
    );
    for row in rows {
        let p = paper::FIG13
            .iter()
            .find(|(n, ..)| *n == row.event)
            .expect("paper row");
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>6.1}   |        {:>8.0} {:>8.0} {:>6.1}",
            row.event,
            row.orig_ns,
            row.opt_ns,
            percent(row.opt_ns, row.orig_ns),
            p.1,
            p.2,
            p.2 * 100.0 / p.1,
        );
    }
}

fn codesize() {
    header("Section 4.2: code-size impact");
    let vlab = video::VideoLab::prepare(video::THRESHOLD);
    let slab = secc::SecLab::prepare(50);
    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>16}   | paper (whole binary)",
        "program", "before", "after", "IR growth", "whole-prog eqv"
    );
    for row in sizes::size_rows(&vlab, &slab) {
        let p = paper::CODE_SIZE
            .iter()
            .find(|(n, _)| *n == row.program)
            .expect("paper row");
        println!(
            "{:<14} {:>8} {:>8} {:>9.1}% {:>15.2}%   |  +{:.1}%",
            row.program, row.before, row.after, row.growth_percent, row.whole_program_percent, p.1
        );
    }
    println!();
    println!("optimization reports:");
    println!("--- video player ---");
    println!(
        "{}",
        vlab.optimization.report.render(&vlab.optimization.module)
    );
    println!("--- SecComm ---");
    println!(
        "{}",
        slab.optimization.report.render(&slab.optimization.module)
    );
}

fn ablation(iters: u32) {
    header("Ablation: SecComm push chain under partial optimizations");
    let rows = ablate::ablation_rows(50, iters);
    println!(
        "{:<28} {:>12} {:>16} {:>14}",
        "configuration", "push (ns)", "abstract cost", "super instrs"
    );
    for row in rows {
        println!(
            "{:<28} {:>12.0} {:>16} {:>14}",
            row.name, row.push_ns, row.weighted_cost, row.super_instrs
        );
    }
}
