//! Superinstruction speedup gate: proves profile-directed fusion pays on
//! the interpreter's hot inner loops, and that opcode-profile sampling is
//! near-free on the dispatch path.
//!
//! Three handler bodies model the paper's workload inner loops:
//!
//! * `video`  — a run of locked frame-counter bumps
//!   (`lock; load; const; add; store; unlock`), the shape the video
//!   player's timer handler executes per frame; fuses to `lfold.i`.
//! * `seccomm` — a run of checksum folds over a global
//!   (`load; const; xor; store`), the SecComm packet-digest shape; fuses
//!   to `gfold.i`.
//! * `x`      — a const-heavy register expression chain
//!   (`const; add` pairs), the X-client coordinate-arithmetic shape;
//!   fuses to `bin.i`.
//!
//! Each body is timed unfused and after `pdo_passes::fuse` rewrote it, in
//! interleaved rounds so machine drift hits both sides equally. The
//! headline statistic per workload is the ratio of the medians of the
//! per-round minimum batch averages; the gate passes when at least one
//! workload speeds up by [`GATE`] (1.5×) or more. A second, independent
//! check times a full generic-dispatch runtime with opcode-profile
//! sampling on vs off and fails if sampling costs more than
//! [`OVERHEAD_GATE`] (5%).
//!
//! Writes `BENCH_interp.json` (per-workload mean, 95% CI, and speedups —
//! the machine-readable artifact CI checks in) to the path given as the
//! first argument, default `BENCH_interp.json` in the working directory,
//! and exits nonzero when either gate fails.

use criterion::{black_box, measure, Measurement};
use pdo_events::Runtime;
use pdo_ir::interp::{call, BasicEnv};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_passes::fuse_module;

/// Minimum fused-over-unfused speedup required on at least one workload.
const GATE: f64 = 1.5;

/// Maximum tolerated profiling-on/profiling-off dispatch ratio.
const OVERHEAD_GATE: f64 = 1.05;

/// Interleaved measurement rounds per side (median taken across them).
const ROUNDS: usize = 9;

/// Batch-average samples per round (passed to the criterion shim).
const SAMPLES: usize = 10;

/// Straight-line repetitions of the inner-loop pattern per handler body.
const REPS: usize = 16;

/// The video player's timer tick: `REPS` locked frame-counter bumps.
fn video_module() -> Module {
    let mut m = Module::new();
    let g = m.add_global("frames", Value::Int(0));
    let mut b = FunctionBuilder::new("video_tick", 0);
    for _ in 0..REPS {
        b.lock(g);
        let v = b.load_global(g);
        let k = b.const_int(1);
        let s = b.bin(BinOp::Add, v, k);
        b.store_global(g, s);
        b.unlock(g);
    }
    b.ret(None);
    m.add_function(b.finish());
    m
}

/// The SecComm packet digest: `REPS` checksum folds over a global.
fn seccomm_module() -> Module {
    let mut m = Module::new();
    let g = m.add_global("digest", Value::Int(0x5EED));
    let mut b = FunctionBuilder::new("seccomm_digest", 0);
    for i in 0..REPS {
        let v = b.load_global(g);
        let k = b.const_int(0x9E37_79B9 ^ i as i64);
        let s = b.bin(BinOp::Xor, v, k);
        b.store_global(g, s);
    }
    b.ret(None);
    m.add_function(b.finish());
    m
}

/// The X client's coordinate arithmetic: a const-heavy expression chain.
fn x_module() -> Module {
    let mut m = Module::new();
    let g = m.add_global("coord", Value::Int(0));
    let mut b = FunctionBuilder::new("x_translate", 0);
    let mut acc = b.const_int(1);
    for i in 0..2 * REPS {
        let k = b.const_int(i as i64 + 3);
        acc = b.bin(BinOp::Add, acc, k);
    }
    b.store_global(g, acc);
    b.ret(None);
    m.add_function(b.finish());
    m
}

/// The fused twin of `m`; panics if fusion found nothing to rewrite (the
/// gate would be meaningless).
fn fused_twin(m: &Module, workload: &str) -> Module {
    let mut fused = m.clone();
    let records = fuse_module(&mut fused, None, 0);
    assert!(
        !records.is_empty(),
        "{workload}: fusion pass found nothing to rewrite"
    );
    pdo_ir::verify_module(&fused)
        .unwrap_or_else(|e| panic!("{workload}: fused module invalid: {e}"));
    assert!(
        fused.instr_count() < m.instr_count(),
        "{workload}: fusion must shrink the body"
    );
    fused
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Mean and normal-approximation 95% CI half-width over `xs`.
fn mean_ci(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

fn json_side(mins: &[f64], means: &[f64]) -> String {
    let mut mins = mins.to_vec();
    let (mean, ci95) = mean_ci(means);
    format!(
        "{{ \"median_min_ns\": {:.2}, \"mean_ns\": {:.2}, \"ci95_ns\": {:.2} }}",
        median(&mut mins),
        mean,
        ci95
    )
}

struct Side {
    mins: Vec<f64>,
    means: Vec<f64>,
}

impl Side {
    fn new() -> Side {
        Side {
            mins: Vec::new(),
            means: Vec::new(),
        }
    }
    fn push(&mut self, m: Measurement) {
        self.mins.push(m.min_ns);
        self.means.push(m.mean_ns);
    }
    fn median_min(&self) -> f64 {
        median(&mut self.mins.clone())
    }
    fn json(&self) -> String {
        json_side(&self.mins, &self.means)
    }
}

/// Interleaved A/B rounds of `call` on two variants of one handler.
fn ab_rounds(a_mod: &Module, b_mod: &Module) -> (Side, Side) {
    let fa = FuncId(0);
    let mut env_a = BasicEnv::new(a_mod);
    let mut env_b = BasicEnv::new(b_mod);
    let mut a = Side::new();
    let mut b = Side::new();
    for i in 0..ROUNDS {
        // Alternate order each round so slow drift (thermal, scheduler)
        // cancels instead of biasing one side.
        if i % 2 == 0 {
            a.push(measure(
                || call(black_box(a_mod), &mut env_a, fa, &[]).unwrap(),
                SAMPLES,
            ));
            b.push(measure(
                || call(black_box(b_mod), &mut env_b, fa, &[]).unwrap(),
                SAMPLES,
            ));
        } else {
            b.push(measure(
                || call(black_box(b_mod), &mut env_b, fa, &[]).unwrap(),
                SAMPLES,
            ));
            a.push(measure(
                || call(black_box(a_mod), &mut env_a, fa, &[]).unwrap(),
                SAMPLES,
            ));
        }
    }
    (a, b)
}

/// A generic-dispatch runtime for the sampling overhead check: one event
/// fanned out to six short handlers, the registry-walk-plus-small-body
/// shape users actually pay during sampled epochs (same mix as
/// `BENCH_dispatch.json`'s workload, where dispatch overhead and handler
/// work are both on the clock).
fn dispatch_runtime(profiling: bool) -> (Runtime, EventId) {
    let mut m = Module::new();
    let mut handlers = Vec::new();
    for h in 0..6 {
        let g = m.add_global(format!("g{h}"), Value::Int(0));
        let mut b = FunctionBuilder::new(format!("h{h}"), 0);
        b.lock(g);
        let v = b.load_global(g);
        let k = b.const_int(1);
        let s = b.bin(BinOp::Add, v, k);
        b.store_global(g, s);
        b.unlock(g);
        b.ret(None);
        handlers.push(m.add_function(b.finish()));
    }
    let e = m.add_event("Tick");
    let mut rt = Runtime::new(m);
    for (order, h) in handlers.into_iter().enumerate() {
        rt.bind(e, h, order as i32).expect("bind");
    }
    rt.set_opcode_profiling(profiling);
    (rt, e)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_interp.json".into());

    // Fused-vs-unfused inner loops.
    let mut workloads_json = Vec::new();
    let mut best = ("", 0.0f64);
    for (name, module) in [
        ("video", video_module()),
        ("seccomm", seccomm_module()),
        ("x", x_module()),
    ] {
        let fused = fused_twin(&module, name);
        let (unfused_side, fused_side) = ab_rounds(&module, &fused);
        let speedup = unfused_side.median_min() / fused_side.median_min();
        if speedup > best.1 {
            best = (name, speedup);
        }
        workloads_json.push(format!(
            "    \"{name}\": {{\n      \"instrs_unfused\": {}, \"instrs_fused\": {},\n      \
             \"unfused\": {},\n      \"fused\": {},\n      \"speedup\": {speedup:.4}\n    }}",
            module.instr_count(),
            fused.instr_count(),
            unfused_side.json(),
            fused_side.json(),
        ));
    }

    // Opcode-profile sampling overhead on the full dispatch path.
    let (mut off_rt, e) = dispatch_runtime(false);
    let (mut on_rt, _) = dispatch_runtime(true);
    let mut off = Side::new();
    let mut on = Side::new();
    for i in 0..ROUNDS {
        let (first, second): (&mut Runtime, &mut Runtime) = if i % 2 == 0 {
            (&mut off_rt, &mut on_rt)
        } else {
            (&mut on_rt, &mut off_rt)
        };
        let a = measure(
            || first.raise(black_box(e), RaiseMode::Sync, &[]).unwrap(),
            SAMPLES,
        );
        let b = measure(
            || second.raise(black_box(e), RaiseMode::Sync, &[]).unwrap(),
            SAMPLES,
        );
        let (o, n) = if i % 2 == 0 { (a, b) } else { (b, a) };
        off.push(o);
        on.push(n);
    }
    assert!(
        on_rt.opcode_profile_data().is_some_and(|p| p.total() > 0),
        "profiling runtime must actually record opcodes"
    );
    let overhead = on.median_min() / off.median_min();
    let overhead_pass = overhead <= OVERHEAD_GATE;

    let speedup_pass = best.1 >= GATE;
    let pass = speedup_pass && overhead_pass;
    let json = format!(
        "{{\n  \"bench\": \"interp/superinstructions\",\n  \"rounds\": {ROUNDS},\n  \
         \"workloads\": {{\n{}\n  }},\n  \
         \"best_workload\": \"{}\",\n  \"best_speedup\": {:.4},\n  \"gate\": {GATE},\n  \
         \"profiling_off\": {},\n  \"profiling_on\": {},\n  \
         \"profiling_overhead_ratio\": {overhead:.4},\n  \"overhead_gate\": {OVERHEAD_GATE},\n  \
         \"pass\": {pass}\n}}\n",
        workloads_json.join(",\n"),
        best.0,
        best.1,
        off.json(),
        on.json(),
    );
    std::fs::write(&out, &json).expect("write BENCH_interp.json");
    print!("{json}");
    if !speedup_pass {
        eprintln!("interp gate FAILED: best speedup {:.4} < {GATE}", best.1);
    }
    if !overhead_pass {
        eprintln!("interp gate FAILED: sampling overhead {overhead:.4} > {OVERHEAD_GATE}");
    }
    if !pass {
        std::process::exit(1);
    }
    println!(
        "interp gate passed: {} sped up {:.2}x (gate {GATE}), sampling overhead {overhead:.4} (gate {OVERHEAD_GATE})",
        best.0, best.1
    );
}
