//! Open-loop ingress load generator: the committed evidence for the
//! network front door's admission control (`BENCH_ingress.json`).
//!
//! Topology: one engine thread (`Ingress::serve` driving the sharded
//! server), one acceptor thread inside `pdo-ingress`, and one driver
//! thread here that multiplexes **10 240 logical clients over 64
//! non-blocking loopback TCP connections** — the fronting-multiplexer
//! regime the acceptor is designed for, and the only way to simulate
//! tens of thousands of concurrent clients under the container's fd
//! limit. Every logical client owns a real server session.
//!
//! The workload is **open-loop**: each client draws exponential
//! inter-arrival gaps from a seeded splitmix64 stream (a Poisson process
//! per client, so a Poisson process in aggregate), and sends at the
//! scheduled instant whether or not earlier replies have returned —
//! latency is measured from the *scheduled arrival*, so queueing delay
//! is not hidden by client-side backpressure (the coordinated-omission
//! trap a closed-loop generator falls into).
//!
//! Procedure: calibrate the saturation throughput `R_max` with
//! escalating open-loop probes (offered rate doubles until shedding
//! engages; `R_max` is the Done-rate measured under saturation), then
//! measure ≥3 offered-load points at fixed
//! fractions of `R_max` (0.5×, 0.9×, 2.0×), 3 rounds each, reporting
//! p50/p99 reply latency and shed rate as mean ± 95% CI across rounds.
//! Gates: the 0.5× point sheds < 5%, the 2.0× point sheds > 5% (load
//! shedding demonstrably engages past saturation), and the server still
//! serves a fresh session end-to-end afterwards. Exits nonzero on any
//! gate failure.
//!
//! `--soak` runs the CI-sized variant: ~2k clients over 32 connections
//! for ~10 s with the same gates.

use pdo::AdaptConfig;
use pdo_ingress::proto::{self, Reply, Request, WireMode};
use pdo_ingress::{Client, Ingress, IngressConfig, OpenKind};
use pdo_ir::{BinOp, EventId, FunctionBuilder, Module, Value};
use pdo_obs::Histogram;
use pdo_server::{Server, ServerConfig};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// First offered rate of the escalating calibration probe (requests/s).
const CALIBRATE_START_RPS: f64 = 40_000.0;
/// Calibration stops escalating once the probe sheds this fraction.
const CALIBRATE_SHED_TARGET: f64 = 0.10;
/// Calibration escalation ceiling (requests/s).
const CALIBRATE_MAX_RPS: f64 = 1_280_000.0;
/// Offered-load points as fractions of calibrated `R_max`.
const RATIOS: [f64; 3] = [0.5, 0.9, 2.0];
/// Shed-rate ceiling for the below-saturation point.
const LOW_SHED_MAX: f64 = 0.05;
/// Shed-rate floor for the past-saturation point.
const OVERLOAD_SHED_MIN: f64 = 0.05;

#[derive(Clone, Copy)]
struct Params {
    clients: usize,
    conns: usize,
    rounds: usize,
    round_secs: f64,
    calibrate_secs: f64,
}

const FULL: Params = Params {
    clients: 10_240,
    conns: 64,
    rounds: 3,
    round_secs: 2.0,
    calibrate_secs: 1.5,
};

const SOAK: Params = Params {
    clients: 2_048,
    conns: 32,
    rounds: 2,
    round_secs: 1.2,
    calibrate_secs: 1.0,
};

/// Deterministic splitmix64 stream (seeded, for reproducible arrivals).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Exponential gap with the given mean, in ns (≥ 1).
    fn exp_ns(&mut self, mean_ns: f64) -> u64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        (-(1.0 - u).ln() * mean_ns).max(1.0) as u64
    }
}

/// The per-session program: one event, two accumulating handlers —
/// enough real dispatch for the adaptive engine to specialize under
/// network load, cheap enough that ingress (not the handlers) is the
/// system under test.
fn client_module() -> (Module, EventId, Vec<(u32, u32, i32)>) {
    let mut m = Module::new();
    let e = m.add_event("req");
    let g = m.add_global("acc", Value::Int(0));
    let mut binds = Vec::new();
    for k in 0..2i64 {
        let mut fb = FunctionBuilder::new(format!("h{k}"), 0);
        let v = fb.load_global(g);
        let d = fb.const_int(k + 1);
        let o = fb.bin(BinOp::Add, v, d);
        fb.store_global(g, o);
        fb.ret(None);
        let f = m.add_function(fb.finish());
        binds.push((e.0, f.0, k as i32));
    }
    (m, e, binds)
}

/// One multiplexed connection: non-blocking socket, frame reassembly,
/// pending-reply table keyed by request id.
struct MuxConn {
    stream: TcpStream,
    inbuf: proto::FrameBuffer,
    out: Vec<u8>,
    out_pos: usize,
    /// req_id → scheduled-arrival ns (relative to the round clock).
    pending: HashMap<u64, u64>,
    next_req: u64,
}

impl MuxConn {
    fn connect(addr: SocketAddr) -> MuxConn {
        let stream = TcpStream::connect(addr).expect("connect load conn");
        stream.set_nodelay(true).expect("nodelay");
        stream.set_nonblocking(true).expect("nonblocking");
        MuxConn {
            stream,
            inbuf: proto::FrameBuffer::new(),
            out: Vec::new(),
            out_pos: 0,
            pending: HashMap::new(),
            next_req: 1,
        }
    }

    fn send(&mut self, req: &Request, arrival_ns: u64) -> u64 {
        let id = self.next_req;
        self.next_req += 1;
        self.out.extend_from_slice(&proto::encode_request(id, req));
        self.pending.insert(id, arrival_ns);
        id
    }

    /// Flushes queued bytes and reads replies; invokes `on_reply` for
    /// each with `(reply, scheduled_arrival_ns)`.
    fn sweep(&mut self, on_reply: &mut impl FnMut(Reply, u64)) -> bool {
        let mut progress = false;
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => panic!("load conn closed by server"),
                Ok(n) => {
                    self.out_pos += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("load conn write: {e}"),
            }
        }
        if self.out_pos == self.out.len() && self.out_pos > 0 {
            self.out.clear();
            self.out_pos = 0;
        }
        let mut chunk = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => panic!("load conn EOF from server"),
                Ok(n) => {
                    self.inbuf.extend(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("load conn read: {e}"),
            }
        }
        while let Some(frame) = self
            .inbuf
            .next_frame(proto::MAX_FRAME_LEN)
            .expect("server sent corrupt frame")
        {
            let (rid, reply) = proto::decode_reply(&frame).expect("server reply decodes");
            let arrival = self.pending.remove(&rid).expect("reply matches a request");
            on_reply(reply, arrival);
            progress = true;
        }
        progress
    }

    fn outstanding(&self) -> usize {
        self.pending.len()
    }
}

/// Per-round tallies.
#[derive(Default)]
struct Tally {
    done: u64,
    shed: u64,
    errors: u64,
}

struct Driver {
    conns: Vec<MuxConn>,
    /// client → (conn index, session id).
    sessions: Vec<(usize, u64)>,
    event: u32,
}

impl Driver {
    /// Opens one session per logical client, closed-loop with a bounded
    /// window so setup itself is never shed.
    fn setup(addr: SocketAddr, p: &Params) -> Driver {
        let (module, e, binds) = client_module();
        let conns: Vec<MuxConn> = (0..p.conns).map(|_| MuxConn::connect(addr)).collect();
        let mut d = Driver {
            conns,
            sessions: Vec::with_capacity(p.clients),
            event: e.0,
        };
        let mut sent = 0usize;
        let mut opened: Vec<(usize, u64)> = Vec::with_capacity(p.clients);
        while opened.len() < p.clients {
            while sent < p.clients && d.total_outstanding() < 128 {
                let ci = sent % d.conns.len();
                d.conns[ci].send(
                    &Request::Open(OpenKind::Plain {
                        module: module.clone(),
                        bindings: binds.clone(),
                    }),
                    0,
                );
                sent += 1;
            }
            for (ci, c) in d.conns.iter_mut().enumerate() {
                c.sweep(&mut |reply, _| match reply {
                    Reply::Opened { session } => opened.push((ci, session)),
                    other => panic!("setup open failed: {other:?}"),
                });
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        d.sessions = opened;
        d
    }

    fn total_outstanding(&self) -> usize {
        self.conns.iter().map(MuxConn::outstanding).sum()
    }

    fn raise_for(&self, client: usize) -> (usize, Request) {
        let (ci, session) = self.sessions[client];
        (
            ci,
            Request::Raise {
                session,
                event: self.event,
                mode: WireMode::Sync,
                args: Vec::new(),
            },
        )
    }

    /// Saturation calibration: escalating open-loop probes, doubling the
    /// offered rate until shedding engages, then `R_max` = the Done-rate
    /// measured *under* saturation — the server's actual completion
    /// capacity. (A closed-loop window would be the textbook approach,
    /// but on a single-core host it is latency-bound across scheduler
    /// timeslices — driver, acceptor, and engine each need a turn per
    /// batch — and underestimates capacity by an order of magnitude.)
    fn calibrate(&mut self, secs: f64) -> f64 {
        let mut probe = CALIBRATE_START_RPS;
        let mut step = 0u64;
        loop {
            let (_, t, elapsed) = self.round(probe, secs, 0x00CA_11B8 + step);
            step += 1;
            let replies = (t.done + t.shed + t.errors).max(1);
            let shed_rate = t.shed as f64 / replies as f64;
            // Service rate over the *full* window including the drain —
            // dones still in flight when sending stops were not served
            // within the measurement window.
            let done_rate = t.done as f64 / elapsed;
            eprintln!(
                "calibrate probe {probe:.0} rps: {done_rate:.0} done/s, shed {:.1}%",
                shed_rate * 100.0
            );
            if shed_rate >= CALIBRATE_SHED_TARGET || probe >= CALIBRATE_MAX_RPS {
                return done_rate;
            }
            probe *= 2.0;
        }
    }

    /// One open-loop round at `rate` requests/s: a binary heap of
    /// per-client next-arrival instants, sends at the scheduled time,
    /// latency measured from that schedule.
    fn round(&mut self, rate: f64, secs: f64, seed: u64) -> (Histogram, Tally, f64) {
        let n = self.sessions.len();
        let mean_gap_ns = n as f64 / rate * 1e9;
        let mut rng = Rng(seed);
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32)>> = (0..n as u32)
            .map(|c| std::cmp::Reverse((rng.exp_ns(mean_gap_ns), c)))
            .collect();
        let end_ns = (secs * 1e9) as u64;
        let start = Instant::now();
        let mut hist = Histogram::new();
        let mut tally = Tally::default();
        loop {
            let now_ns = start.elapsed().as_nanos() as u64;
            if now_ns >= end_ns {
                break;
            }
            while let Some(&std::cmp::Reverse((t, c))) = heap.peek() {
                if t > now_ns {
                    break;
                }
                heap.pop();
                if t < end_ns {
                    let (ci, req) = self.raise_for(c as usize);
                    self.conns[ci].send(&req, t);
                    heap.push(std::cmp::Reverse((t + rng.exp_ns(mean_gap_ns), c)));
                }
            }
            let mut progress = false;
            for c in &mut self.conns {
                progress |= c.sweep(&mut |reply, arrival| {
                    classify(reply, arrival, &start, &mut hist, &mut tally);
                });
            }
            if !progress {
                // Yield, don't sleep: a sleeping generator on a shared
                // core under-delivers the offered rate it claims.
                std::thread::yield_now();
            }
        }
        self.drain(Duration::from_secs(10), &mut |reply, arrival| {
            classify(reply, arrival, &start, &mut hist, &mut tally);
        });
        let elapsed = start.elapsed().as_secs_f64();
        eprintln!(
            "  round @{rate:.0} rps: {} done / {} shed / {} errors in {elapsed:.2}s \
             ({:.0} served/s)",
            tally.done,
            tally.shed,
            tally.errors,
            tally.done as f64 / elapsed,
        );
        (hist, tally, elapsed)
    }

    /// Sweeps until every in-flight request has a reply (or `limit`).
    fn drain(&mut self, limit: Duration, on_reply: &mut impl FnMut(Reply, u64)) {
        let start = Instant::now();
        while self.total_outstanding() > 0 && start.elapsed() < limit {
            let mut progress = false;
            for c in &mut self.conns {
                progress |= c.sweep(on_reply);
            }
            if !progress {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        assert_eq!(self.total_outstanding(), 0, "requests lost without reply");
    }
}

fn classify(reply: Reply, arrival_ns: u64, start: &Instant, hist: &mut Histogram, t: &mut Tally) {
    match reply {
        Reply::Done => {
            let now = start.elapsed().as_nanos() as u64;
            hist.record(now.saturating_sub(arrival_ns).max(1));
            t.done += 1;
        }
        Reply::Shed { .. } => t.shed += 1,
        _ => t.errors += 1,
    }
}

/// Mean and normal-approximation 95% CI half-width.
fn mean_ci(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

struct Point {
    ratio: f64,
    offered_rps: f64,
    p50: (f64, f64),
    p99: (f64, f64),
    shed_rate: (f64, f64),
    done: u64,
    shed: u64,
    errors: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let soak = args.iter().any(|a| a == "--soak");
    let out = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_ingress.json".into());
    let p = if soak { SOAK } else { FULL };
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Coarse adaptation cadence: with 10k sessions, the default 1 ms
    // adaptation epoch makes every ingress virtual-clock advance cross an
    // epoch boundary in *every* session at once — seconds of optimizer
    // bookkeeping per tick that would measure the adaptive engine, not
    // admission control (the scaling/ablation benches own that axis).
    let mut server = Server::new(ServerConfig {
        adapt: AdaptConfig {
            epoch_ns: 1_000_000_000,
            ..Default::default()
        },
        ..Default::default()
    });
    let mut ingress = Ingress::bind(
        IngressConfig {
            unix: None,
            max_inflight: 2_048,
            shard_queue: 512,
            ..Default::default()
        },
        server.shards(),
    )
    .expect("bind ingress");
    let addr = ingress.tcp_addr().expect("tcp bound");
    let stop = Arc::new(AtomicBool::new(false));

    let driver_stop = Arc::clone(&stop);
    let driver = std::thread::Builder::new()
        .name("ingress-load-driver".into())
        .spawn(move || {
            let mut d = Driver::setup(addr, &p);
            eprintln!(
                "opened {} sessions over {} connections",
                d.sessions.len(),
                p.conns
            );
            let r_max = d.calibrate(p.calibrate_secs);
            eprintln!("calibrated R_max = {r_max:.0} done/s");

            let mut points = Vec::new();
            for (pi, &ratio) in RATIOS.iter().enumerate() {
                let rate = r_max * ratio;
                let (mut p50s, mut p99s, mut sheds) = (Vec::new(), Vec::new(), Vec::new());
                let mut total = Tally::default();
                for round in 0..p.rounds {
                    let (hist, t, _) =
                        d.round(rate, p.round_secs, 0x00C1_1E17 + (pi * 16 + round) as u64);
                    let replies = (t.done + t.shed + t.errors).max(1);
                    p50s.push(hist.quantile(0.5) as f64);
                    p99s.push(hist.quantile(0.99) as f64);
                    sheds.push(t.shed as f64 / replies as f64);
                    total.done += t.done;
                    total.shed += t.shed;
                    total.errors += t.errors;
                }
                let pt = Point {
                    ratio,
                    offered_rps: rate,
                    p50: mean_ci(&p50s),
                    p99: mean_ci(&p99s),
                    shed_rate: mean_ci(&sheds),
                    done: total.done,
                    shed: total.shed,
                    errors: total.errors,
                };
                eprintln!(
                    "{:.1}x R_max ({:.0} rps): p50 {:.0} µs ± {:.0}, p99 {:.0} µs ± {:.0}, \
                     shed {:.1}% ± {:.1} ({} done / {} shed / {} errors)",
                    pt.ratio,
                    pt.offered_rps,
                    pt.p50.0 / 1e3,
                    pt.p50.1 / 1e3,
                    pt.p99.0 / 1e3,
                    pt.p99.1 / 1e3,
                    pt.shed_rate.0 * 100.0,
                    pt.shed_rate.1 * 100.0,
                    pt.done,
                    pt.shed,
                    pt.errors,
                );
                points.push(pt);
            }

            // Liveness: a fresh blocking client is served end to end
            // after the overload pass, while the engine is still up.
            let mut c = Client::connect_tcp(addr).expect("health connect");
            let session = loop {
                match c
                    .request(&Request::Open(OpenKind::Ctp))
                    .expect("health open")
                {
                    Reply::Opened { session } => break session,
                    Reply::Shed { retry_after_ns } => {
                        std::thread::sleep(Duration::from_nanos(retry_after_ns));
                    }
                    other => panic!("health open failed: {other:?}"),
                }
            };
            let stats = c.query(session).expect("health query");
            assert_eq!(stats.session, session);
            assert!(c.close(session).expect("health close"));

            driver_stop.store(true, Ordering::SeqCst);
            (r_max, points)
        })
        .expect("spawn driver");

    ingress.serve(&mut server, &stop).expect("engine serve");
    let (r_max, points) = driver.join().expect("driver thread");

    let low = &points[0];
    let overload = points.last().expect("points");
    let pass_low = low.shed_rate.0 < LOW_SHED_MAX;
    let pass_overload = overload.shed_rate.0 > OVERLOAD_SHED_MIN;
    let pass = pass_low && pass_overload;

    let shed_total = ingress.shed_total();
    let points_json: Vec<String> = points
        .iter()
        .map(|pt| {
            format!(
                "    {{ \"offered_ratio\": {:.2}, \"offered_rps\": {:.0}, \
                 \"p50_ns_mean\": {:.0}, \"p50_ns_ci95\": {:.0}, \
                 \"p99_ns_mean\": {:.0}, \"p99_ns_ci95\": {:.0}, \
                 \"shed_rate_mean\": {:.4}, \"shed_rate_ci95\": {:.4}, \
                 \"done\": {}, \"shed\": {}, \"errors\": {} }}",
                pt.ratio,
                pt.offered_rps,
                pt.p50.0,
                pt.p50.1,
                pt.p99.0,
                pt.p99.1,
                pt.shed_rate.0,
                pt.shed_rate.1,
                pt.done,
                pt.shed,
                pt.errors,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"ingress/load/{}x{}\",\n  \"host_cores\": {host_cores},\n  \
         \"clients\": {},\n  \"connections\": {},\n  \"rounds_per_point\": {},\n  \
         \"round_secs\": {},\n  \"calibrated_rmax_rps\": {r_max:.0},\n  \
         \"points\": [\n{}\n  ],\n  \
         \"shed_total\": {shed_total},\n  \
         \"gates\": {{ \"low_shed_max\": {LOW_SHED_MAX}, \
         \"overload_shed_min\": {OVERLOAD_SHED_MIN} }},\n  \
         \"pass_low\": {pass_low},\n  \"pass_overload\": {pass_overload},\n  \
         \"server_alive\": true,\n  \"pass\": {pass}\n}}\n",
        p.clients,
        p.conns,
        p.clients,
        p.conns,
        p.rounds,
        p.round_secs,
        points_json.join(",\n"),
    );
    if soak {
        print!("{json}");
    } else {
        std::fs::write(&out, &json).expect("write BENCH_ingress.json");
        print!("{json}");
    }
    if !pass {
        eprintln!(
            "ingress load gate FAILED: shed@{:.1}x = {:.3} (max {LOW_SHED_MAX}), \
             shed@{:.1}x = {:.3} (min {OVERLOAD_SHED_MIN})",
            low.ratio, low.shed_rate.0, overload.ratio, overload.shed_rate.0
        );
        std::process::exit(1);
    }
    println!(
        "ingress load passed: {:.0} rps saturation, shedding engages past it \
         and stays off below it",
        r_max
    );
}
