//! Causal-tracing overhead gate: proves the `pdo-obs` trace layer is
//! near-free when off and cheap when on.
//!
//! Times the same synthetic fast-path dispatch workload on three
//! identical runtimes — no trace store attached (`Runtime.tracer ==
//! None`, a single `Option` check on the hot path), a store attached but
//! disabled (the deployment default: one `Cell` load more), and tracing
//! fully enabled (every raise and dispatch records a ring span) — in
//! interleaved rounds so machine drift hits all sides equally. The
//! headline statistics are the ratios of the medians of the per-round
//! minimum batch averages; the gate fails if attached-but-disabled costs
//! more than [`GATE_OFF`] (2%) or enabled more than [`GATE_ON`] (10%)
//! over the no-store baseline.
//!
//! Writes `BENCH_trace.json` (mean, 95% CI, and both ratios — the
//! machine-readable artifact CI checks in) to the path given as the
//! first argument, default `BENCH_trace.json` in the working directory,
//! and exits nonzero when either gate fails.

use criterion::{black_box, measure, Measurement};
use pdo::{optimize, OptimizeOptions};
use pdo_events::{Runtime, TraceConfig};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_obs::trace::TraceStore;
use pdo_profile::Profile;

/// Maximum tolerated attached-but-disabled / no-store ratio.
const GATE_OFF: f64 = 1.02;

/// Maximum tolerated tracing-on / no-store ratio.
const GATE_ON: f64 = 1.10;

/// Interleaved measurement rounds per side (median taken across them).
const ROUNDS: usize = 9;

/// Batch-average samples per round (passed to the criterion shim).
const SAMPLES: usize = 10;

fn build_module(handlers: usize) -> (Module, EventId, Vec<FuncId>) {
    let mut m = Module::new();
    let e = m.add_event("E");
    let g = m.add_global("acc", Value::Int(0));
    let ids = (0..handlers)
        .map(|i| {
            let mut b = FunctionBuilder::new(format!("h{i}"), 1);
            b.lock(g);
            let v = b.load_global(g);
            let k = b.const_int(i as i64 + 1);
            let s = b.bin(BinOp::Add, v, k);
            b.store_global(g, s);
            b.unlock(g);
            b.ret(None);
            m.add_function(b.finish())
        })
        .collect();
    (m, e, ids)
}

fn runtime_for(m: &Module, e: EventId, hs: &[FuncId]) -> Runtime {
    let mut rt = Runtime::new(m.clone());
    for (i, &h) in hs.iter().enumerate() {
        rt.bind(e, h, i as i32).expect("bind");
    }
    rt
}

/// How the measured runtime carries the trace layer.
#[derive(Clone, Copy, PartialEq)]
enum Tracing {
    /// No store attached: the pre-tracing hot path.
    None,
    /// Store attached but disabled — the deployment default, one
    /// enabled-check more than `None`.
    AttachedOff,
    /// Recording every raise and dispatch.
    On,
}

/// Builds a runtime running the specialized fast path for `E`, matching
/// the `dispatch` bench's fastpath configuration, with the requested
/// trace layer.
fn fastpath_runtime(tracing: Tracing) -> (Runtime, EventId) {
    let (m, e, hs) = build_module(6);
    let mut prof_rt = runtime_for(&m, e, &hs);
    prof_rt.set_trace_config(TraceConfig::full());
    for _ in 0..100 {
        prof_rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
    }
    let profile = Profile::from_trace(&prof_rt.take_trace(), 50);
    let opt = optimize(&m, prof_rt.registry(), &profile, &OptimizeOptions::new(50));
    let mut rt = runtime_for(&opt.module, e, &hs);
    opt.install_chains(&mut rt);
    match tracing {
        Tracing::None => {}
        Tracing::AttachedOff => {
            let store = TraceStore::new(0);
            store.set_enabled(false);
            rt.set_tracer(store);
        }
        Tracing::On => {
            rt.enable_tracing();
        }
    }
    (rt, e)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Mean and normal-approximation 95% CI half-width over `xs`.
fn mean_ci(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

fn round(rt: &mut Runtime, e: EventId) -> Measurement {
    measure(
        || {
            rt.raise(black_box(e), RaiseMode::Sync, &[Value::Unit])
                .unwrap()
        },
        SAMPLES,
    )
}

#[derive(Default)]
struct Side {
    mins: Vec<f64>,
    means: Vec<f64>,
}

impl Side {
    fn json(&self) -> String {
        let mut mins = self.mins.clone();
        let (mean, ci95) = mean_ci(&self.means);
        format!(
            "{{ \"median_min_ns\": {:.2}, \"mean_ns\": {:.2}, \"ci95_ns\": {:.2} }}",
            median(&mut mins),
            mean,
            ci95
        )
    }

    fn median_min(&self) -> f64 {
        median(&mut self.mins.clone())
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace.json".into());

    let (mut none_rt, e) = fastpath_runtime(Tracing::None);
    let (mut off_rt, _) = fastpath_runtime(Tracing::AttachedOff);
    let (mut on_rt, _) = fastpath_runtime(Tracing::On);
    assert!(none_rt.tracer().is_none(), "baseline must have no store");
    assert!(
        off_rt.tracer().is_some_and(|t| !t.enabled()),
        "off side must be attached but disabled"
    );
    assert!(
        on_rt.tracer().is_some_and(TraceStore::enabled),
        "on side must record"
    );

    let mut sides = [Side::default(), Side::default(), Side::default()];
    for i in 0..ROUNDS {
        // Rotate the in-round order so slow drift (thermal, scheduler)
        // spreads across all three sides instead of biasing one.
        let order = [i % 3, (i + 1) % 3, (i + 2) % 3];
        for &which in &order {
            let rt = match which {
                0 => &mut none_rt,
                1 => &mut off_rt,
                _ => &mut on_rt,
            };
            let m = round(rt, e);
            sides[which].mins.push(m.min_ns);
            sides[which].means.push(m.mean_ns);
        }
    }

    let base = sides[0].median_min();
    let ratio_off = sides[1].median_min() / base;
    let ratio_on = sides[2].median_min() / base;
    let pass = ratio_off <= GATE_OFF && ratio_on <= GATE_ON;
    let json = format!(
        "{{\n  \"bench\": \"dispatch/fastpath/6+trace\",\n  \"rounds\": {ROUNDS},\n  \
         \"tracing_none\": {},\n  \"tracing_attached_off\": {},\n  \"tracing_on\": {},\n  \
         \"off_ratio\": {ratio_off:.4},\n  \"on_ratio\": {ratio_on:.4},\n  \
         \"gate_off\": {GATE_OFF},\n  \"gate_on\": {GATE_ON},\n  \"pass\": {pass}\n}}\n",
        sides[0].json(),
        sides[1].json(),
        sides[2].json(),
    );
    std::fs::write(&out, &json).expect("write BENCH_trace.json");
    print!("{json}");
    if !pass {
        eprintln!(
            "trace gate FAILED: attached-off ratio {ratio_off:.4} (gate {GATE_OFF}), \
             on ratio {ratio_on:.4} (gate {GATE_ON})"
        );
        std::process::exit(1);
    }
    println!(
        "trace gate passed: attached-off ratio {ratio_off:.4} <= {GATE_OFF}, \
         on ratio {ratio_on:.4} <= {GATE_ON}"
    );
}
