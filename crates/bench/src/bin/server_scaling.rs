//! Thread-per-shard scaling benchmark: the committed evidence for the
//! parallel server and the specialization cache.
//!
//! Two experiments, one machine-readable artifact (`BENCH_server_scaling.json`):
//!
//! 1. **Shard scaling.** A fixed, fully deterministic workload (8 adaptive
//!    sessions × bursts of 2 000 timed events) is driven through the server
//!    over a grid of `(shards, threads)` configurations. Each cell reports
//!    wall-clock mean ± 95% CI. Because wall-clock parallel speedup is
//!    physically unobservable on a single-core host, every threaded cell
//!    also reports a *projected* speedup from the per-shard `busy_ns`
//!    critical path: projected wall = (measured wall − Σ busy) + maxᵥ Σ
//!    busy over worker w's shards — i.e. the coordinator's serial overhead
//!    plus the longest worker chain, the time the same run takes once each
//!    worker has its own core. `host_cores` is recorded so readers can tell
//!    which number applies to their machine.
//!
//! 2. **Cache effectiveness.** A two-phase oscillating workload (event A
//!    hot, then B hot, repeated) forces the adaptation daemon to re-profile
//!    at every phase flip. With `chain_cache: 8` every flip after the first
//!    cycle is a cache hit (the phase's shape was seen before); with
//!    `chain_cache: 0` every flip pays the full optimizer. The artifact
//!    commits the median per-reprofile wall-ns of both runs.
//!
//! Gates: projected speedup at 4 shards × 4 threads ≥ 1.8× over the same
//! shards on one thread, and cached re-specialization ≥ 5× cheaper than
//! uncached (medians). Exits nonzero if either gate fails.

use pdo::{AdaptConfig, OptimizeOptions};
use pdo_events::RuntimeConfig;
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, Value};
use pdo_server::{Server, ServerConfig, SessionId};
use std::time::Instant;

const SESSIONS: usize = 8;
const BURST: u64 = 2_000;
/// Event spacing within a burst (ns of virtual time).
const SPACING: u64 = 100;
/// Measured rounds per grid cell (mean ± CI taken across them).
const ROUNDS: usize = 9;
/// The scaling grid: every (shards, threads) cell measured.
const GRID: [(usize, usize); 5] = [(1, 1), (2, 1), (2, 2), (4, 1), (4, 4)];
/// Minimum projected speedup of (4,4) over (4,1).
const SCALING_GATE: f64 = 1.8;
/// Minimum uncached/cached median-reprofile ratio.
const CACHE_GATE: f64 = 5.0;

/// The scaling workload's session: one hot event, three chained handlers.
fn session_module() -> (Module, EventId, Vec<(EventId, FuncId, i32)>) {
    let mut m = Module::new();
    let e = m.add_event("Work");
    let g = m.add_global("acc", Value::Int(0));
    let mut binds = Vec::new();
    for k in 0..3i64 {
        let mut b = FunctionBuilder::new(format!("h{k}"), 0);
        b.lock(g);
        let v = b.load_global(g);
        let d = b.const_int(k + 1);
        let s = b.bin(BinOp::Add, v, d);
        b.store_global(g, s);
        b.unlock(g);
        b.ret(None);
        let f = m.add_function(b.finish());
        binds.push((e, f, k as i32));
    }
    (m, e, binds)
}

/// Steady-state adaptation config shared by every grid cell (identical to
/// the `server` criterion bench's adaptive fleet).
fn steady_adapt() -> AdaptConfig {
    AdaptConfig {
        epoch_ns: 100_000,
        min_fresh_events: 64,
        opts: OptimizeOptions::new(50),
        trace_sleep_epochs: 49,
        ..Default::default()
    }
}

/// One burst into every session, then drain the whole server.
fn drive(server: &mut Server, sids: &[SessionId], e: EventId) {
    let start = server.with_runtime(sids[0], |rt| rt.clock_ns()).unwrap();
    let delays: Vec<u64> = (0..BURST).map(|i| i * SPACING + 1).collect();
    for &sid in sids {
        server.submit_batch(sid, e, &delays).unwrap();
    }
    server.run_until(start + BURST * SPACING + 1).unwrap();
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Mean and normal-approximation 95% CI half-width over `xs`.
fn mean_ci(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

struct Cell {
    shards: usize,
    threads: usize,
    mean_ns: f64,
    ci95_ns: f64,
    events_per_sec: f64,
    busy_total_ns: u64,
    busy_max_worker_ns: u64,
    projected_wall_ns: f64,
}

/// Measures one grid cell: warm to convergence, then `ROUNDS` timed
/// bursts, with the per-shard busy-ns delta captured across exactly the
/// measured window.
fn measure_cell(shards: usize, threads: usize) -> Cell {
    let (m, e, binds) = session_module();
    let mut server = Server::new(ServerConfig {
        shards,
        threads,
        adapt: steady_adapt(),
        ..Default::default()
    });
    let sids: Vec<SessionId> = (0..SESSIONS)
        .map(|_| {
            server
                .open_session(m.clone(), RuntimeConfig::default(), &binds)
                .unwrap()
        })
        .collect();
    // Warm past adaptation convergence so measurement sees steady state.
    for _ in 0..3 {
        drive(&mut server, &sids, e);
    }
    for &sid in &sids {
        assert!(
            server
                .with_runtime(sid, move |rt| rt.spec().get(e).is_some())
                .unwrap(),
            "warmup must converge every session"
        );
    }

    let busy_before: Vec<u64> = server.shard_loads().iter().map(|l| l.busy_ns).collect();
    let mut walls = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        drive(&mut server, &sids, e);
        walls.push(t0.elapsed().as_nanos() as f64);
    }
    let busy: Vec<u64> = server
        .shard_loads()
        .iter()
        .zip(&busy_before)
        .map(|(l, b)| l.busy_ns - b)
        .collect();

    let workers = threads.min(shards).max(1);
    let mut per_worker = vec![0u64; workers];
    for (i, b) in busy.iter().enumerate() {
        per_worker[i % workers] += b;
    }
    let busy_total: u64 = busy.iter().sum();
    let busy_max_worker = per_worker.iter().copied().max().unwrap_or(0);

    let (mean_ns, ci95_ns) = mean_ci(&walls);
    let total_wall: f64 = walls.iter().sum();
    // Serial remainder (coordinator, channels, placement) + the longest
    // worker's busy chain = the run's wall time once workers have their
    // own cores. On a multi-core host this converges to the measurement.
    let projected_wall_ns =
        ((total_wall - busy_total as f64).max(0.0) + busy_max_worker as f64) / ROUNDS as f64;
    let events = (SESSIONS as u64 * BURST * ROUNDS as u64) as f64;
    Cell {
        shards,
        threads,
        mean_ns,
        ci95_ns,
        events_per_sec: events / (total_wall / 1e9),
        busy_total_ns: busy_total,
        busy_max_worker_ns: busy_max_worker,
        projected_wall_ns,
    }
}

/// The cache workload's session: two events, four handlers each, so the
/// optimizer has real work to do on every uncached re-specialization.
fn two_event_module() -> (Module, [EventId; 2], Vec<(EventId, FuncId, i32)>) {
    let mut m = Module::new();
    let a = m.add_event("A");
    let b = m.add_event("B");
    let ga = m.add_global("acc_a", Value::Int(0));
    let gb = m.add_global("acc_b", Value::Int(0));
    let mut binds = Vec::new();
    for (ev, g, tag) in [(a, ga, "a"), (b, gb, "b")] {
        for k in 0..4i64 {
            let mut fb = FunctionBuilder::new(format!("{tag}{k}"), 0);
            let v = fb.load_global(g);
            let d = fb.const_int(k + 1);
            let o = fb.bin(BinOp::Add, v, d);
            fb.store_global(g, o);
            fb.ret(None);
            binds.push((ev, m.add_function(fb.finish()), k as i32));
        }
    }
    (m, [a, b], binds)
}

struct CacheRun {
    median_reprofile_ns: f64,
    reprofiles: u64,
    hits: u64,
    misses: u64,
}

/// Drives the oscillating two-phase workload with the given cache
/// capacity and reports the median per-reprofile wall cost.
fn measure_cache(capacity: usize) -> CacheRun {
    let (m, [a, b], binds) = two_event_module();
    let mut server = Server::new(ServerConfig {
        shards: 1,
        threads: 1,
        adapt: AdaptConfig {
            epoch_ns: 1_000,
            min_fresh_events: 20,
            opts: OptimizeOptions::new(10),
            chain_cache: capacity,
            ..Default::default()
        },
        ..Default::default()
    });
    let sid = server
        .open_session(m, RuntimeConfig::default(), &binds)
        .unwrap();
    let mut deadline = 0u64;
    for phase in 0..24 {
        let hot = if phase % 2 == 0 { a } else { b };
        let delays: Vec<u64> = (0..80).map(|i| i * SPACING + 1).collect();
        server.submit_batch(sid, hot, &delays).unwrap();
        deadline += 80 * SPACING + 1;
        server.run_until(deadline).unwrap();
    }
    let median_reprofile_ns = server
        .with_engine(sid, |eng| eng.reprofile_wall_ns().quantile(0.5))
        .unwrap() as f64;
    let stats = server.engine_stats(sid).unwrap();
    CacheRun {
        median_reprofile_ns,
        reprofiles: stats.reprofiles,
        hits: stats.cache_hits,
        misses: stats.cache_misses,
    }
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server_scaling.json".into());
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let cells: Vec<Cell> = GRID
        .iter()
        .map(|&(s, t)| {
            let c = measure_cell(s, t);
            println!(
                "{}x{}: wall {:.2} ms ± {:.2}, {:.0} events/s, \
                 busy {:.2} ms (max worker {:.2} ms), projected {:.2} ms",
                s,
                t,
                c.mean_ns / 1e6,
                c.ci95_ns / 1e6,
                c.events_per_sec,
                c.busy_total_ns as f64 / 1e6,
                c.busy_max_worker_ns as f64 / 1e6,
                c.projected_wall_ns / 1e6,
            );
            c
        })
        .collect();

    let cell = |s: usize, t: usize| cells.iter().find(|c| c.shards == s && c.threads == t);
    let base = cell(4, 1).unwrap();
    let par = cell(4, 4).unwrap();
    let speedup_wall = base.mean_ns / par.mean_ns;
    let speedup_projected = base.mean_ns / par.projected_wall_ns;
    let scaling_basis = if host_cores >= 4 { "wall" } else { "projected" };
    let scaling_speedup = if host_cores >= 4 {
        speedup_wall
    } else {
        speedup_projected
    };
    let pass_scaling = scaling_speedup >= SCALING_GATE;

    let cached = measure_cache(8);
    let uncached = measure_cache(0);
    let mut cache_medians = Vec::new();
    // One interleaved re-measurement pair tightens the ratio against drift.
    for _ in 0..2 {
        cache_medians.push(measure_cache(8).median_reprofile_ns);
    }
    let cached_med = median(
        &mut [cached.median_reprofile_ns]
            .iter()
            .chain(cache_medians.iter())
            .copied()
            .collect::<Vec<_>>(),
    );
    let cache_ratio = uncached.median_reprofile_ns / cached_med.max(1.0);
    let pass_cache = cache_ratio >= CACHE_GATE;
    println!(
        "cache: median reprofile {:.0} ns cached (hits {} / misses {}) vs \
         {:.0} ns uncached ({} reprofiles) — {:.1}x",
        cached_med,
        cached.hits,
        cached.misses,
        uncached.median_reprofile_ns,
        uncached.reprofiles,
        cache_ratio,
    );

    let pass = pass_scaling && pass_cache;
    let grid_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{ \"shards\": {}, \"threads\": {}, \"wall_mean_ns\": {:.0}, \
                 \"wall_ci95_ns\": {:.0}, \"events_per_sec\": {:.0}, \
                 \"busy_total_ns\": {}, \"busy_max_worker_ns\": {}, \
                 \"projected_wall_ns\": {:.0} }}",
                c.shards,
                c.threads,
                c.mean_ns,
                c.ci95_ns,
                c.events_per_sec,
                c.busy_total_ns,
                c.busy_max_worker_ns,
                c.projected_wall_ns,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"server/scaling/{SESSIONS}x{BURST}\",\n  \
         \"host_cores\": {host_cores},\n  \"rounds\": {ROUNDS},\n  \
         \"grid\": [\n{}\n  ],\n  \
         \"speedup_wall_4x4_vs_4x1\": {speedup_wall:.3},\n  \
         \"speedup_projected_4x4_vs_4x1\": {speedup_projected:.3},\n  \
         \"scaling_basis\": \"{scaling_basis}\",\n  \
         \"scaling_gate\": {SCALING_GATE},\n  \"pass_scaling\": {pass_scaling},\n  \
         \"cache\": {{ \"median_reprofile_ns_cached\": {cached_med:.0}, \
         \"median_reprofile_ns_uncached\": {:.0}, \
         \"cache_hits\": {}, \"cache_misses\": {}, \
         \"uncached_reprofiles\": {}, \"ratio\": {cache_ratio:.2}, \
         \"gate\": {CACHE_GATE}, \"pass_cache\": {pass_cache} }},\n  \
         \"pass\": {pass}\n}}\n",
        grid_json.join(",\n"),
        uncached.median_reprofile_ns,
        cached.hits,
        cached.misses,
        uncached.reprofiles,
    );
    std::fs::write(&out, &json).expect("write BENCH_server_scaling.json");
    print!("{json}");
    if !pass {
        eprintln!(
            "server scaling gate FAILED: scaling {scaling_speedup:.2}x \
             ({scaling_basis}, gate {SCALING_GATE}) cache {cache_ratio:.2}x \
             (gate {CACHE_GATE})"
        );
        std::process::exit(1);
    }
    println!(
        "server scaling passed: {scaling_speedup:.2}x {scaling_basis} scaling, \
         {cache_ratio:.2}x cheaper cached re-specialization"
    );
}
