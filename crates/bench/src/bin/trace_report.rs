//! Offline causal-trace analyzer: turns a line dump (from
//! `Client::trace_dump(…, TraceFormat::Lines)`, the chaos oracle, or
//! `export_lines`) into per-trace critical paths and a latency
//! attribution summary.
//!
//! Usage: `trace_report <dump-file>` (or `-` to read stdin). For every
//! trace in the dump it prints the happens-before critical path —
//! root-first, indented, with the per-span layer and duration — followed
//! by the attribution footer (fast/slow handler time, wire time,
//! scheduler wait, other). A final table aggregates attribution across
//! all traces so a profile run's dominant cost shows at a glance.

use pdo_obs::trace::{attribute, critical_path, parse_lines, render_path, trace_ids, Attribution};
use std::io::Read;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| {
        eprintln!("usage: trace_report <dump-file|->");
        std::process::exit(2);
    });
    let text = if arg == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s).expect("read stdin");
        s
    } else {
        std::fs::read_to_string(&arg).unwrap_or_else(|e| {
            eprintln!("trace_report: cannot read {arg}: {e}");
            std::process::exit(2);
        })
    };

    let spans = parse_lines(&text);
    if spans.is_empty() {
        eprintln!("trace_report: no parseable spans in {arg}");
        std::process::exit(1);
    }
    let traces = trace_ids(&spans);
    println!("{} spans across {} traces\n", spans.len(), traces.len());

    let mut total = Attribution::default();
    let mut rows: Vec<(u64, usize, Attribution)> = Vec::new();
    for t in &traces {
        let path = critical_path(&spans, *t);
        let a = attribute(&path);
        println!("trace {} — critical path ({} spans):", t.0, path.len());
        print!("{}", render_path(&path));
        println!();
        total.fast_ns += a.fast_ns;
        total.slow_ns += a.slow_ns;
        total.wire_ns += a.wire_ns;
        total.sched_wait_ns += a.sched_wait_ns;
        total.other_ns += a.other_ns;
        rows.push((t.0, path.len(), a));
    }

    println!("summary (critical-path attribution, virtual ns):");
    println!(
        "{:>20} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "trace", "spans", "fast", "slow", "wire", "sched", "other", "total"
    );
    for (t, n, a) in &rows {
        println!(
            "{t:>20} {n:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            a.fast_ns,
            a.slow_ns,
            a.wire_ns,
            a.sched_wait_ns,
            a.other_ns,
            a.total_ns()
        );
    }
    println!(
        "{:>20} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "all",
        spans.len(),
        total.fast_ns,
        total.slow_ns,
        total.wire_ns,
        total.sched_wait_ns,
        total.other_ns,
        total.total_ns()
    );
}
