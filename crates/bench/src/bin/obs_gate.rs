//! Observability overhead gate: proves the `pdo-obs` dispatch
//! instrumentation is near-free.
//!
//! Times the same synthetic fast-path dispatch workload on two identical
//! runtimes — one with metrics off (`Runtime.obs == None`, a single
//! `Option` check on the hot path) and one with a live [`pdo_obs::ObsHub`]
//! recording per-event latency histograms — in interleaved rounds so
//! machine drift hits both sides equally. The headline statistic is the
//! ratio of the medians of the per-round minimum batch averages (the
//! shim's robust number); the gate fails if metrics-on costs more than
//! [`GATE`] (5%) over metrics-off.
//!
//! Writes `BENCH_dispatch.json` (mean, 95% CI, and on/off ratio — the
//! machine-readable artifact CI checks in) to the path given as the first
//! argument, default `BENCH_dispatch.json` in the working directory, and
//! exits nonzero when the gate fails.

use criterion::{black_box, measure, Measurement};
use pdo::{optimize, OptimizeOptions};
use pdo_events::{Runtime, TraceConfig};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_profile::Profile;

/// Maximum tolerated metrics-on/metrics-off ratio.
const GATE: f64 = 1.05;

/// Interleaved measurement rounds per side (median taken across them).
const ROUNDS: usize = 9;

/// Batch-average samples per round (passed to the criterion shim).
const SAMPLES: usize = 10;

fn build_module(handlers: usize) -> (Module, EventId, Vec<FuncId>) {
    let mut m = Module::new();
    let e = m.add_event("E");
    let g = m.add_global("acc", Value::Int(0));
    let ids = (0..handlers)
        .map(|i| {
            let mut b = FunctionBuilder::new(format!("h{i}"), 1);
            b.lock(g);
            let v = b.load_global(g);
            let k = b.const_int(i as i64 + 1);
            let s = b.bin(BinOp::Add, v, k);
            b.store_global(g, s);
            b.unlock(g);
            b.ret(None);
            m.add_function(b.finish())
        })
        .collect();
    (m, e, ids)
}

fn runtime_for(m: &Module, e: EventId, hs: &[FuncId]) -> Runtime {
    let mut rt = Runtime::new(m.clone());
    for (i, &h) in hs.iter().enumerate() {
        rt.bind(e, h, i as i32).expect("bind");
    }
    rt
}

/// Builds a runtime running the specialized fast path for `E`, matching
/// the `dispatch` bench's fastpath configuration.
fn fastpath_runtime(metrics: bool) -> (Runtime, EventId) {
    let (m, e, hs) = build_module(6);
    let mut prof_rt = runtime_for(&m, e, &hs);
    prof_rt.set_trace_config(TraceConfig::full());
    for _ in 0..100 {
        prof_rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
    }
    let profile = Profile::from_trace(&prof_rt.take_trace(), 50);
    let opt = optimize(&m, prof_rt.registry(), &profile, &OptimizeOptions::new(50));
    let mut rt = runtime_for(&opt.module, e, &hs);
    opt.install_chains(&mut rt);
    if metrics {
        rt.enable_observability();
    }
    (rt, e)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Mean and normal-approximation 95% CI half-width over `xs`.
fn mean_ci(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * (var / n).sqrt())
}

fn round(rt: &mut Runtime, e: EventId) -> Measurement {
    measure(
        || {
            rt.raise(black_box(e), RaiseMode::Sync, &[Value::Unit])
                .unwrap()
        },
        SAMPLES,
    )
}

fn json_side(mins: &[f64], means: &[f64]) -> String {
    let mut mins = mins.to_vec();
    let (mean, ci95) = mean_ci(means);
    format!(
        "{{ \"median_min_ns\": {:.2}, \"mean_ns\": {:.2}, \"ci95_ns\": {:.2} }}",
        median(&mut mins),
        mean,
        ci95
    )
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_dispatch.json".into());

    let (mut off_rt, e) = fastpath_runtime(false);
    let (mut on_rt, _) = fastpath_runtime(true);
    assert!(
        off_rt.obs().is_none(),
        "metrics-off runtime must have no hub"
    );
    assert!(on_rt.obs().is_some(), "metrics-on runtime must have a hub");

    let (mut off_min, mut off_mean) = (Vec::new(), Vec::new());
    let (mut on_min, mut on_mean) = (Vec::new(), Vec::new());
    for i in 0..ROUNDS {
        // Alternate the order within each round so slow drift (thermal,
        // scheduler) cancels instead of biasing one side.
        let (first, second): (&mut Runtime, &mut Runtime) = if i % 2 == 0 {
            (&mut off_rt, &mut on_rt)
        } else {
            (&mut on_rt, &mut off_rt)
        };
        let a = round(first, e);
        let b = round(second, e);
        let (off, on) = if i % 2 == 0 { (a, b) } else { (b, a) };
        off_min.push(off.min_ns);
        off_mean.push(off.mean_ns);
        on_min.push(on.min_ns);
        on_mean.push(on.mean_ns);
    }

    let off_json = json_side(&off_min, &off_mean);
    let on_json = json_side(&on_min, &on_mean);
    let ratio = median(&mut on_min.clone()) / median(&mut off_min.clone());
    let pass = ratio <= GATE;
    let json = format!(
        "{{\n  \"bench\": \"dispatch/fastpath/6\",\n  \"rounds\": {ROUNDS},\n  \
         \"metrics_off\": {off_json},\n  \"metrics_on\": {on_json},\n  \
         \"on_off_ratio\": {ratio:.4},\n  \"gate\": {GATE},\n  \"pass\": {pass}\n}}\n"
    );
    std::fs::write(&out, &json).expect("write BENCH_dispatch.json");
    print!("{json}");
    if !pass {
        eprintln!("obs gate FAILED: on/off ratio {ratio:.4} > {GATE}");
        std::process::exit(1);
    }
    println!("obs gate passed: on/off ratio {ratio:.4} <= {GATE}");
}
