//! Ablations over the optimizer's design choices (§3.2, §5).
//!
//! Each configuration disables or enables one mechanism; the measurement is
//! the SecComm push-chain latency (a pure synchronous chain, so every
//! mechanism is exercised) plus abstract cost counters.

use pdo::{optimize, OptimizeOptions};
use pdo_events::TraceConfig;
use pdo_profile::Profile;
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_PAPER};

/// A named optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationConfig {
    /// Display name.
    pub name: &'static str,
    /// Optimize at all (false = generic dispatch baseline).
    pub enabled: bool,
    /// Subsume child raises.
    pub subsume: bool,
    /// Inline handler bodies.
    pub inline: bool,
    /// Run the §3.2.2 compiler passes.
    pub compiler_passes: bool,
    /// Partitioned (Fig 14) guards.
    pub partitioned: bool,
}

/// The standard ablation ladder.
pub const CONFIGS: [AblationConfig; 6] = [
    AblationConfig {
        name: "generic (no optimization)",
        enabled: false,
        subsume: false,
        inline: false,
        compiler_passes: false,
        partitioned: false,
    },
    AblationConfig {
        name: "merge only",
        enabled: true,
        subsume: false,
        inline: false,
        compiler_passes: false,
        partitioned: false,
    },
    AblationConfig {
        name: "merge + subsume",
        enabled: true,
        subsume: true,
        inline: false,
        compiler_passes: false,
        partitioned: false,
    },
    AblationConfig {
        name: "merge + subsume + inline",
        enabled: true,
        subsume: true,
        inline: true,
        compiler_passes: false,
        partitioned: false,
    },
    AblationConfig {
        name: "full (+ compiler passes)",
        enabled: true,
        subsume: true,
        inline: true,
        compiler_passes: true,
        partitioned: false,
    },
    AblationConfig {
        name: "full, partitioned guards",
        enabled: true,
        subsume: true,
        inline: true,
        compiler_passes: true,
        partitioned: true,
    },
];

/// One ablation result row.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Configuration name.
    pub name: &'static str,
    /// Average push latency (ns).
    pub push_ns: f64,
    /// Abstract weighted cost for one push.
    pub weighted_cost: u64,
    /// Super-handler instruction count (0 for the generic baseline).
    pub super_instrs: usize,
}

/// Builds an endpoint for one ablation configuration (profiling once per
/// call; the cost of re-profiling keeps each row independent).
///
/// # Panics
///
/// Panics on substrate misconfiguration.
pub fn endpoint_for(config: &AblationConfig, threshold: u64) -> (Endpoint, usize) {
    let proto = seccomm_protocol();
    let base = proto.instantiate(CONFIG_PAPER).expect("paper config");
    let keys = Keys::default();
    if !config.enabled {
        return (Endpoint::new(&base, &keys).expect("endpoint"), 0);
    }

    let mut ep = Endpoint::new(&base, &keys).expect("endpoint");
    ep.runtime_mut().set_trace_config(TraceConfig::full());
    let mut wires = Vec::new();
    for i in 0..100u32 {
        wires.push(ep.push(&vec![i as u8; 256]).expect("profile push"));
    }
    for w in &wires {
        let _ = ep.pop(w).expect("profile pop");
    }
    let profile = Profile::from_trace(&ep.runtime_mut().take_trace(), threshold);

    let mut opts = OptimizeOptions::new(threshold);
    opts.subsume = config.subsume;
    opts.inline = config.inline;
    opts.compiler_passes = config.compiler_passes;
    opts.partitioned = config.partitioned;
    let optimization = optimize(&base.module, ep.runtime().registry(), &profile, &opts);
    let super_instrs = optimization
        .report
        .events
        .iter()
        .map(|e| e.instrs_optimized)
        .sum();

    let opt_program = base.with_module(optimization.module.clone());
    let mut out = Endpoint::new(&opt_program, &keys).expect("opt endpoint");
    optimization.install_chains(out.runtime_mut());
    (out, super_instrs)
}

/// Runs the ablation ladder.
///
/// # Panics
///
/// Panics on substrate misconfiguration.
pub fn ablation_rows(threshold: u64, iters: u32) -> Vec<AblationRow> {
    let msg = vec![0x5Au8; 256];
    CONFIGS
        .iter()
        .map(|config| {
            let (mut ep, super_instrs) = endpoint_for(config, threshold);
            let _ = ep.push(&msg).expect("warm");
            let push_ns = crate::avg_ns(iters / 10, iters, || {
                let _ = ep.push(&msg).expect("push");
            });
            ep.runtime_mut().reset_cost();
            let _ = ep.push(&msg).expect("cost probe");
            let weighted_cost = ep.runtime().cost.weighted_total();
            AblationRow {
                name: config.name,
                push_ns,
                weighted_cost,
                super_instrs,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_config_stays_byte_compatible() {
        let msg = vec![9u8; 128];
        let (mut reference, _) = endpoint_for(&CONFIGS[0], 50);
        let expected = reference.push(&msg).unwrap();
        for config in &CONFIGS[1..] {
            let (mut ep, _) = endpoint_for(config, 50);
            assert_eq!(
                ep.push(&msg).unwrap(),
                expected,
                "config `{}` diverged",
                config.name
            );
        }
    }

    #[test]
    fn abstract_cost_declines_down_the_ladder() {
        let rows = ablation_rows(50, 50);
        let generic = rows[0].weighted_cost;
        let full = rows[4].weighted_cost;
        assert!(
            full < generic,
            "full optimization must beat generic: {rows:#?}"
        );
        // Merging alone already removes marshaling + registry walks.
        assert!(rows[1].weighted_cost < generic);
        // Compiler passes shrink the super-handler body.
        assert!(rows[4].super_instrs <= rows[3].super_instrs);
    }
}
