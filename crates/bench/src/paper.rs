//! The paper's published numbers, for side-by-side comparison in reports
//! and for shape assertions in integration tests. We do not expect to match
//! absolute values (different substrate, different decade of hardware);
//! the *shape* — who wins, roughly by how much, where the crossover falls —
//! is the reproduction target.

/// Fig 10: video player. `(frame_rate, orig_total_s, opt_total_s,
/// orig_handler_s, opt_handler_s)`.
pub const FIG10: [(u32, f64, f64, f64, f64); 4] = [
    (10, 43.1, 41.9, 2.3, 0.9),
    (15, 30.9, 30.3, 1.6, 0.6),
    (20, 24.5, 22.1, 1.5, 0.5),
    (25, 23.9, 21.3, 1.5, 0.5),
];

/// Fig 11: event processing times in µs. `(event, orig_us, opt_us)`.
pub const FIG11: [(&str, f64, f64); 3] = [
    ("Adapt", 55.0, 11.0),
    ("SegFromUser", 346.0, 41.0),
    ("Seg2Net", 137.0, 37.0),
];

/// Fig 12: SecComm push/pop times in µs.
/// `(size, push_orig, push_opt, pop_orig, pop_opt)`.
pub const FIG12: [(usize, f64, f64, f64, f64); 6] = [
    (64, 274.0, 241.0, 397.0, 378.0),
    (128, 287.0, 263.0, 460.0, 448.0),
    (256, 304.0, 273.0, 484.0, 457.0),
    (512, 336.0, 299.0, 494.0, 470.0),
    (1024, 430.0, 373.0, 608.0, 570.0),
    (2048, 572.0, 552.0, 1016.0, 893.0),
];

/// Fig 13: X event execution times in µs. `(event, orig_us, opt_us)`.
pub const FIG13: [(&str, f64, f64); 2] = [("Scroll", 158.0, 148.0), ("Popup", 37.0, 31.0)];

/// §4.2 code-size growth percentages: `(program, percent)`.
pub const CODE_SIZE: [(&str, f64); 2] = [("video player", 1.3), ("SecComm", 1.1)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_internally_consistent() {
        // Optimized is faster everywhere in the paper.
        for (_, orig_t, opt_t, orig_h, opt_h) in FIG10 {
            assert!(opt_t <= orig_t);
            assert!(opt_h < orig_h);
        }
        for (_, o, p) in FIG11 {
            assert!(p < o);
        }
        for (_, po, pp, qo, qp) in FIG12 {
            assert!(pp < po);
            assert!(qp < qo);
        }
        for (_, o, p) in FIG13 {
            assert!(p < o);
        }
    }
}
