//! SecComm experiments: Fig 12 (push/pop times by packet size).

use pdo::{optimize, Optimization, OptimizeOptions};
use pdo_cactus::EventProgram;
use pdo_events::TraceConfig;
use pdo_profile::Profile;
use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_PAPER};

/// The Fig 12 packet sizes.
pub const SIZES: [usize; 6] = [64, 128, 256, 512, 1024, 2048];

/// A prepared SecComm experiment.
pub struct SecLab {
    /// The unoptimized program (paper configuration).
    pub base: EventProgram,
    /// The optimizer-extended program.
    pub opt_program: EventProgram,
    /// The optimization artifacts.
    pub optimization: Optimization,
    /// The gathered profile.
    pub profile: Profile,
    keys: Keys,
}

impl SecLab {
    /// Profiles the push and pop chains and optimizes at `threshold`.
    ///
    /// # Panics
    ///
    /// Panics on substrate misconfiguration.
    pub fn prepare(threshold: u64) -> SecLab {
        let proto = seccomm_protocol();
        let base = proto.instantiate(CONFIG_PAPER).expect("paper config");
        let keys = Keys::default();
        let mut ep = Endpoint::new(&base, &keys).expect("endpoint");
        // The paper sends a dummy message first to initialize the
        // micro-protocols, then measures repeated sends.
        let _ = ep.push(b"dummy").expect("dummy push");
        ep.runtime_mut().set_trace_config(TraceConfig::full());
        let mut wires = Vec::new();
        for i in 0..100u32 {
            let msg = vec![i as u8; 256];
            wires.push(ep.push(&msg).expect("profile push"));
        }
        for w in &wires {
            let _ = ep.pop(w).expect("profile pop");
        }
        let trace = ep.runtime_mut().take_trace();
        let profile = Profile::from_trace(&trace, threshold);
        let optimization = optimize(
            &base.module,
            ep.runtime().registry(),
            &profile,
            &OptimizeOptions::new(threshold),
        );
        let opt_program = base.with_module(optimization.module.clone());
        SecLab {
            base,
            opt_program,
            optimization,
            profile,
            keys,
        }
    }

    /// A fresh endpoint (chains installed when `optimized`).
    ///
    /// # Panics
    ///
    /// Panics on substrate misconfiguration.
    pub fn endpoint(&self, optimized: bool) -> Endpoint {
        let program = if optimized {
            &self.opt_program
        } else {
            &self.base
        };
        let mut ep = Endpoint::new(program, &self.keys).expect("endpoint");
        if optimized {
            self.optimization.install_chains(ep.runtime_mut());
        }
        ep
    }
}

/// One Fig 12 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig12Row {
    /// Packet size in bytes.
    pub size: usize,
    /// Push time, original (ns).
    pub push_orig_ns: f64,
    /// Push time, optimized (ns).
    pub push_opt_ns: f64,
    /// Pop time, original (ns).
    pub pop_orig_ns: f64,
    /// Pop time, optimized (ns).
    pub pop_opt_ns: f64,
}

/// Runs the Fig 12 sweep: average push and pop times per packet size.
///
/// # Panics
///
/// Panics on substrate misconfiguration.
pub fn fig12_rows(lab: &SecLab, iters: u32) -> Vec<Fig12Row> {
    let mut rows = Vec::new();
    for size in SIZES {
        let msg = vec![0x3Cu8; size];
        let time_push = |optimized: bool| {
            let mut ep = lab.endpoint(optimized);
            let _ = ep.push(&msg).expect("warm push");
            crate::avg_ns(iters / 10, iters, || {
                let _ = ep.push(&msg).expect("push");
            })
        };
        let time_pop = |optimized: bool| {
            let mut sender = lab.endpoint(false);
            let wire = sender.push(&msg).expect("wire build");
            let mut ep = lab.endpoint(optimized);
            let _ = ep.pop(&wire).expect("warm pop");
            crate::avg_ns(iters / 10, iters, || {
                let _ = ep.pop(&wire).expect("pop");
            })
        };
        rows.push(Fig12Row {
            size,
            push_orig_ns: time_push(false),
            push_opt_ns: time_push(true),
            pop_orig_ns: time_pop(false),
            pop_opt_ns: time_pop(true),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_optimizes_both_chains() {
        let lab = SecLab::prepare(50);
        let report = &lab.optimization.report;
        // msgFromUser, EncodeMsg, msgToNet, msgFromNet, DecodeMsg, msgToUser.
        assert!(
            report.events.len() >= 4,
            "{}",
            report.render(&lab.optimization.module)
        );
        assert!(report.total_subsumed() >= 2);
    }

    #[test]
    fn optimized_endpoint_is_byte_compatible() {
        let lab = SecLab::prepare(50);
        let mut orig = lab.endpoint(false);
        let mut opt = lab.endpoint(true);
        for len in [0usize, 64, 200, 1024] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 3) as u8).collect();
            let w1 = orig.push(&msg).unwrap();
            let w2 = opt.push(&msg).unwrap();
            assert_eq!(w1, w2, "len {len}");
            assert_eq!(orig.pop(&w1).unwrap(), msg);
            assert_eq!(opt.pop(&w2).unwrap(), msg);
        }
        assert!(opt.runtime().cost.fastpath_hits > 0);
    }

    #[test]
    fn optimization_reduces_dispatch_work() {
        let lab = SecLab::prepare(50);
        let msg = vec![1u8; 256];
        let mut orig = lab.endpoint(false);
        let mut opt = lab.endpoint(true);
        for _ in 0..10 {
            let _ = orig.push(&msg).unwrap();
            let _ = opt.push(&msg).unwrap();
        }
        let c_orig = orig.runtime().cost;
        let c_opt = opt.runtime().cost;
        assert!(c_opt.marshaled_values < c_orig.marshaled_values);
        assert!(c_opt.instrs < c_orig.instrs);
    }
}
