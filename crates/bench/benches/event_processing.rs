//! Fig 11 companion bench: per-event dispatch latency.

use criterion::{criterion_group, criterion_main, Criterion};
use pdo_bench::video::{VideoLab, THRESHOLD};
use pdo_ir::{RaiseMode, Value};

fn bench_events(c: &mut Criterion) {
    let lab = VideoLab::prepare(THRESHOLD);
    let seg = Value::bytes(vec![0xA5u8; 512]);
    let cases: [(&str, Vec<Value>); 3] = [
        ("Adapt", vec![]),
        ("SegFromUser", vec![seg.clone()]),
        ("Seg2Net", vec![seg]),
    ];
    let mut group = c.benchmark_group("event_processing");
    group.sample_size(20);
    for (name, args) in cases {
        for optimized in [false, true] {
            let mut endpoint = lab.endpoint(optimized);
            let event = endpoint
                .runtime()
                .module()
                .event_by_name(name)
                .expect("event");
            let label = if optimized { "opt" } else { "orig" };
            let args = args.clone();
            let mut n = 0u32;
            group.bench_function(format!("{name}/{label}"), |b| {
                b.iter(|| {
                    endpoint
                        .runtime_mut()
                        .raise(event, RaiseMode::Sync, &args)
                        .expect("raise");
                    n += 1;
                    if n.is_multiple_of(1024) {
                        endpoint.drain(10_000_000_000).expect("drain");
                    }
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
