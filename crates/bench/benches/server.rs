//! Multi-session server throughput: generic dispatch vs statically
//! pre-optimized chains vs the server's online adaptive loop.
//!
//! The acceptance bar for the adaptive loop is that its *steady-state*
//! throughput (after convergence, with the epoch daemon still sampling,
//! decaying, and re-profiling in the background) stays within 10% of a
//! fleet whose chains were compiled offline from a perfect profile. The
//! final summary line prints the measured ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use pdo::{optimize, AdaptConfig, Optimization, OptimizeOptions};
use pdo_bench::avg_ns;
use pdo_events::{Runtime, RuntimeConfig, TraceConfig};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, RaiseMode, Value};
use pdo_profile::Profile;
use pdo_server::{Server, ServerConfig, SessionId};

const SESSIONS: usize = 8;
const BURST: u64 = 2_000;
/// Event spacing within a burst (ns of virtual time).
const SPACING: u64 = 100;

/// A session module with one hot event bound to three chained handlers.
fn session_module() -> (Module, EventId, Vec<(EventId, FuncId, i32)>) {
    let mut m = Module::new();
    let e = m.add_event("Work");
    let g = m.add_global("acc", Value::Int(0));
    let mut binds = Vec::new();
    for k in 0..3i64 {
        let mut b = FunctionBuilder::new(format!("h{k}"), 0);
        b.lock(g);
        let v = b.load_global(g);
        let d = b.const_int(k + 1);
        let s = b.bin(BinOp::Add, v, d);
        b.store_global(g, s);
        b.unlock(g);
        b.ret(None);
        let f = m.add_function(b.finish());
        binds.push((e, f, k as i32));
    }
    (m, e, binds)
}

/// Submits one burst of timed raises to `rt` and drains it, padding the
/// clock to the deadline like the server does.
fn drive_runtime(rt: &mut Runtime, e: EventId, burst: u64) {
    let start = rt.clock_ns();
    for i in 0..burst {
        rt.raise(e, RaiseMode::Timed, &[Value::Int((i * SPACING + 1) as i64)])
            .unwrap();
    }
    let deadline = start + burst * SPACING + 1;
    rt.run_until(deadline).unwrap();
    let now = rt.clock_ns();
    if deadline > now {
        rt.advance_clock(deadline - now);
    }
}

/// Submits one burst to every server session and drains the whole server.
/// Injection uses one `submit_batch` per session, so the threaded server
/// pays one channel round trip per session per burst, not one per event.
fn drive_server(server: &mut Server, sids: &[SessionId], e: EventId, burst: u64) {
    let start = server.with_runtime(sids[0], |rt| rt.clock_ns()).unwrap();
    let delays: Vec<u64> = (0..burst).map(|i| i * SPACING + 1).collect();
    for &sid in sids {
        server.submit_batch(sid, e, &delays).unwrap();
    }
    server.run_until(start + burst * SPACING + 1).unwrap();
}

fn generic_fleet(m: &Module, binds: &[(EventId, FuncId, i32)]) -> Vec<Runtime> {
    (0..SESSIONS)
        .map(|_| {
            let mut rt = Runtime::new(m.clone());
            for &(e, h, order) in binds {
                rt.bind(e, h, order).unwrap();
            }
            rt
        })
        .collect()
}

/// The paper's offline pipeline: a perfect profile from a dedicated
/// profiling run, compiled into chains.
fn offline_optimization(m: &Module, e: EventId, binds: &[(EventId, FuncId, i32)]) -> Optimization {
    let mut prof_rt = Runtime::new(m.clone());
    for &(ev, h, order) in binds {
        prof_rt.bind(ev, h, order).unwrap();
    }
    prof_rt.set_trace_config(TraceConfig::full());
    for _ in 0..200 {
        prof_rt.raise(e, RaiseMode::Sync, &[]).unwrap();
    }
    let profile = Profile::from_trace(&prof_rt.take_trace(), 50);
    let opt = optimize(m, prof_rt.registry(), &profile, &OptimizeOptions::new(50));
    assert!(
        !opt.chains.is_empty(),
        "static pipeline must produce chains"
    );
    opt
}

/// Statically pre-optimized chains installed on a fresh raw fleet.
fn static_fleet(m: &Module, e: EventId, binds: &[(EventId, FuncId, i32)]) -> Vec<Runtime> {
    let opt = offline_optimization(m, e, binds);
    (0..SESSIONS)
        .map(|_| {
            let mut rt = Runtime::new(opt.module.clone());
            for &(ev, h, order) in binds {
                rt.bind(ev, h, order).unwrap();
            }
            opt.install_chains(&mut rt);
            rt
        })
        .collect()
}

/// Statically pre-optimized chains pinned inside server sessions: the
/// daemon is attached but can never re-profile (`min_fresh_events` is
/// maxed), so after its first sampled epoch sees deployed chains it
/// sleeps for good. Pays the same submit/shard/epoch machinery as the
/// adaptive server — the acceptance ratio isolates *adaptation* cost.
fn static_server(
    m: &Module,
    e: EventId,
    binds: &[(EventId, FuncId, i32)],
) -> (Server, Vec<SessionId>) {
    let opt = offline_optimization(m, e, binds);
    let mut server = Server::new(ServerConfig {
        shards: 4,
        adapt: AdaptConfig {
            epoch_ns: 100_000,
            min_fresh_events: u64::MAX,
            opts: OptimizeOptions::new(50),
            trace_sleep_epochs: 49,
            ..Default::default()
        },
        ..Default::default()
    });
    let sids: Vec<SessionId> = (0..SESSIONS)
        .map(|_| {
            server
                .open_session(m.clone(), RuntimeConfig::default(), binds)
                .unwrap()
        })
        .collect();
    for &sid in &sids {
        let pinned = opt.clone();
        server
            .with_runtime(sid, move |rt| {
                rt.replace_module(pinned.module.clone());
                pinned.install_chains(rt);
            })
            .unwrap();
    }
    // One burst lets every session's daemon observe the pinned chains and
    // put its tracer to sleep.
    drive_server(&mut server, &sids, e, BURST);
    (server, sids)
}

/// An adaptive server warmed past convergence: every session's hot chain
/// is installed by its own epoch daemon before measurement starts.
fn adaptive_server(
    m: &Module,
    e: EventId,
    binds: &[(EventId, FuncId, i32)],
) -> (Server, Vec<SessionId>) {
    let mut server = Server::new(ServerConfig {
        shards: 4,
        adapt: AdaptConfig {
            // One burst spans 200 µs of virtual time, so a 100 µs epoch
            // fires the daemon twice per burst: re-profile work amortizes
            // over ~1000 dispatches while the loop still runs *during*
            // measurement, not just between bursts.
            epoch_ns: 100_000,
            min_fresh_events: 64,
            opts: OptimizeOptions::new(50),
            // Steady state: fully instrumented one epoch in fifty; in
            // between, tracing is off and the generic-dispatch counters
            // (plus demand wake) watch for shifts. Healing still runs
            // every epoch.
            trace_sleep_epochs: 49,
            ..Default::default()
        },
        ..Default::default()
    });
    let sids: Vec<SessionId> = (0..SESSIONS)
        .map(|_| {
            server
                .open_session(m.clone(), RuntimeConfig::default(), binds)
                .unwrap()
        })
        .collect();
    for _ in 0..3 {
        drive_server(&mut server, &sids, e, BURST);
    }
    for &sid in &sids {
        assert!(
            server
                .with_runtime(sid, move |rt| rt.spec().get(e).is_some())
                .unwrap(),
            "warmup must converge every session"
        );
    }
    (server, sids)
}

fn bench_server(c: &mut Criterion) {
    let (m, e, binds) = session_module();
    let mut group = c.benchmark_group("server");
    group.sample_size(10);

    let mut generic = generic_fleet(&m, &binds);
    group.bench_function(format!("generic/{SESSIONS}x{BURST}"), |b| {
        b.iter(|| {
            for rt in &mut generic {
                drive_runtime(rt, e, BURST);
            }
        })
    });

    let mut fixed = static_fleet(&m, e, &binds);
    group.bench_function(format!("static/{SESSIONS}x{BURST}"), |b| {
        b.iter(|| {
            for rt in &mut fixed {
                drive_runtime(rt, e, BURST);
            }
        })
    });

    let (mut server, sids) = adaptive_server(&m, e, &binds);
    group.bench_function(format!("adaptive/{SESSIONS}x{BURST}"), |b| {
        b.iter(|| drive_server(&mut server, &sids, e, BURST))
    });
    group.finish();

    // The acceptance ratio, measured outside the criterion shim so the
    // summary line can compare the two directly. Both fleets live behind
    // identical servers — only the adaptation loop differs — and their
    // batches are interleaved so machine noise and thermal drift hit both
    // sides equally; the median per-round ratio is what counts.
    let (mut pinned, pinned_sids) = static_server(&m, e, &binds);
    let (mut server, sids) = adaptive_server(&m, e, &binds);
    let mut ratios = Vec::new();
    let (mut static_ns, mut adaptive_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        let s = avg_ns(1, 4, || drive_server(&mut pinned, &pinned_sids, e, BURST));
        let a = avg_ns(1, 4, || drive_server(&mut server, &sids, e, BURST));
        static_ns = static_ns.min(s);
        adaptive_ns = adaptive_ns.min(a);
        ratios.push(a / s);
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];
    let events = (SESSIONS as u64 * BURST) as f64;
    println!(
        "server/steady-state: static {:.1} ns/event, adaptive {:.1} ns/event, \
         adaptive/static = {:.1}% median of {} interleaved rounds \
         (acceptance: <= 110%)",
        static_ns / events,
        adaptive_ns / events,
        ratio * 100.0,
        ratios.len(),
    );
    let report = server.report();
    println!(
        "server/adaptive-loop: {} dispatched, {} fast-path, {} re-profiles, \
         {} chains installed across {} sessions",
        report.dispatched(),
        report.fastpath_hits(),
        report
            .shards
            .iter()
            .map(|s| s.adapt.reprofiles)
            .sum::<u64>(),
        report
            .shards
            .iter()
            .map(|s| s.adapt.chains_installed)
            .sum::<u64>(),
        report.sessions.len(),
    );
}

criterion_group!(benches, bench_server);
criterion_main!(benches);
