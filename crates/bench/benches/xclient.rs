//! Fig 13 companion bench: X client Popup and Scroll latency.

use criterion::{criterion_group, criterion_main, Criterion};
use pdo_bench::xcli::XLab;

fn bench_xclient(c: &mut Criterion) {
    let lab = XLab::prepare(100);
    let mut group = c.benchmark_group("xclient");
    group.sample_size(30);
    for optimized in [false, true] {
        let label = if optimized { "opt" } else { "orig" };
        let mut popup_client = lab.client(optimized);
        group.bench_function(format!("popup/{label}"), |b| {
            b.iter(|| popup_client.popup(10, 20).expect("popup"))
        });
        let mut scroll_client = lab.client(optimized);
        group.bench_function(format!("scroll/{label}"), |b| {
            b.iter(|| scroll_client.scroll(42).expect("scroll"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xclient);
criterion_main!(benches);
