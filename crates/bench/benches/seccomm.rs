//! Fig 12 companion bench: SecComm push/pop latency by packet size.

use criterion::{criterion_group, criterion_main, Criterion};
use pdo_bench::secc::SecLab;

fn bench_seccomm(c: &mut Criterion) {
    let lab = SecLab::prepare(50);
    let mut group = c.benchmark_group("seccomm");
    group.sample_size(20);
    for size in [64usize, 512, 2048] {
        let msg = vec![0x3Cu8; size];
        for optimized in [false, true] {
            let label = if optimized { "opt" } else { "orig" };
            let mut push_ep = lab.endpoint(optimized);
            group.bench_function(format!("push/{size}/{label}"), |b| {
                b.iter(|| push_ep.push(&msg).expect("push"))
            });
            let wire = lab.endpoint(false).push(&msg).expect("wire");
            let mut pop_ep = lab.endpoint(optimized);
            group.bench_function(format!("pop/{size}/{label}"), |b| {
                b.iter(|| pop_ep.pop(&wire).expect("pop"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_seccomm);
criterion_main!(benches);
