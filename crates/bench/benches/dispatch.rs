//! Microbench of the dispatch mechanisms themselves: generic registry walk
//! vs guarded fast path vs guard-miss fallback, over a synthetic event with
//! a configurable handler count.

use criterion::{criterion_group, criterion_main, Criterion};
use pdo::{optimize, OptimizeOptions};
use pdo_events::{Runtime, TraceConfig};
use pdo_ir::{BinOp, FunctionBuilder, Module, RaiseMode, Value};
use pdo_profile::Profile;

fn build_module(handlers: usize) -> (Module, pdo_ir::EventId, Vec<pdo_ir::FuncId>) {
    let mut m = Module::new();
    let e = m.add_event("E");
    let g = m.add_global("acc", Value::Int(0));
    let ids = (0..handlers)
        .map(|i| {
            let mut b = FunctionBuilder::new(format!("h{i}"), 1);
            b.lock(g);
            let v = b.load_global(g);
            let k = b.const_int(i as i64 + 1);
            let s = b.bin(BinOp::Add, v, k);
            b.store_global(g, s);
            b.unlock(g);
            b.ret(None);
            m.add_function(b.finish())
        })
        .collect();
    (m, e, ids)
}

fn runtime_for(m: &Module, e: pdo_ir::EventId, hs: &[pdo_ir::FuncId]) -> Runtime {
    let mut rt = Runtime::new(m.clone());
    for (i, &h) in hs.iter().enumerate() {
        rt.bind(e, h, i as i32).expect("bind");
    }
    rt
}

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(30);
    for handlers in [1usize, 3, 6] {
        let (m, e, hs) = build_module(handlers);

        // Generic path.
        let mut generic = runtime_for(&m, e, &hs);
        group.bench_function(format!("generic/{handlers}"), |b| {
            b.iter(|| generic.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap())
        });

        // Profile + optimize for the fast path.
        let mut prof_rt = runtime_for(&m, e, &hs);
        prof_rt.set_trace_config(TraceConfig::full());
        for _ in 0..100 {
            prof_rt.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap();
        }
        let profile = Profile::from_trace(&prof_rt.take_trace(), 50);
        let opt = optimize(&m, prof_rt.registry(), &profile, &OptimizeOptions::new(50));

        let mut fast = runtime_for(&opt.module, e, &hs);
        opt.install_chains(&mut fast);
        group.bench_function(format!("fastpath/{handlers}"), |b| {
            b.iter(|| fast.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap())
        });

        // Guard miss: re-bind after installing.
        let mut miss = runtime_for(&opt.module, e, &hs);
        opt.install_chains(&mut miss);
        miss.unbind(e, hs[0]);
        miss.bind(e, hs[0], 0).expect("rebind");
        group.bench_function(format!("guard_miss/{handlers}"), |b| {
            b.iter(|| miss.raise(e, RaiseMode::Sync, &[Value::Unit]).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
