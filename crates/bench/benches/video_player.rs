//! Fig 10 companion bench: full playback sessions, original vs optimized.

use criterion::{criterion_group, criterion_main, Criterion};
use pdo_bench::video::{VideoLab, THRESHOLD};
use pdo_ctp::VideoPlayer;

fn bench_video(c: &mut Criterion) {
    let lab = VideoLab::prepare(THRESHOLD);
    let mut group = c.benchmark_group("video_player_50_frames");
    group.sample_size(10);
    for rate in [10u32, 25] {
        group.bench_function(format!("orig_{rate}fps"), |b| {
            b.iter(|| {
                let mut p = VideoPlayer::new(lab.endpoint(false), rate);
                p.play(50).expect("play")
            })
        });
        group.bench_function(format!("opt_{rate}fps"), |b| {
            b.iter(|| {
                let mut p = VideoPlayer::new(lab.endpoint(true), rate);
                p.play(50).expect("play")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_video);
criterion_main!(benches);
