//! Ablation bench: the SecComm push chain under partial optimizations.

use criterion::{criterion_group, criterion_main, Criterion};
use pdo_bench::ablate::{endpoint_for, CONFIGS};

fn bench_ablation(c: &mut Criterion) {
    let msg = vec![0x5Au8; 256];
    let mut group = c.benchmark_group("ablation_push_256");
    group.sample_size(20);
    for config in &CONFIGS {
        let (mut ep, _) = endpoint_for(config, 50);
        group.bench_function(config.name.replace(' ', "_"), |b| {
            b.iter(|| ep.push(&msg).expect("push"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
