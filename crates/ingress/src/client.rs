//! A blocking ingress client: one connection, synchronous
//! request/reply. This is the reference peer for tests and examples; the
//! `ingress_load` generator multiplexes thousands of logical clients per
//! connection with its own non-blocking driver, but speaks exactly the
//! same [`proto`] frames.

use crate::proto::{
    self, OpenKind, Reply, Request, SessionStats, TraceFormat, TraceSelector, WireMode,
};
use crate::IngressError;
use pdo_ir::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

enum Sock {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// A synchronous ingress connection.
pub struct Client {
    sock: Sock,
    buf: proto::FrameBuffer,
    next_req: u64,
}

impl Client {
    /// Connects over TCP with a default 10s read timeout (so a wedged
    /// server surfaces as a typed error, not a hang).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect_tcp(addr: SocketAddr) -> Result<Client, IngressError> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        s.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            sock: Sock::Tcp(s),
            buf: proto::FrameBuffer::new(),
            next_req: 1,
        })
    }

    /// Connects over a Unix socket with the same defaults.
    ///
    /// # Errors
    ///
    /// Propagates connect/configure failures.
    pub fn connect_unix(path: &Path) -> Result<Client, IngressError> {
        let s = UnixStream::connect(path)?;
        s.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            sock: Sock::Unix(s),
            buf: proto::FrameBuffer::new(),
            next_req: 1,
        })
    }

    /// Overrides the read timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket configuration failures.
    pub fn set_read_timeout(&mut self, t: Option<Duration>) -> Result<(), IngressError> {
        match &self.sock {
            Sock::Tcp(s) => s.set_read_timeout(t)?,
            Sock::Unix(s) => s.set_read_timeout(t)?,
        }
        Ok(())
    }

    fn write_all(&mut self, bytes: &[u8]) -> Result<(), IngressError> {
        match &mut self.sock {
            Sock::Tcp(s) => s.write_all(bytes)?,
            Sock::Unix(s) => s.write_all(bytes)?,
        }
        Ok(())
    }

    /// Sends raw bytes verbatim — the corruption tests use this to put
    /// deliberately broken frames on the wire.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), IngressError> {
        self.write_all(bytes)
    }

    fn read_some(&mut self) -> Result<(), IngressError> {
        let mut chunk = [0u8; 16 * 1024];
        let n = match &mut self.sock {
            Sock::Tcp(s) => s.read(&mut chunk)?,
            Sock::Unix(s) => s.read(&mut chunk)?,
        };
        if n == 0 {
            return Err(IngressError::Closed);
        }
        self.buf.extend(&chunk[..n]);
        Ok(())
    }

    /// Reads until one complete reply frame is available and decodes it.
    ///
    /// # Errors
    ///
    /// Typed decode errors; [`IngressError::Closed`] on EOF;
    /// [`IngressError::Io`] on timeout.
    pub fn recv_reply(&mut self) -> Result<(u64, Reply), IngressError> {
        loop {
            if let Some(frame) = self.buf.next_frame(proto::MAX_FRAME_LEN)? {
                return proto::decode_reply(&frame);
            }
            self.read_some()?;
        }
    }

    /// Sends `req` and blocks until its reply arrives (replies are
    /// matched by request id; replies to other in-flight ids from the
    /// same connection would be skipped, but a blocking client never has
    /// any).
    ///
    /// # Errors
    ///
    /// As [`Client::recv_reply`].
    pub fn request(&mut self, req: &Request) -> Result<Reply, IngressError> {
        let id = self.next_req;
        self.next_req += 1;
        let frame = proto::encode_request(id, req);
        self.write_all(&frame)?;
        loop {
            let (rid, reply) = self.recv_reply()?;
            if rid == id {
                return Ok(reply);
            }
        }
    }

    /// Opens a session, returning its id.
    ///
    /// # Errors
    ///
    /// Transport errors, plus [`IngressError::Closed`] mapped from
    /// non-`Opened` replies via [`unexpected`].
    pub fn open(&mut self, kind: OpenKind) -> Result<u64, IngressError> {
        match self.request(&Request::Open(kind))? {
            Reply::Opened { session } => Ok(session),
            other => Err(unexpected("Opened", &other)),
        }
    }

    /// Raises `event` on `session`; returns the server's reply verbatim
    /// (callers decide how to treat `Shed` / `Error`).
    ///
    /// # Errors
    ///
    /// Transport errors only.
    pub fn raise(
        &mut self,
        session: u64,
        event: u32,
        mode: WireMode,
        args: Vec<Value>,
    ) -> Result<Reply, IngressError> {
        self.request(&Request::Raise {
            session,
            event,
            mode,
            args,
        })
    }

    /// Queries one session's counters.
    ///
    /// # Errors
    ///
    /// Transport errors; non-`Stats` replies via [`unexpected`].
    pub fn query(&mut self, session: u64) -> Result<SessionStats, IngressError> {
        match self.request(&Request::Query { session })? {
            Reply::Stats(s) => Ok(s),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Closes a session; true when it existed.
    ///
    /// # Errors
    ///
    /// Transport errors; non-`Closed` replies via [`unexpected`].
    pub fn close(&mut self, session: u64) -> Result<bool, IngressError> {
        match self.request(&Request::Close { session })? {
            Reply::Closed { existed } => Ok(existed),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Scrapes the whole deployment (server + ingress) as one Prometheus
    /// text exposition — the remote-scrape path (`curl`-equivalent over
    /// the wire protocol).
    ///
    /// # Errors
    ///
    /// Transport errors; non-`MetricsText` replies via [`unexpected`].
    pub fn scrape_metrics(&mut self) -> Result<String, IngressError> {
        match self.request(&Request::MetricsScrape)? {
            Reply::MetricsText { text } => Ok(text),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// Pulls retained causal trace spans from every layer in the chosen
    /// format (line dump for `trace_report`, Chrome JSON for Perfetto).
    ///
    /// # Errors
    ///
    /// Transport errors; non-`Trace` replies via [`unexpected`] —
    /// including the typed `Error` for an over-frame-limit Chrome dump.
    pub fn trace_dump(
        &mut self,
        selector: TraceSelector,
        format: TraceFormat,
    ) -> Result<String, IngressError> {
        match self.request(&Request::TraceDump { selector, format })? {
            Reply::Trace { body } => Ok(body),
            other => Err(unexpected("Trace", &other)),
        }
    }
}

/// Maps an unexpected-but-well-formed reply into a typed error carrying
/// the reply's own rendering (e.g. the server's `Error { message }`).
fn unexpected(wanted: &str, got: &Reply) -> IngressError {
    IngressError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("expected {wanted} reply, got {got:?}"),
    ))
}
