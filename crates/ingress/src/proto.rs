//! The ingress wire protocol: length-prefixed, versioned, checksummed
//! frames carrying session commands and typed replies.
//!
//! A frame is exactly the `pdo-snap` framing discipline under a different
//! magic — `magic(8) | version(u32) | payload_len(u64) | payload |
//! fnv1a64(checksum)` — so the reader inherits the same hardening: corrupt
//! input is always a typed error, never a panic. The payload begins with a
//! caller-chosen `req_id` (replies are matched by id, not by arrival
//! order, because a `Shed` reply can overtake queued work) followed by a
//! command or reply body.
//!
//! Raise arguments travel in the `pdo-events` marshaling layout — a tag
//! vector then the value bodies, exactly how [`pdo_events::marshal`]
//! packs arguments for generic dispatch — and the decoder runs the same
//! tag/value validation walk ([`unmarshal`]) the generic path pays. The
//! tag bytes are the shared vocabulary pinned by
//! [`pdo_events::marshal::Tag::to_byte`].
//!
//! Error classification matters more than error detail here: a frame that
//! fails *framing* (bad magic, bad version, bad checksum, impossible
//! length) proves the byte stream itself is unreliable, so the connection
//! must die; a frame whose checksum verifies but whose *payload* grammar
//! is wrong proves only that one request is garbage, so the reply is a
//! typed `Error` and the connection lives. [`IngressError::is_stream_fatal`]
//! encodes that split.

use crate::IngressError;
use pdo_events::marshal::{marshal, unmarshal, Marshaled, Tag};
use pdo_ir::{Module, Value};
use pdo_snap::{peek_frame_len, SnapReader, SnapWriter, SnapshotError};

/// Leading bytes of every ingress frame. Distinct from the `pdo-snap`
/// durable-image magic so a wire frame can never be mistaken for a
/// snapshot file (or vice versa).
pub const WIRE_MAGIC: [u8; 8] = *b"PDOWIRE\0";

/// Wire format version this build speaks.
pub const WIRE_VERSION: u32 = 1;

/// Hard ceiling on one frame (header + payload + checksum). The reader
/// rejects larger declarations before buffering them, so a hostile
/// length field cannot balloon memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

const REQ_OPEN: u8 = 1;
const REQ_RAISE: u8 = 2;
const REQ_QUERY: u8 = 3;
const REQ_CLOSE: u8 = 4;
const REQ_METRICS: u8 = 5;
const REQ_TRACE_DUMP: u8 = 6;

const OPEN_PLAIN: u8 = 0;
const OPEN_CTP: u8 = 1;
const OPEN_SECCOMM: u8 = 2;

const MODE_SYNC: u8 = 0;
const MODE_ASYNC: u8 = 1;
const MODE_TIMED: u8 = 2;

const REP_OPENED: u8 = 1;
const REP_DONE: u8 = 2;
const REP_STATS: u8 = 3;
const REP_CLOSED: u8 = 4;
const REP_SHED: u8 = 5;
const REP_ERROR: u8 = 6;
const REP_METRICS_TEXT: u8 = 7;
const REP_TRACE: u8 = 8;

const TRACE_SEL_LAST: u8 = 0;
const TRACE_SEL_ID: u8 = 1;

const TRACE_FMT_LINES: u8 = 0;
const TRACE_FMT_CHROME: u8 = 1;

/// What kind of session an `Open` creates on the connection's shard.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenKind {
    /// A plain event program: the module travels as IR text plus its
    /// (event, func, order) handler bindings.
    Plain {
        /// The module to load (IR text on the wire).
        module: Module,
        /// Handler bindings as raw (event, func, order) triples.
        bindings: Vec<(u32, u32, i32)>,
    },
    /// The server's canonical CTP transport session.
    Ctp,
    /// The server's canonical SecComm secure-channel session.
    SecComm,
}

/// Raise mode on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// Dispatch before replying.
    Sync,
    /// Enqueue on the session's async FIFO.
    Async,
    /// Enqueue on the session's timer queue, due `delay_ns` from its
    /// current virtual time.
    Timed {
        /// Virtual-clock delay.
        delay_ns: u64,
    },
}

/// A decoded client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a session on the connection's shard.
    Open(OpenKind),
    /// Raise `event` on `session` with marshaled `args`.
    Raise {
        /// Target session id.
        session: u64,
        /// Raw event id.
        event: u32,
        /// Dispatch mode.
        mode: WireMode,
        /// Handler arguments (marshal-layout on the wire).
        args: Vec<Value>,
    },
    /// Read one session's counters.
    Query {
        /// Target session id.
        session: u64,
    },
    /// Tear a session down.
    Close {
        /// Target session id.
        session: u64,
    },
    /// Scrape the whole deployment (server + ingress) as one Prometheus
    /// text exposition — the wire-level scrape endpoint a remote
    /// Prometheus (or `curl` through the client) pulls.
    MetricsScrape,
    /// Pull retained causal trace spans from every layer's trace store.
    TraceDump {
        /// Which traces to pull.
        selector: TraceSelector,
        /// Export encoding of the reply body.
        format: TraceFormat,
    },
}

/// Which traces a [`Request::TraceDump`] pulls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceSelector {
    /// The `n` most recently minted traces still retained.
    LastN(u64),
    /// One specific trace by id (as reported in a previous dump or in
    /// span output).
    Id(u64),
}

/// Export encoding of a [`Reply::Trace`] body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Line-oriented `span …` dump (grep-able; `trace_report` input).
    Lines,
    /// Chrome trace-event JSON (load in `about:tracing` or Perfetto).
    Chrome,
}

/// One session's counters, as returned by `Query`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// The session id.
    pub session: u64,
    /// Shard the session resides on.
    pub shard: u32,
    /// The session's virtual clock.
    pub clock_ns: u64,
    /// Events dispatched (generic + fast path).
    pub dispatched: u64,
    /// Specialized fast-path dispatches.
    pub fastpath_hits: u64,
    /// Specialized dispatches that failed guards and fell back.
    pub guard_misses: u64,
    /// Compiled chains currently installed.
    pub chains_live: u64,
    /// Events waiting on the async FIFO.
    pub queued: u64,
    /// Events waiting on timers.
    pub timers: u64,
}

/// Why a request was refused, in machine-readable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// No session with that id.
    UnknownSession,
    /// Session exists but is not of the requested protocol kind.
    WrongKind,
    /// The session's runtime or protocol endpoint failed.
    Runtime,
    /// The server is quiesced and not admitting.
    Quiesced,
    /// The request frame's payload failed to decode (checksum was valid).
    Malformed,
    /// An internal server failure (snapshot machinery etc.).
    Internal,
}

impl ErrorCode {
    /// Wire byte for this code.
    pub fn to_byte(self) -> u8 {
        match self {
            ErrorCode::UnknownSession => 1,
            ErrorCode::WrongKind => 2,
            ErrorCode::Runtime => 3,
            ErrorCode::Quiesced => 4,
            ErrorCode::Malformed => 5,
            ErrorCode::Internal => 6,
        }
    }

    /// Decode a wire byte.
    pub fn from_byte(b: u8) -> Option<ErrorCode> {
        match b {
            1 => Some(ErrorCode::UnknownSession),
            2 => Some(ErrorCode::WrongKind),
            3 => Some(ErrorCode::Runtime),
            4 => Some(ErrorCode::Quiesced),
            5 => Some(ErrorCode::Malformed),
            6 => Some(ErrorCode::Internal),
            _ => None,
        }
    }
}

/// A decoded server reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// `Open` succeeded; here is the session id.
    Opened {
        /// The new session.
        session: u64,
    },
    /// `Raise` was executed (sync) or enqueued (async/timed).
    Done,
    /// `Query` result.
    Stats(SessionStats),
    /// `Close` result.
    Closed {
        /// Whether the session existed.
        existed: bool,
    },
    /// The request was refused by admission control: over capacity.
    /// Retry after the hinted backoff instead of immediately.
    Shed {
        /// Suggested client backoff (wall ns), scaled by current load.
        retry_after_ns: u64,
    },
    /// The request was admitted but failed.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// `MetricsScrape` result: Prometheus text exposition.
    MetricsText {
        /// The rendered exposition (possibly truncated to fit the frame
        /// ceiling; truncation drops whole lines, never splits one).
        text: String,
    },
    /// `TraceDump` result in the requested [`TraceFormat`].
    Trace {
        /// Line dump or Chrome trace-event JSON.
        body: String,
    },
}

fn malformed<T>(why: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError::Malformed(why.into()))
}

/// Encodes one request under `req_id` into a complete wire frame.
pub fn encode_request(req_id: u64, req: &Request) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.u64(req_id);
    match req {
        Request::Open(kind) => {
            w.u8(REQ_OPEN);
            match kind {
                OpenKind::Plain { module, bindings } => {
                    w.u8(OPEN_PLAIN);
                    w.module(module);
                    w.u64(bindings.len() as u64);
                    for &(event, func, order) in bindings {
                        w.u32(event);
                        w.u32(func);
                        w.i64(i64::from(order));
                    }
                }
                OpenKind::Ctp => w.u8(OPEN_CTP),
                OpenKind::SecComm => w.u8(OPEN_SECCOMM),
            }
        }
        Request::Raise {
            session,
            event,
            mode,
            args,
        } => {
            w.u8(REQ_RAISE);
            w.u64(*session);
            w.u32(*event);
            match mode {
                WireMode::Sync => w.u8(MODE_SYNC),
                WireMode::Async => w.u8(MODE_ASYNC),
                WireMode::Timed { delay_ns } => {
                    w.u8(MODE_TIMED);
                    w.u64(*delay_ns);
                }
            }
            // The marshal layout: pack exactly as the generic dispatch
            // path would, then emit the tag vector followed by the bodies.
            let m = marshal(args);
            w.u64(m.len() as u64);
            for t in m.tags.iter() {
                w.u8(t.to_byte());
            }
            for v in m.values.iter() {
                value_body(&mut w, v);
            }
        }
        Request::Query { session } => {
            w.u8(REQ_QUERY);
            w.u64(*session);
        }
        Request::Close { session } => {
            w.u8(REQ_CLOSE);
            w.u64(*session);
        }
        Request::MetricsScrape => w.u8(REQ_METRICS),
        Request::TraceDump { selector, format } => {
            w.u8(REQ_TRACE_DUMP);
            match selector {
                TraceSelector::LastN(n) => {
                    w.u8(TRACE_SEL_LAST);
                    w.u64(*n);
                }
                TraceSelector::Id(id) => {
                    w.u8(TRACE_SEL_ID);
                    w.u64(*id);
                }
            }
            w.u8(match format {
                TraceFormat::Lines => TRACE_FMT_LINES,
                TraceFormat::Chrome => TRACE_FMT_CHROME,
            });
        }
    }
    w.finish_frame(&WIRE_MAGIC, WIRE_VERSION)
}

fn value_body(w: &mut SnapWriter, v: &Value) {
    match v {
        Value::Unit => {}
        Value::Int(i) => w.i64(*i),
        Value::Bool(b) => w.bool(*b),
        Value::Bytes(b) => w.bytes(b),
        Value::Str(s) => w.str(s),
    }
}

fn take_value_body(r: &mut SnapReader<'_>, tag: Tag) -> Result<Value, SnapshotError> {
    Ok(match tag {
        Tag::Unit => Value::Unit,
        Tag::Int => Value::Int(r.take_i64()?),
        Tag::Bool => Value::Bool(r.take_bool()?),
        Tag::Bytes => Value::bytes(r.take_bytes()?),
        Tag::Str => Value::Str(r.take_str()?.into()),
    })
}

fn take_args(r: &mut SnapReader<'_>) -> Result<Vec<Value>, SnapshotError> {
    let argc = r.take_u64()? as usize;
    // Each argument costs at least one tag byte, so a count larger than
    // the remaining payload is provably a lie — reject before allocating.
    if argc > r.remaining() {
        return malformed(format!(
            "argument count {argc} exceeds remaining payload ({} bytes)",
            r.remaining()
        ));
    }
    let mut tags = Vec::with_capacity(argc);
    for _ in 0..argc {
        let b = r.take_u8()?;
        match Tag::from_byte(b) {
            Some(t) => tags.push(t),
            None => return malformed(format!("unknown argument tag byte {b:#04x}")),
        }
    }
    let mut values = Vec::with_capacity(argc);
    for &t in &tags {
        values.push(take_value_body(r, t)?);
    }
    // Run the same tag/value validation walk the generic dispatch path
    // performs; by construction it passes, and its cost is the point.
    let m = Marshaled {
        values: values.into_boxed_slice(),
        tags: tags.into_boxed_slice(),
    };
    unmarshal(&m).map_err(SnapshotError::Malformed)
}

/// Decodes a complete request frame into `(req_id, request)`.
///
/// # Errors
///
/// [`IngressError::Frame`] when the framing itself (magic, version,
/// checksum, length) is wrong — the byte stream is unreliable and the
/// connection must close. [`IngressError::Payload`] when the frame
/// verified but its body grammar is wrong — reply with a typed error and
/// keep the connection.
pub fn decode_request(frame: &[u8]) -> Result<(u64, Request), IngressError> {
    let mut r =
        SnapReader::framed(frame, &WIRE_MAGIC, WIRE_VERSION).map_err(IngressError::Frame)?;
    request_body(&mut r).map_err(IngressError::Payload)
}

fn request_body(r: &mut SnapReader<'_>) -> Result<(u64, Request), SnapshotError> {
    let req_id = r.take_u64()?;
    let tag = r.take_u8()?;
    let req = match tag {
        REQ_OPEN => {
            let kind = match r.take_u8()? {
                OPEN_PLAIN => {
                    let module = r.take_module()?;
                    let n = r.take_u64()? as usize;
                    if n > r.remaining() {
                        return malformed(format!(
                            "binding count {n} exceeds remaining payload ({} bytes)",
                            r.remaining()
                        ));
                    }
                    let mut bindings = Vec::with_capacity(n);
                    for _ in 0..n {
                        let event = r.take_u32()?;
                        let func = r.take_u32()?;
                        let order = r.take_i64()?;
                        let order = i32::try_from(order).map_err(|_| {
                            SnapshotError::Malformed(format!("binding order {order} overflows i32"))
                        })?;
                        bindings.push((event, func, order));
                    }
                    OpenKind::Plain { module, bindings }
                }
                OPEN_CTP => OpenKind::Ctp,
                OPEN_SECCOMM => OpenKind::SecComm,
                b => return malformed(format!("unknown open kind byte {b:#04x}")),
            };
            Request::Open(kind)
        }
        REQ_RAISE => {
            let session = r.take_u64()?;
            let event = r.take_u32()?;
            let mode = match r.take_u8()? {
                MODE_SYNC => WireMode::Sync,
                MODE_ASYNC => WireMode::Async,
                MODE_TIMED => WireMode::Timed {
                    delay_ns: r.take_u64()?,
                },
                b => return malformed(format!("unknown raise mode byte {b:#04x}")),
            };
            let args = take_args(r)?;
            Request::Raise {
                session,
                event,
                mode,
                args,
            }
        }
        REQ_QUERY => Request::Query {
            session: r.take_u64()?,
        },
        REQ_CLOSE => Request::Close {
            session: r.take_u64()?,
        },
        REQ_METRICS => Request::MetricsScrape,
        REQ_TRACE_DUMP => {
            let selector = match r.take_u8()? {
                TRACE_SEL_LAST => TraceSelector::LastN(r.take_u64()?),
                TRACE_SEL_ID => TraceSelector::Id(r.take_u64()?),
                b => return malformed(format!("unknown trace selector byte {b:#04x}")),
            };
            let format = match r.take_u8()? {
                TRACE_FMT_LINES => TraceFormat::Lines,
                TRACE_FMT_CHROME => TraceFormat::Chrome,
                b => return malformed(format!("unknown trace format byte {b:#04x}")),
            };
            Request::TraceDump { selector, format }
        }
        b => return malformed(format!("unknown request tag byte {b:#04x}")),
    };
    // Consume-everything check: trailing bytes in a checksum-valid frame
    // mean the sender speaks a different grammar.
    take_finish(r)?;
    Ok((req_id, req))
}

/// Encodes one reply under `req_id` into a complete wire frame.
pub fn encode_reply(req_id: u64, reply: &Reply) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.u64(req_id);
    match reply {
        Reply::Opened { session } => {
            w.u8(REP_OPENED);
            w.u64(*session);
        }
        Reply::Done => w.u8(REP_DONE),
        Reply::Stats(s) => {
            w.u8(REP_STATS);
            w.u64(s.session);
            w.u32(s.shard);
            w.u64(s.clock_ns);
            w.u64(s.dispatched);
            w.u64(s.fastpath_hits);
            w.u64(s.guard_misses);
            w.u64(s.chains_live);
            w.u64(s.queued);
            w.u64(s.timers);
        }
        Reply::Closed { existed } => {
            w.u8(REP_CLOSED);
            w.bool(*existed);
        }
        Reply::Shed { retry_after_ns } => {
            w.u8(REP_SHED);
            w.u64(*retry_after_ns);
        }
        Reply::Error { code, message } => {
            w.u8(REP_ERROR);
            w.u8(code.to_byte());
            w.str(message);
        }
        Reply::MetricsText { text } => {
            w.u8(REP_METRICS_TEXT);
            w.str(text);
        }
        Reply::Trace { body } => {
            w.u8(REP_TRACE);
            w.str(body);
        }
    }
    w.finish_frame(&WIRE_MAGIC, WIRE_VERSION)
}

/// Decodes a complete reply frame into `(req_id, reply)`.
///
/// # Errors
///
/// As [`decode_request`].
pub fn decode_reply(frame: &[u8]) -> Result<(u64, Reply), IngressError> {
    let mut r =
        SnapReader::framed(frame, &WIRE_MAGIC, WIRE_VERSION).map_err(IngressError::Frame)?;
    reply_body(&mut r).map_err(IngressError::Payload)
}

fn reply_body(r: &mut SnapReader<'_>) -> Result<(u64, Reply), SnapshotError> {
    let req_id = r.take_u64()?;
    let tag = r.take_u8()?;
    let reply = match tag {
        REP_OPENED => Reply::Opened {
            session: r.take_u64()?,
        },
        REP_DONE => Reply::Done,
        REP_STATS => Reply::Stats(SessionStats {
            session: r.take_u64()?,
            shard: r.take_u32()?,
            clock_ns: r.take_u64()?,
            dispatched: r.take_u64()?,
            fastpath_hits: r.take_u64()?,
            guard_misses: r.take_u64()?,
            chains_live: r.take_u64()?,
            queued: r.take_u64()?,
            timers: r.take_u64()?,
        }),
        REP_CLOSED => Reply::Closed {
            existed: r.take_bool()?,
        },
        REP_SHED => Reply::Shed {
            retry_after_ns: r.take_u64()?,
        },
        REP_ERROR => {
            let b = r.take_u8()?;
            let code = ErrorCode::from_byte(b)
                .ok_or_else(|| SnapshotError::Malformed(format!("unknown error code {b:#04x}")))?;
            Reply::Error {
                code,
                message: r.take_str()?,
            }
        }
        REP_METRICS_TEXT => Reply::MetricsText {
            text: r.take_str()?,
        },
        REP_TRACE => Reply::Trace {
            body: r.take_str()?,
        },
        b => return malformed(format!("unknown reply tag byte {b:#04x}")),
    };
    take_finish(r)?;
    Ok((req_id, reply))
}

fn take_finish(r: &mut SnapReader<'_>) -> Result<(), SnapshotError> {
    if r.remaining() != 0 {
        return Err(SnapshotError::TrailingBytes);
    }
    Ok(())
}

/// Best-effort extraction of the `req_id` from a frame whose payload
/// failed to decode, so the typed error reply can still be matched by
/// the client. `None` when even the id is unreadable.
pub fn frame_req_id(frame: &[u8]) -> Option<u64> {
    let mut r = SnapReader::framed(frame, &WIRE_MAGIC, WIRE_VERSION).ok()?;
    r.take_u64().ok()
}

/// Reassembles frames from a byte stream that arrives in arbitrary
/// chunks. Feed bytes with [`FrameBuffer::extend`], then drain complete
/// frames with [`FrameBuffer::next_frame`].
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
}

impl FrameBuffer {
    /// An empty buffer.
    pub fn new() -> FrameBuffer {
        FrameBuffer::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pops the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means the bytes so far are a consistent prefix — read
    /// more. An error means the stream is unrecoverable at this position
    /// (wrong magic, impossible length, over `max_frame`): frame
    /// boundaries can no longer be trusted, so the connection must close.
    ///
    /// # Errors
    ///
    /// [`IngressError::Frame`] on header corruption,
    /// [`IngressError::FrameTooLarge`] on an over-limit declaration.
    pub fn next_frame(&mut self, max_frame: usize) -> Result<Option<Vec<u8>>, IngressError> {
        let total = match peek_frame_len(&self.buf, &WIRE_MAGIC) {
            Ok(Some(total)) => total,
            Ok(None) => return Ok(None),
            Err(e) => return Err(IngressError::Frame(e)),
        };
        if total > max_frame {
            return Err(IngressError::FrameTooLarge {
                declared: total,
                max: max_frame,
            });
        }
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf[..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(frame))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frames_round_trip() {
        let reqs = [
            Request::Open(OpenKind::Ctp),
            Request::Open(OpenKind::SecComm),
            Request::Raise {
                session: 7,
                event: 3,
                mode: WireMode::Timed { delay_ns: 1_000 },
                args: vec![
                    Value::Unit,
                    Value::Int(-5),
                    Value::Bool(true),
                    Value::bytes(vec![1, 2, 3]),
                    Value::str("hello"),
                ],
            },
            Request::Query { session: 9 },
            Request::Close { session: 2 },
            Request::MetricsScrape,
            Request::TraceDump {
                selector: TraceSelector::LastN(16),
                format: TraceFormat::Lines,
            },
            Request::TraceDump {
                selector: TraceSelector::Id(0x0001_0000_0000_0007),
                format: TraceFormat::Chrome,
            },
        ];
        for (i, req) in reqs.iter().enumerate() {
            let frame = encode_request(i as u64, req);
            let (id, back) = decode_request(&frame).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&back, req);
        }
    }

    #[test]
    fn reply_frames_round_trip() {
        let reps = [
            Reply::Opened { session: 4 },
            Reply::Done,
            Reply::Stats(SessionStats {
                session: 4,
                shard: 1,
                clock_ns: 123,
                dispatched: 10,
                fastpath_hits: 6,
                guard_misses: 1,
                chains_live: 2,
                queued: 3,
                timers: 0,
            }),
            Reply::Closed { existed: true },
            Reply::Shed {
                retry_after_ns: 2_000_000,
            },
            Reply::Error {
                code: ErrorCode::UnknownSession,
                message: "unknown session s9".into(),
            },
            Reply::MetricsText {
                text: "# TYPE pdo_up gauge\npdo_up 1\n".into(),
            },
            Reply::Trace {
                body: "span trace=1 id=2 parent=- start=0 end=10 layer=ingress kind=ingress request=raise conn=3\n".into(),
            },
        ];
        for (i, rep) in reps.iter().enumerate() {
            let frame = encode_reply(1000 + i as u64, rep);
            let (id, back) = decode_reply(&frame).unwrap();
            assert_eq!(id, 1000 + i as u64);
            assert_eq!(&back, rep);
        }
    }

    #[test]
    fn frame_buffer_reassembles_split_and_coalesced_frames() {
        let f1 = encode_request(1, &Request::Query { session: 1 });
        let f2 = encode_request(2, &Request::Close { session: 1 });
        let mut stream = Vec::new();
        stream.extend_from_slice(&f1);
        stream.extend_from_slice(&f2);

        // Feed one byte at a time: every prefix is "need more", and the
        // two frames pop out exactly at their boundaries.
        let mut fb = FrameBuffer::new();
        let mut out = Vec::new();
        for &b in &stream {
            fb.extend(&[b]);
            while let Some(frame) = fb.next_frame(MAX_FRAME_LEN).unwrap() {
                out.push(frame);
            }
        }
        assert_eq!(out, vec![f1.clone(), f2.clone()]);
        assert!(fb.is_empty());

        // Feed everything at once: both frames drain back to back.
        let mut fb = FrameBuffer::new();
        fb.extend(&stream);
        assert_eq!(fb.next_frame(MAX_FRAME_LEN).unwrap().unwrap(), f1);
        assert_eq!(fb.next_frame(MAX_FRAME_LEN).unwrap().unwrap(), f2);
        assert!(fb.next_frame(MAX_FRAME_LEN).unwrap().is_none());
    }

    #[test]
    fn stream_and_payload_corruption_classify_differently() {
        // Wrong magic: stream-fatal.
        let mut fb = FrameBuffer::new();
        fb.extend(b"NOTMAGIC________________");
        let err = fb.next_frame(MAX_FRAME_LEN).unwrap_err();
        assert!(err.is_stream_fatal(), "bad magic must be stream-fatal");

        // Oversized declaration: stream-fatal before buffering it.
        let mut huge = SnapWriter::new();
        huge.u64(1);
        let mut frame = huge.finish_frame(&WIRE_MAGIC, WIRE_VERSION);
        frame[12..20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let mut fb = FrameBuffer::new();
        fb.extend(&frame);
        let err = fb.next_frame(MAX_FRAME_LEN).unwrap_err();
        assert!(matches!(err, IngressError::FrameTooLarge { .. }));

        // Valid checksum, bogus body tag: payload-level, connection
        // survives.
        let mut w = SnapWriter::new();
        w.u64(42);
        w.u8(0xEE);
        let frame = w.finish_frame(&WIRE_MAGIC, WIRE_VERSION);
        let err = decode_request(&frame).unwrap_err();
        assert!(!err.is_stream_fatal(), "bad body must keep the stream");
        assert_eq!(frame_req_id(&frame), Some(42));
    }

    #[test]
    fn wire_frames_are_not_snapshots() {
        let frame = encode_request(1, &Request::Query { session: 1 });
        assert!(matches!(
            SnapReader::new(&frame),
            Err(SnapshotError::BadMagic)
        ));
    }
}
