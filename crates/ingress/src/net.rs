//! The acceptor: one I/O thread sweeping non-blocking TCP and Unix
//! listeners plus every live connection.
//!
//! Each accepted connection is mapped onto a shard once, by
//! power-of-two-choices over (live connections, queued commands) with
//! splitmix64 supplying the deterministic candidates — the same placement
//! discipline `pdo-server` uses for sessions. All commands decoded from
//! that connection flow to that shard's bounded queue, so one
//! connection's work is processed in order by one shard.
//!
//! Admission happens *here*, before any queueing: no permit → typed
//! `Shed` reply; full shard queue → permit returned, typed `Shed` reply;
//! quiesced → typed `Shed` reply. The engine never sees refused work,
//! and the acceptor never blocks on the engine.
//!
//! The sweep is plain `std` non-blocking I/O (the offline toolchain has
//! no epoll binding). Cost per sweep is linear in connections, which is
//! the intended regime: fronting multiplexers carry many logical clients
//! per connection. An exponential idle backoff (50µs → 1ms) keeps the
//! idle duty cycle negligible.

use crate::proto::{self, Reply};
use crate::{Shared, Work};
use pdo_obs::ObsKind;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::time::Instant;

pub(crate) struct NetParams {
    pub max_frame: usize,
    pub max_outbuf: usize,
    pub retry_after_ns: u64,
    pub shard_queue: usize,
}

enum Sock {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Sock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.read(buf),
            Sock::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Tcp(s) => s.write(buf),
            Sock::Unix(s) => s.write(buf),
        }
    }
}

struct Conn {
    sock: Sock,
    shard: usize,
    inbuf: proto::FrameBuffer,
    out: Vec<u8>,
    out_pos: usize,
}

/// splitmix64 finalizer — the same mix the server's placement uses.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Power-of-two-choices shard for a new connection: two deterministic
/// candidates from the connection id, pick the one with fewer live
/// connections, queue depth breaking ties.
fn pick_shard(shared: &Shared, conn_id: u64) -> usize {
    let n = shared.conns_on_shard.len();
    if n == 1 {
        return 0;
    }
    let h = splitmix64(conn_id);
    let a = (h as usize) % n;
    let b = ((h >> 32) as usize) % n;
    let load = |s: usize| {
        (
            shared.conns_on_shard[s].load(Ordering::Relaxed),
            shared.queue_depth[s].load(Ordering::Relaxed),
            s,
        )
    };
    if load(a) <= load(b) {
        a
    } else {
        b
    }
}

pub(crate) fn net_main(
    tcp: Option<TcpListener>,
    unix: Option<UnixListener>,
    work_txs: Vec<SyncSender<Work>>,
    reply_rx: Receiver<(u64, Vec<u8>)>,
    shared: Arc<Shared>,
    p: NetParams,
) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn: u64 = 1;
    let mut idle: u32 = 0;
    let mut read_chunk = vec![0u8; 16 * 1024];

    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            break;
        }
        let mut progress = false;

        // Accept new connections (bounded per sweep so a connect storm
        // cannot starve live connections).
        for _ in 0..64 {
            let sock = if let Some(l) = &tcp {
                match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nodelay(true);
                        let _ = s.set_nonblocking(true);
                        Some(Sock::Tcp(s))
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
                    Err(_) => None,
                }
            } else {
                None
            };
            let sock = match sock {
                Some(s) => Some(s),
                None => match &unix {
                    Some(l) => match l.accept() {
                        Ok((s, _)) => {
                            let _ = s.set_nonblocking(true);
                            Some(Sock::Unix(s))
                        }
                        Err(_) => None,
                    },
                    None => None,
                },
            };
            let Some(sock) = sock else { break };
            let id = next_conn;
            next_conn += 1;
            let shard = pick_shard(&shared, id);
            shared.conns_on_shard[shard].fetch_add(1, Ordering::Relaxed);
            shared.connections_opened.fetch_add(1, Ordering::Relaxed);
            shared.record(ObsKind::ConnOpened {
                conn: id,
                shard: shard as u32,
            });
            conns.insert(
                id,
                Conn {
                    sock,
                    shard,
                    inbuf: proto::FrameBuffer::new(),
                    out: Vec::new(),
                    out_pos: 0,
                },
            );
            progress = true;
        }

        // Route engine replies into connection write buffers. Replies to
        // connections that died in the meantime are dropped.
        while let Ok((conn_id, bytes)) = reply_rx.try_recv() {
            if let Some(c) = conns.get_mut(&conn_id) {
                c.out.extend_from_slice(&bytes);
            }
            progress = true;
        }

        // Sweep every connection: flush, read, frame, admit.
        let ids: Vec<u64> = conns.keys().copied().collect();
        for id in ids {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            match step_conn(id, conn, &shared, &work_txs, &p, &mut read_chunk) {
                Ok(stepped) => progress |= stepped,
                Err(reason) => {
                    let conn = conns.remove(&id).expect("present: just fetched");
                    shared.conns_on_shard[conn.shard].fetch_sub(1, Ordering::Relaxed);
                    shared.connections_closed.fetch_add(1, Ordering::Relaxed);
                    if reason == "corrupt" {
                        shared.corrupt_streams.fetch_add(1, Ordering::Relaxed);
                    }
                    shared.record(ObsKind::ConnClosed { conn: id, reason });
                    progress = true;
                }
            }
        }

        // Yield-first idling, same rationale as `Ingress::serve`: stay
        // runnable through short lulls so a flooded peer cannot starve
        // the sweep out of its timeslice; sleep only when genuinely idle.
        if progress {
            idle = 0;
        } else {
            idle = idle.saturating_add(1);
            if idle <= crate::IDLE_YIELDS {
                std::thread::yield_now();
            } else {
                let us = 50u64 << (idle - crate::IDLE_YIELDS - 1).min(4);
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
        }
    }

    // Shutdown: every remaining connection is dropped (sockets close on
    // drop) and accounted for.
    for (id, conn) in conns.drain() {
        shared.conns_on_shard[conn.shard].fetch_sub(1, Ordering::Relaxed);
        shared.connections_closed.fetch_add(1, Ordering::Relaxed);
        shared.record(ObsKind::ConnClosed {
            conn: id,
            reason: "shutdown",
        });
    }
}

/// One sweep step for one connection. `Ok(true)` when any byte moved or
/// frame was handled; `Err(reason)` when the connection must close.
fn step_conn(
    id: u64,
    conn: &mut Conn,
    shared: &Shared,
    work_txs: &[SyncSender<Work>],
    p: &NetParams,
    chunk: &mut [u8],
) -> Result<bool, &'static str> {
    let mut progress = false;

    // Flush pending reply bytes.
    while conn.out_pos < conn.out.len() {
        match conn.sock.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err("io"),
            Ok(n) => {
                conn.out_pos += n;
                shared.bytes_written.fetch_add(n as u64, Ordering::Relaxed);
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err("io"),
        }
    }
    if conn.out_pos == conn.out.len() && conn.out_pos > 0 {
        conn.out.clear();
        conn.out_pos = 0;
    }

    // Read what has arrived (bounded per sweep for fairness).
    for _ in 0..4 {
        match conn.sock.read(chunk) {
            Ok(0) => return Err("eof"),
            Ok(n) => {
                conn.inbuf.extend(&chunk[..n]);
                shared.bytes_read.fetch_add(n as u64, Ordering::Relaxed);
                progress = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err("io"),
        }
    }

    // Reassemble and handle every complete frame.
    loop {
        let frame = match conn.inbuf.next_frame(p.max_frame) {
            Ok(Some(f)) => f,
            Ok(None) => break,
            // Framing is broken: boundaries can't be trusted any more.
            Err(_) => return Err("corrupt"),
        };
        progress = true;
        match proto::decode_request(&frame) {
            Ok((req_id, request)) => {
                admit(id, conn, shared, work_txs, p, req_id, request)?;
            }
            Err(e) if e.is_stream_fatal() => return Err("corrupt"),
            Err(e) => {
                // Checksum-valid frame, bad payload: typed error reply,
                // connection lives.
                shared.malformed_payloads.fetch_add(1, Ordering::Relaxed);
                let req_id = proto::frame_req_id(&frame).unwrap_or(0);
                let reply = Reply::Error {
                    code: crate::ErrorCode::Malformed,
                    message: e.to_string(),
                };
                conn.out
                    .extend_from_slice(&proto::encode_reply(req_id, &reply));
            }
        }
    }

    // A consumer that cannot keep up with its own replies is cut off
    // rather than buffered without bound.
    if conn.out.len() - conn.out_pos > p.max_outbuf {
        return Err("slow");
    }

    Ok(progress)
}

/// Admission control for one decoded request: permit, then shard queue,
/// with a typed `Shed` reply on any refusal.
fn admit(
    id: u64,
    conn: &mut Conn,
    shared: &Shared,
    work_txs: &[SyncSender<Work>],
    p: &NetParams,
    req_id: u64,
    request: proto::Request,
) -> Result<(), &'static str> {
    let shard = conn.shard;
    let shed = |conn: &mut Conn, reason: &'static str, counter: &std::sync::atomic::AtomicU64| {
        counter.fetch_add(1, Ordering::Relaxed);
        shared.record(ObsKind::RequestShed { conn: id, reason });
        let reply = Reply::Shed {
            retry_after_ns: shared.retry_hint(p.retry_after_ns, shard, p.shard_queue),
        };
        conn.out
            .extend_from_slice(&proto::encode_reply(req_id, &reply));
    };

    if !shared.admitting.load(Ordering::Relaxed) {
        shed(conn, "quiesced", &shared.shed_quiesced);
        return Ok(());
    }
    if !shared.limiter.try_acquire() {
        shed(conn, "permits", &shared.shed_permits);
        return Ok(());
    }
    match work_txs[shard].try_send(Work {
        conn: id,
        req_id,
        request,
        admitted_at: Instant::now(),
    }) {
        Ok(()) => {
            shared.queue_depth[shard].fetch_add(1, Ordering::Relaxed);
            shared.admitted.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
        Err(TrySendError::Full(_)) => {
            shared.limiter.release();
            shed(conn, "queue", &shared.shed_queue);
            Ok(())
        }
        Err(TrySendError::Disconnected(_)) => {
            shared.limiter.release();
            Err("shutdown")
        }
    }
}
