//! A token/permit concurrency limiter.
//!
//! One permit is held per admitted request from the moment the acceptor
//! decides to enqueue it until the engine has written its reply. The
//! acceptor never blocks on a permit: [`Limiter::try_acquire`] either
//! succeeds immediately or the request is shed with a typed reply. That
//! is the whole backpressure story — capacity is a hard bound on
//! in-flight work, not a queue in front of more queueing.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Fixed-capacity permit pool.
#[derive(Debug)]
pub struct Limiter {
    available: AtomicUsize,
    capacity: usize,
}

impl Limiter {
    /// A pool holding `capacity` permits (min 1).
    pub fn new(capacity: usize) -> Limiter {
        let capacity = capacity.max(1);
        Limiter {
            available: AtomicUsize::new(capacity),
            capacity,
        }
    }

    /// Takes one permit if any remain. Never blocks.
    pub fn try_acquire(&self) -> bool {
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            if cur == 0 {
                return false;
            }
            match self.available.compare_exchange_weak(
                cur,
                cur - 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Returns one permit. Callers release exactly what they acquired;
    /// over-release is a logic bug and saturates at capacity.
    pub fn release(&self) {
        let mut cur = self.available.load(Ordering::Relaxed);
        loop {
            let next = (cur + 1).min(self.capacity);
            match self.available.compare_exchange_weak(
                cur,
                next,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Permits currently free.
    pub fn available(&self) -> usize {
        self.available.load(Ordering::Relaxed)
    }

    /// Total permits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Permits currently held (admitted, not yet replied).
    pub fn in_flight(&self) -> usize {
        self.capacity - self.available()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let l = Limiter::new(2);
        assert_eq!(l.capacity(), 2);
        assert!(l.try_acquire());
        assert!(l.try_acquire());
        assert!(!l.try_acquire(), "pool exhausted");
        assert_eq!(l.in_flight(), 2);
        l.release();
        assert_eq!(l.in_flight(), 1);
        assert!(l.try_acquire());
        l.release();
        l.release();
        assert_eq!(l.available(), 2);
    }

    #[test]
    fn release_saturates_at_capacity() {
        let l = Limiter::new(1);
        l.release();
        l.release();
        assert_eq!(l.available(), 1);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let l = Limiter::new(0);
        assert!(l.try_acquire());
        assert!(!l.try_acquire());
    }
}
