//! `pdo-ingress`: the network front door for `pdo-server`.
//!
//! Nothing in the repo spoke to the server over a wire before this
//! crate; "many concurrent clients" was an in-process claim. The ingress
//! makes it a network one, in four layers:
//!
//! - **Framed byte protocol** ([`proto`]): length-prefixed, versioned,
//!   FNV-1a-checksummed frames (the `pdo-snap` framing discipline under a
//!   wire magic) carrying `Open`/`Raise`/`Query`/`Close` and typed
//!   replies. Corrupt input is always a typed [`IngressError`], never a
//!   panic, and the error's classification decides whether the
//!   connection survives.
//! - **Acceptor** ([`net`], one I/O thread): accepts TCP and Unix-socket
//!   connections, maps each onto a shard by power-of-two-choices over
//!   live connection count and queue depth, reassembles frames, and
//!   forwards decoded commands over bounded per-shard channels. There is
//!   no new threading model: the `!Send` sessions never leave their
//!   shard, and the engine half of the ingress runs on whatever thread
//!   owns the [`Server`] ([`Ingress::drive`] / [`Ingress::serve`]).
//! - **Admission control**: a fixed [`Limiter`] permit pool plus the
//!   bounded per-shard queues. A request over either bound is *shed* —
//!   it gets a typed `Shed{retry_after}` reply immediately instead of
//!   queueing unboundedly — and every decision is counted and exported
//!   through `pdo-obs` ([`Ingress::metrics`]).
//! - **Graceful drain**: [`Ingress::quiesce`] stops admission, drains
//!   the in-flight work to zero, then calls [`Server::quiesce`], so a
//!   durable snapshot taken afterwards sees no half-processed commands.
//!
//! The acceptor is plain `std` non-blocking I/O swept in a loop (no
//! epoll dependency); it is sized for fronting multiplexers — tens of
//! thousands of *logical* clients ride a few dozen connections, which is
//! exactly how the `ingress_load` generator drives it.

use pdo_cactus::EventProgram;
use pdo_ctp::{ctp_program, CtpParams};
use pdo_events::RuntimeConfig;
use pdo_ir::{EventId, FuncId, RaiseMode};
use pdo_obs::trace::{export_chrome, export_lines};
use pdo_obs::{FlightRecorder, Histogram, MetricsSnapshot, ObsKind, Span, SpanKind, TraceStore};
use pdo_seccomm::{seccomm_protocol, Keys, CONFIG_FULL};
use pdo_server::{Server, ServerError, SessionId};
use pdo_snap::SnapshotError;
use std::fmt;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

pub mod client;
mod limiter;
mod net;
pub mod proto;

pub use client::Client;
pub use limiter::Limiter;
pub use proto::{
    ErrorCode, FrameBuffer, OpenKind, Reply, Request, SessionStats, TraceFormat, TraceSelector,
    WireMode, MAX_FRAME_LEN, WIRE_MAGIC, WIRE_VERSION,
};

/// Trace-store tag of the ingress layer. Shard stores use `index + 1`,
/// so the top of the tag space keeps ingress-minted span/trace ids
/// disjoint from every shard's.
pub const INGRESS_TRACE_TAG: u16 = 0xFFFF;

/// Consecutive idle iterations the engine and acceptor loops yield
/// (staying runnable) before backing off to sleeps — see
/// [`Ingress::serve`] for why sleeping too eagerly starves the engine on
/// core-constrained hosts.
pub(crate) const IDLE_YIELDS: u32 = 256;

/// A typed ingress failure. Decoding and I/O never panic — every way a
/// byte stream can be wrong lands in one of these.
#[derive(Debug)]
pub enum IngressError {
    /// The frame *envelope* is wrong: bad magic, unsupported version,
    /// checksum mismatch, or truncation at the framing layer. Frame
    /// boundaries can no longer be trusted — the connection must close.
    Frame(SnapshotError),
    /// The frame verified (checksum matched) but its payload grammar is
    /// wrong. One request is garbage; the connection survives.
    Payload(SnapshotError),
    /// A frame declared a length over the configured ceiling; rejected
    /// before buffering.
    FrameTooLarge {
        /// Declared total frame size.
        declared: usize,
        /// Configured ceiling.
        max: usize,
    },
    /// The peer or the ingress closed underneath an operation.
    Closed,
    /// Socket-level failure.
    Io(std::io::Error),
}

impl IngressError {
    /// Whether this error proves the byte stream unreliable (close the
    /// connection) as opposed to one bad payload (reply and continue).
    pub fn is_stream_fatal(&self) -> bool {
        !matches!(self, IngressError::Payload(_))
    }
}

impl fmt::Display for IngressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngressError::Frame(e) => write!(f, "wire framing error: {e}"),
            IngressError::Payload(e) => write!(f, "wire payload error: {e}"),
            IngressError::FrameTooLarge { declared, max } => {
                write!(f, "frame declares {declared} bytes, limit is {max}")
            }
            IngressError::Closed => write!(f, "connection closed"),
            IngressError::Io(e) => write!(f, "ingress i/o error: {e}"),
        }
    }
}

impl std::error::Error for IngressError {}

impl From<std::io::Error> for IngressError {
    fn from(e: std::io::Error) -> Self {
        IngressError::Io(e)
    }
}

/// Ingress tunables.
#[derive(Debug, Clone)]
pub struct IngressConfig {
    /// TCP listen address (e.g. `"127.0.0.1:0"`); `None` disables TCP.
    pub tcp: Option<String>,
    /// Unix-socket path; `None` disables the Unix listener. A stale
    /// socket file at the path is removed on bind.
    pub unix: Option<PathBuf>,
    /// Permit-pool capacity: the hard bound on admitted, un-replied
    /// requests across all shards.
    pub max_inflight: usize,
    /// Bound of each per-shard command queue.
    pub shard_queue: usize,
    /// Largest acceptable frame (header + payload + checksum).
    pub max_frame: usize,
    /// Per-connection write-buffer ceiling; a consumer that falls
    /// further behind is disconnected rather than buffered forever.
    pub max_outbuf: usize,
    /// Base retry hint in `Shed` replies; scaled up with queue depth.
    pub retry_after_ns: u64,
    /// Admitted requests between virtual-clock epoch advances in
    /// [`Ingress::serve`] (adaptation runs inside those advances).
    pub epoch_every: u64,
    /// Virtual-clock step per epoch advance.
    pub epoch_step_ns: u64,
    /// Flight-recorder ring capacity.
    pub recorder_capacity: usize,
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig {
            tcp: Some("127.0.0.1:0".to_string()),
            unix: None,
            max_inflight: 1024,
            shard_queue: 256,
            max_frame: MAX_FRAME_LEN,
            max_outbuf: 4 << 20,
            retry_after_ns: 1_000_000,
            epoch_every: 1024,
            epoch_step_ns: 1_000_000,
            recorder_capacity: 256,
        }
    }
}

/// One admitted command in flight from acceptor to engine. Everything in
/// here is `Send`; the `!Send` session state stays on its shard.
pub(crate) struct Work {
    pub conn: u64,
    pub req_id: u64,
    pub request: Request,
    pub admitted_at: Instant,
}

/// State shared between the acceptor thread and the engine handle.
pub(crate) struct Shared {
    pub admitting: AtomicBool,
    pub shutdown: AtomicBool,
    pub limiter: Limiter,
    /// Commands admitted to each shard queue and not yet replied.
    pub queue_depth: Vec<AtomicUsize>,
    /// Live connections mapped to each shard (p2c input).
    pub conns_on_shard: Vec<AtomicUsize>,
    pub connections_opened: AtomicU64,
    pub connections_closed: AtomicU64,
    pub admitted: AtomicU64,
    pub replied: AtomicU64,
    pub shed_permits: AtomicU64,
    pub shed_queue: AtomicU64,
    pub shed_quiesced: AtomicU64,
    pub malformed_payloads: AtomicU64,
    pub corrupt_streams: AtomicU64,
    pub bytes_read: AtomicU64,
    pub bytes_written: AtomicU64,
    /// Ordering-only timestamp for flight records (the acceptor has no
    /// virtual clock; records are sequenced, not timed).
    pub obs_seq: AtomicU64,
    pub recorder: Mutex<FlightRecorder>,
    /// Wall-clock admission→reply latency, engine-side.
    pub latency: Mutex<Histogram>,
}

impl Shared {
    pub(crate) fn record(&self, kind: ObsKind) {
        let at = self.obs_seq.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut rec) = self.recorder.lock() {
            rec.record(at, kind);
        }
    }

    /// Retry hint scaled by how deep the shard's queue already is:
    /// `base` when idle, `2*base` at a full queue.
    pub(crate) fn retry_hint(&self, base: u64, shard: usize, queue_cap: usize) -> u64 {
        let depth = self.queue_depth[shard].load(Ordering::Relaxed) as u64;
        base + base * depth / (queue_cap.max(1) as u64)
    }
}

/// The engine-side handle: owns the per-shard work receivers, the reply
/// path back to the acceptor, and the canonical protocol programs used
/// to satisfy `Open{Ctp}` / `Open{SecComm}`.
pub struct Ingress {
    cfg: IngressConfig,
    shared: Arc<Shared>,
    work_rxs: Vec<Receiver<Work>>,
    reply_tx: Sender<(u64, Vec<u8>)>,
    net: Option<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
    ctp_program: EventProgram,
    sec_program: EventProgram,
    keys: Keys,
    vnow: u64,
    since_epoch: u64,
    /// Causal trace store of the ingress layer: every session-facing
    /// request mints a root `Ingress` span here, and the resulting
    /// context rides into the server so runtime/adapt/wire spans hang
    /// off it. Tagged [`INGRESS_TRACE_TAG`].
    tracer: TraceStore,
}

impl Ingress {
    /// Binds the configured listeners and starts the acceptor thread.
    /// `shards` must equal the served [`Server::shards`].
    ///
    /// # Errors
    ///
    /// [`IngressError::Io`] when a listener fails to bind.
    pub fn bind(cfg: IngressConfig, shards: usize) -> Result<Ingress, IngressError> {
        let shards = shards.max(1);
        let tcp = match &cfg.tcp {
            Some(addr) => Some(std::net::TcpListener::bind(addr.as_str())?),
            None => None,
        };
        let tcp_addr = match &tcp {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };
        let unix = match &cfg.unix {
            Some(path) => {
                let _ = std::fs::remove_file(path);
                Some(std::os::unix::net::UnixListener::bind(path)?)
            }
            None => None,
        };
        if let Some(l) = &tcp {
            l.set_nonblocking(true)?;
        }
        if let Some(l) = &unix {
            l.set_nonblocking(true)?;
        }

        let shared = Arc::new(Shared {
            admitting: AtomicBool::new(true),
            shutdown: AtomicBool::new(false),
            limiter: Limiter::new(cfg.max_inflight),
            queue_depth: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            conns_on_shard: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            connections_opened: AtomicU64::new(0),
            connections_closed: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            replied: AtomicU64::new(0),
            shed_permits: AtomicU64::new(0),
            shed_queue: AtomicU64::new(0),
            shed_quiesced: AtomicU64::new(0),
            malformed_payloads: AtomicU64::new(0),
            corrupt_streams: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            obs_seq: AtomicU64::new(0),
            recorder: Mutex::new(FlightRecorder::new(cfg.recorder_capacity)),
            latency: Mutex::new(Histogram::new()),
        });

        let mut work_txs: Vec<SyncSender<Work>> = Vec::with_capacity(shards);
        let mut work_rxs: Vec<Receiver<Work>> = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = mpsc::sync_channel(cfg.shard_queue.max(1));
            work_txs.push(tx);
            work_rxs.push(rx);
        }
        let (reply_tx, reply_rx) = mpsc::channel();

        let params = net::NetParams {
            max_frame: cfg.max_frame,
            max_outbuf: cfg.max_outbuf,
            retry_after_ns: cfg.retry_after_ns,
            shard_queue: cfg.shard_queue.max(1),
        };
        let net_shared = Arc::clone(&shared);
        let net = std::thread::Builder::new()
            .name("pdo-ingress-net".to_string())
            .spawn(move || net::net_main(tcp, unix, work_txs, reply_rx, net_shared, params))
            .map_err(IngressError::Io)?;

        let sec_program = seccomm_protocol()
            .instantiate(CONFIG_FULL)
            .expect("CONFIG_FULL is a valid static protocol configuration");

        Ok(Ingress {
            unix_path: cfg.unix.clone(),
            cfg,
            shared,
            work_rxs,
            reply_tx,
            net: Some(net),
            tcp_addr,
            ctp_program: ctp_program(),
            sec_program,
            keys: Keys::default(),
            vnow: 0,
            since_epoch: 0,
            tracer: TraceStore::new(INGRESS_TRACE_TAG),
        })
    }

    /// The ingress layer's trace store (enabled by default; disable via
    /// [`pdo_obs::TraceStore::set_enabled`] to make request handling
    /// span-free).
    pub fn tracer(&self) -> &TraceStore {
        &self.tracer
    }

    /// The bound TCP address (with the kernel-assigned port when the
    /// config asked for port 0).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix-socket path.
    pub fn unix_path(&self) -> Option<&PathBuf> {
        self.unix_path.as_ref()
    }

    /// Drains admitted commands from every shard queue and executes them
    /// on `server`, sending replies back through the acceptor. Returns
    /// the number of commands processed. Non-blocking: returns 0 when
    /// the queues are empty.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures surface here (an epoch advance
    /// failing inside the server). Per-command failures become typed
    /// `Error` replies to the issuing client.
    pub fn drive(&mut self, server: &mut Server) -> Result<usize, ServerError> {
        let mut processed = 0usize;
        for shard in 0..self.work_rxs.len() {
            // Bound the drain so one hot shard cannot starve the others
            // within a single call.
            for _ in 0..self.cfg.shard_queue.max(1) {
                let work = match self.work_rxs[shard].try_recv() {
                    Ok(w) => w,
                    Err(_) => break,
                };
                let reply = self.execute(server, shard, work.conn, &work.request);
                let latency = work.admitted_at.elapsed().as_nanos() as u64;
                if let Ok(mut h) = self.shared.latency.lock() {
                    h.record(latency.max(1));
                }
                let bytes = proto::encode_reply(work.req_id, &reply);
                // A send failure means the acceptor is gone (shutdown
                // race); the permit must still be returned.
                let _ = self.reply_tx.send((work.conn, bytes));
                self.shared.queue_depth[shard].fetch_sub(1, Ordering::Relaxed);
                self.shared.limiter.release();
                self.shared.replied.fetch_add(1, Ordering::Relaxed);
                processed += 1;
            }
        }
        self.since_epoch += processed as u64;
        Ok(processed)
    }

    fn execute(
        &mut self,
        server: &mut Server,
        shard: usize,
        conn: u64,
        request: &Request,
    ) -> Reply {
        // Session-facing requests are external stimuli: each mints a root
        // `Ingress` span whose context rides into the server, linking the
        // runtime / adapt / wire spans it causes under one trace. The
        // telemetry requests (`MetricsScrape`, `TraceDump`) deliberately
        // mint nothing — the observer should not perturb the observed.
        let tctx = match request {
            Request::MetricsScrape | Request::TraceDump { .. } => None,
            _ => self.tracer.record_under(
                None,
                self.vnow,
                self.vnow,
                SpanKind::Ingress {
                    request: match request {
                        Request::Open(_) => "open",
                        Request::Raise { .. } => "raise",
                        Request::Query { .. } => "query",
                        Request::Close { .. } => "close",
                        Request::MetricsScrape | Request::TraceDump { .. } => unreachable!(),
                    }
                    .to_string(),
                    conn,
                },
            ),
        };
        match request {
            Request::Open(kind) => {
                let opened = match kind {
                    OpenKind::Plain { module, bindings } => {
                        let typed: Vec<(EventId, FuncId, i32)> = bindings
                            .iter()
                            .map(|&(e, f, o)| (EventId(e), FuncId(f), o))
                            .collect();
                        server.open_session_on(
                            shard,
                            module.clone(),
                            RuntimeConfig::default(),
                            &typed,
                        )
                    }
                    OpenKind::Ctp => {
                        server.open_ctp_session_on(shard, &self.ctp_program, CtpParams::default())
                    }
                    OpenKind::SecComm => {
                        server.open_seccomm_session_on(shard, &self.sec_program, &self.keys)
                    }
                };
                match opened {
                    Ok(id) => Reply::Opened { session: id.0 },
                    Err(e) => error_reply(&e),
                }
            }
            Request::Raise {
                session,
                event,
                mode,
                args,
            } => {
                let id = SessionId(*session);
                let event = EventId(*event);
                let done = match mode {
                    WireMode::Sync => server.raise_traced(id, event, RaiseMode::Sync, args, tctx),
                    WireMode::Async => server.raise_traced(id, event, RaiseMode::Async, args, tctx),
                    WireMode::Timed { delay_ns } => {
                        server.submit_traced(id, event, *delay_ns, args, tctx)
                    }
                };
                match done {
                    Ok(()) => Reply::Done,
                    Err(e) => error_reply(&e),
                }
            }
            Request::Query { session } => {
                let id = SessionId(*session);
                let sid = *session;
                // `with_session` resolves the shard *and* the session in
                // one placement lookup, and turns an unknown or
                // already-closed id into a typed `UnknownSession` error
                // (`Server::shard_of` would panic — a remote client must
                // never be able to bring the engine down by querying a
                // stale id).
                let stats = server.with_session(id, move |ctx| {
                    let shard_no = ctx.shard() as u32;
                    let rt = ctx.runtime();
                    SessionStats {
                        session: sid,
                        shard: shard_no,
                        clock_ns: rt.clock_ns(),
                        dispatched: rt.cost.registry_lookups + rt.cost.fastpath_hits,
                        fastpath_hits: rt.cost.fastpath_hits,
                        guard_misses: rt.cost.fastpath_misses,
                        chains_live: rt.spec().len() as u64,
                        queued: rt.queued_len() as u64,
                        timers: rt.timer_len() as u64,
                    }
                });
                match stats {
                    Ok(s) => Reply::Stats(s),
                    Err(e) => error_reply(&e),
                }
            }
            Request::Close { session } => Reply::Closed {
                existed: server.close_session(SessionId(*session)),
            },
            Request::MetricsScrape => {
                let mut m = server.metrics();
                m.merge(&self.metrics());
                Reply::MetricsText {
                    text: truncate_at_line(m.render(), self.reply_body_budget()),
                }
            }
            Request::TraceDump { selector, format } => {
                let mut spans = self.tracer.spans();
                spans.extend(server.trace_spans());
                let selected: Vec<Span> = match selector {
                    TraceSelector::Id(id) => {
                        spans.retain(|s| s.trace.0 == *id);
                        spans
                    }
                    TraceSelector::LastN(n) => {
                        // Traces ordered by the position of their newest
                        // retained span (exact within one store; stores
                        // are concatenated ingress-first, shards after).
                        let mut order: Vec<u64> = Vec::new();
                        for s in &spans {
                            if let Some(pos) = order.iter().position(|&t| t == s.trace.0) {
                                order.remove(pos);
                            }
                            order.push(s.trace.0);
                        }
                        let keep: std::collections::BTreeSet<u64> =
                            order.iter().rev().take(*n as usize).copied().collect();
                        spans.retain(|s| keep.contains(&s.trace.0));
                        spans
                    }
                };
                let budget = self.reply_body_budget();
                match format {
                    TraceFormat::Lines => Reply::Trace {
                        // Every line is a self-contained span record, so
                        // line-boundary truncation keeps the dump parseable.
                        body: truncate_at_line(export_lines(&selected), budget),
                    },
                    TraceFormat::Chrome => {
                        let body = export_chrome(&selected);
                        if body.len() > budget {
                            Reply::Error {
                                code: ErrorCode::Internal,
                                message: format!(
                                    "chrome trace dump is {} bytes, frame limit {}; \
                                     narrow the selector or use the line format",
                                    body.len(),
                                    budget
                                ),
                            }
                        } else {
                            Reply::Trace { body }
                        }
                    }
                }
            }
        }
    }

    /// Budget for a string reply body: the frame ceiling minus framing
    /// and payload overhead (magic/version/length, req id, tag, string
    /// length, checksum — padded generously).
    fn reply_body_budget(&self) -> usize {
        self.cfg.max_frame.saturating_sub(256)
    }

    /// Advances the server's virtual clock if enough requests have been
    /// admitted since the last epoch — this is what lets the per-session
    /// adaptation daemons observe epoch boundaries under network load.
    ///
    /// # Errors
    ///
    /// Propagates [`Server::run_until`] failures.
    pub fn maybe_epoch(&mut self, server: &mut Server) -> Result<bool, ServerError> {
        if self.since_epoch < self.cfg.epoch_every {
            return Ok(false);
        }
        self.since_epoch = 0;
        self.vnow += self.cfg.epoch_step_ns;
        server.run_until(self.vnow)?;
        Ok(true)
    }

    /// Serves until `stop` becomes true: drains work, advances epochs,
    /// yields then sleeps when idle. The caller's thread becomes the
    /// engine thread; the `!Send` server never moves.
    ///
    /// Idling yields (stays runnable) for a grace window before backing
    /// off to sleeps. The distinction matters on core-constrained hosts:
    /// an engine that *sleeps* the instant its queues drain hands its
    /// timeslice to the acceptor and load-generating peers — which under
    /// open-loop flood always have bytes to move and never sleep — and
    /// then waits out a multi-millisecond reschedule while the queues it
    /// would have drained overflow and shed. That feedback loop
    /// (idle → sleep → starved → queues full → shed → less work → more
    /// idle) can collapse a server that has plenty of cycles for the
    /// offered load. Yielding keeps the engine in the run queue so it is
    /// back on core within one scheduling round.
    ///
    /// # Errors
    ///
    /// As [`Ingress::drive`] and [`Ingress::maybe_epoch`].
    pub fn serve(&mut self, server: &mut Server, stop: &AtomicBool) -> Result<(), ServerError> {
        let mut idle: u32 = 0;
        while !stop.load(Ordering::Relaxed) {
            let n = self.drive(server)?;
            self.maybe_epoch(server)?;
            if n > 0 {
                idle = 0;
            } else {
                idle = idle.saturating_add(1);
                if idle <= IDLE_YIELDS {
                    std::thread::yield_now();
                } else {
                    let us = 50u64 << (idle - IDLE_YIELDS - 1).min(4);
                    std::thread::sleep(std::time::Duration::from_micros(us));
                }
            }
        }
        Ok(())
    }

    /// Graceful drain: stops admission (subsequent requests are shed
    /// with reason `quiesced`), drains every queued command and in-flight
    /// permit to zero, then quiesces the server itself so its queues and
    /// clocks are aligned. After this, [`Server::save`] observes no
    /// half-processed work. Returns the drained virtual clock.
    ///
    /// # Errors
    ///
    /// As [`Ingress::drive`] plus [`Server::quiesce`] failures.
    pub fn quiesce(&mut self, server: &mut Server) -> Result<u64, ServerError> {
        self.shared.admitting.store(false, Ordering::SeqCst);
        loop {
            let n = self.drive(server)?;
            if n == 0 && self.shared.limiter.in_flight() == 0 {
                break;
            }
        }
        server.quiesce()
    }

    /// Re-opens admission after [`Ingress::quiesce`] (the server's own
    /// admission gate is reopened too).
    pub fn resume_admission(&mut self, server: &mut Server) {
        server.resume_admission();
        self.shared.admitting.store(true, Ordering::SeqCst);
    }

    /// Whether the ingress is currently admitting requests.
    pub fn is_admitting(&self) -> bool {
        self.shared.admitting.load(Ordering::SeqCst)
    }

    /// Total shed replies across all reasons.
    pub fn shed_total(&self) -> u64 {
        self.shared.shed_permits.load(Ordering::Relaxed)
            + self.shared.shed_queue.load(Ordering::Relaxed)
            + self.shared.shed_quiesced.load(Ordering::Relaxed)
    }

    /// Total admitted commands.
    pub fn admitted_total(&self) -> u64 {
        self.shared.admitted.load(Ordering::Relaxed)
    }

    /// Total replies written back by the engine.
    pub fn replied_total(&self) -> u64 {
        self.shared.replied.load(Ordering::Relaxed)
    }

    /// Live connection count.
    pub fn connections(&self) -> u64 {
        self.shared
            .connections_opened
            .load(Ordering::Relaxed)
            .saturating_sub(self.shared.connections_closed.load(Ordering::Relaxed))
    }

    /// Scrapes every ingress counter, gauge, and histogram into one
    /// `pdo-obs` snapshot, mergeable with [`Server::metrics`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let s = &self.shared;
        let mut m = MetricsSnapshot::new();
        m.counter(
            "pdo_ingress_connections_opened_total",
            "Connections accepted by the ingress",
            &[],
            s.connections_opened.load(Ordering::Relaxed),
        );
        m.counter(
            "pdo_ingress_connections_closed_total",
            "Connections closed (any reason)",
            &[],
            s.connections_closed.load(Ordering::Relaxed),
        );
        m.gauge(
            "pdo_ingress_connections",
            "Currently live connections",
            &[],
            self.connections() as i64,
        );
        m.counter(
            "pdo_ingress_admitted_total",
            "Requests admitted past the limiter and shard queues",
            &[],
            s.admitted.load(Ordering::Relaxed),
        );
        m.counter(
            "pdo_ingress_replied_total",
            "Replies written by the engine",
            &[],
            s.replied.load(Ordering::Relaxed),
        );
        for (reason, v) in [
            ("permits", &s.shed_permits),
            ("queue", &s.shed_queue),
            ("quiesced", &s.shed_quiesced),
        ] {
            m.counter(
                "pdo_ingress_shed_total",
                "Requests refused with a typed Shed reply",
                &[("reason", reason)],
                v.load(Ordering::Relaxed),
            );
        }
        m.counter(
            "pdo_ingress_frames_malformed_total",
            "Checksum-valid frames whose payload failed to decode",
            &[],
            s.malformed_payloads.load(Ordering::Relaxed),
        );
        m.counter(
            "pdo_ingress_corrupt_streams_total",
            "Connections closed because their byte stream failed framing",
            &[],
            s.corrupt_streams.load(Ordering::Relaxed),
        );
        m.counter(
            "pdo_ingress_bytes_read_total",
            "Bytes read from all connections",
            &[],
            s.bytes_read.load(Ordering::Relaxed),
        );
        m.counter(
            "pdo_ingress_bytes_written_total",
            "Bytes written to all connections",
            &[],
            s.bytes_written.load(Ordering::Relaxed),
        );
        m.gauge(
            "pdo_ingress_inflight",
            "Permits currently held (admitted, not yet replied)",
            &[],
            s.limiter.in_flight() as i64,
        );
        for (i, d) in s.queue_depth.iter().enumerate() {
            let shard = i.to_string();
            m.gauge(
                "pdo_ingress_queue_depth",
                "Commands queued toward each shard",
                &[("shard", shard.as_str())],
                d.load(Ordering::Relaxed) as i64,
            );
        }
        if let Ok(h) = s.latency.lock() {
            if h.count() > 0 {
                m.histogram(
                    "pdo_ingress_request_latency_ns",
                    "Wall-clock admission-to-reply latency",
                    &[],
                    &h,
                );
            }
        }
        m
    }

    /// The last `n` ingress flight records (connection lifecycle and
    /// shed decisions), rendered one per line.
    pub fn flight_dump(&self, n: usize) -> String {
        self.shared
            .recorder
            .lock()
            .map(|r| r.dump(n))
            .unwrap_or_default()
    }

    /// Stops the acceptor thread, closes every connection, and removes
    /// the Unix socket file. Called by `Drop` as well; explicit callers
    /// get to sequence it (e.g. after [`Ingress::quiesce`]).
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.net.take() {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for Ingress {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Truncates `s` to at most `max` bytes, cutting only at a line
/// boundary so the survivor is still a sequence of complete lines.
fn truncate_at_line(mut s: String, max: usize) -> String {
    if s.len() <= max {
        return s;
    }
    let mut end = 0;
    for (i, b) in s.bytes().enumerate().take(max) {
        if b == b'\n' {
            end = i + 1;
        }
    }
    s.truncate(end);
    s
}

fn error_reply(e: &ServerError) -> Reply {
    let code = match e {
        ServerError::UnknownSession(_) => ErrorCode::UnknownSession,
        ServerError::WrongKind(_) => ErrorCode::WrongKind,
        ServerError::Quiesced => ErrorCode::Quiesced,
        ServerError::Runtime(..) | ServerError::Ctp(..) | ServerError::SecComm(..) => {
            ErrorCode::Runtime
        }
        ServerError::Snapshot(_) => ErrorCode::Internal,
    };
    Reply::Error {
        code,
        message: e.to_string(),
    }
}
