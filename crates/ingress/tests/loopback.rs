//! Live loopback tests: a real `Server` behind a real `Ingress`, spoken
//! to over actual TCP and Unix sockets by client threads.
//!
//! The engine half (`Ingress::drive`/`serve`) runs on the test's main
//! thread — the `!Send` server never moves — while clients run on
//! spawned threads and coordinate through channels. Every test ends by
//! asserting the server still serves: the acceptance bar is that nothing
//! a client does (flooding, corruption, disconnecting) wedges a shard.

use pdo_ingress::proto;
use pdo_ingress::{Client, ErrorCode, Ingress, IngressConfig, OpenKind, Reply, Request, WireMode};
use pdo_ir::{BinOp, EventId, FuncId, FunctionBuilder, Module, Value};
use pdo_server::{Server, ServerConfig};
use pdo_snap::SnapWriter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One event whose two handlers add 1 and 2 to an accumulator: each
/// dispatch adds 3.
fn counter_module() -> (Module, EventId, Vec<(EventId, FuncId, i32)>) {
    let mut m = Module::new();
    let e = m.add_event("tick");
    let g = m.add_global("acc", Value::Int(0));
    for (name, d) in [("h1", 1i64), ("h2", 2)] {
        let mut fb = FunctionBuilder::new(name, 0);
        let v = fb.load_global(g);
        let dd = fb.const_int(d);
        let o = fb.bin(BinOp::Add, v, dd);
        fb.store_global(g, o);
        fb.ret(None);
        m.add_function(fb.finish());
    }
    let binds = vec![
        (e, m.function_by_name("h1").unwrap(), 0),
        (e, m.function_by_name("h2").unwrap(), 1),
    ];
    (m, e, binds)
}

fn plain_open(m: &Module, binds: &[(EventId, FuncId, i32)]) -> OpenKind {
    OpenKind::Plain {
        module: m.clone(),
        bindings: binds.iter().map(|&(e, f, o)| (e.0, f.0, o)).collect(),
    }
}

/// Drives the ingress on the current thread until `stop` is set, then
/// returns the ingress and server for post-mortem assertions.
fn run_engine(mut ingress: Ingress, mut server: Server, stop: &AtomicBool) -> (Ingress, Server) {
    ingress
        .serve(&mut server, stop)
        .expect("engine loop must not fail");
    (ingress, server)
}

#[test]
fn tcp_session_lifecycle_over_loopback() {
    let server = Server::new(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let ingress = Ingress::bind(IngressConfig::default(), server.shards()).unwrap();
    let addr = ingress.tcp_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let client_stop = Arc::clone(&stop);
    let client = std::thread::spawn(move || {
        let (m, e, binds) = counter_module();
        let mut c = Client::connect_tcp(addr).unwrap();
        let session = c.open(plain_open(&m, &binds)).unwrap();

        // 10 sync raises: each dispatches both handlers immediately.
        for _ in 0..10 {
            let reply = c.raise(session, e.0, WireMode::Sync, vec![]).unwrap();
            assert_eq!(reply, Reply::Done);
        }
        let stats = c.query(session).unwrap();
        assert_eq!(stats.session, session);
        assert_eq!(stats.dispatched, 10, "10 sync dispatches counted");
        assert_eq!(stats.queued, 0);

        // Async raises sit on the FIFO until the engine's next epoch.
        for _ in 0..3 {
            let reply = c.raise(session, e.0, WireMode::Async, vec![]).unwrap();
            assert_eq!(reply, Reply::Done);
        }

        assert!(c.close(session).unwrap(), "session existed");
        assert!(!c.close(session).unwrap(), "second close is a no-op");
        match c.raise(session, e.0, WireMode::Sync, vec![]).unwrap() {
            Reply::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
            other => panic!("expected UnknownSession error, got {other:?}"),
        }
        client_stop.store(true, Ordering::SeqCst);
        session
    });

    let (ingress, server) = run_engine(ingress, server, &stop);
    client.join().unwrap();

    assert!(ingress.admitted_total() >= 16);
    assert_eq!(ingress.replied_total(), ingress.admitted_total());
    assert_eq!(ingress.shed_total(), 0, "nothing shed under light load");
    assert!(server.sessions().is_empty(), "session closed over the wire");

    let m = ingress.metrics();
    assert_eq!(
        m.counter_value("pdo_ingress_admitted_total", &[]),
        Some(ingress.admitted_total())
    );
    let rendered = m.render();
    assert!(rendered.contains("pdo_ingress_shed_total"));
    assert!(rendered.contains("pdo_ingress_request_latency_ns"));
    assert!(ingress.flight_dump(64).contains("conn-opened"));
}

#[test]
fn unix_socket_serves_protocol_sessions() {
    let path = std::env::temp_dir().join(format!("pdo-ingress-test-{}.sock", std::process::id()));
    let server = Server::new(ServerConfig::default());
    let cfg = IngressConfig {
        unix: Some(path.clone()),
        tcp: None,
        ..IngressConfig::default()
    };
    let ingress = Ingress::bind(cfg, server.shards()).unwrap();
    assert!(ingress.tcp_addr().is_none());
    let stop = Arc::new(AtomicBool::new(false));

    let client_stop = Arc::clone(&stop);
    let sock = path.clone();
    let client = std::thread::spawn(move || {
        let mut c = Client::connect_unix(&sock).unwrap();
        let ctp = c.open(OpenKind::Ctp).unwrap();
        let sec = c.open(OpenKind::SecComm).unwrap();
        assert_ne!(ctp, sec);
        let stats = c.query(sec).unwrap();
        assert_eq!(stats.session, sec);
        assert!(c.close(ctp).unwrap());
        assert!(c.close(sec).unwrap());
        client_stop.store(true, Ordering::SeqCst);
    });

    let (mut ingress, _server) = run_engine(ingress, server, &stop);
    client.join().unwrap();
    ingress.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}

/// With one permit and a paused engine, a pipelined burst is shed — with
/// typed replies carrying a retry hint, not dropped connections or
/// unbounded queues — and the session keeps working afterwards.
#[test]
fn over_capacity_burst_is_shed_with_typed_replies() {
    const BURST: usize = 200;
    let mut server = Server::new(ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    });
    let cfg = IngressConfig {
        max_inflight: 1,
        shard_queue: 1,
        ..IngressConfig::default()
    };
    let mut ingress = Ingress::bind(cfg, server.shards()).unwrap();
    let addr = ingress.tcp_addr().unwrap();

    let paused = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let (burst_sent_tx, burst_sent_rx) = mpsc::channel::<()>();

    let c_paused = Arc::clone(&paused);
    let c_stop = Arc::clone(&stop);
    let client = std::thread::spawn(move || {
        let (m, e, binds) = counter_module();
        let mut c = Client::connect_tcp(addr).unwrap();
        let session = c.open(plain_open(&m, &binds)).unwrap();

        // Pause the engine, then pipeline a burst far over capacity.
        c_paused.store(true, Ordering::SeqCst);
        for i in 0..BURST {
            let frame = proto::encode_request(
                1000 + i as u64,
                &Request::Raise {
                    session,
                    event: e.0,
                    mode: WireMode::Sync,
                    args: vec![],
                },
            );
            c.send_raw(&frame).unwrap();
        }
        burst_sent_tx.send(()).unwrap();

        // Every request gets exactly one reply: Done or a typed Shed.
        let (mut done, mut shed) = (0usize, 0usize);
        for _ in 0..BURST {
            match c.recv_reply().unwrap().1 {
                Reply::Done => done += 1,
                Reply::Shed { retry_after_ns } => {
                    assert!(retry_after_ns > 0, "shed carries a retry hint");
                    shed += 1;
                }
                other => panic!("expected Done or Shed, got {other:?}"),
            }
        }
        assert_eq!(done + shed, BURST);
        assert!(shed > 0, "burst over capacity must shed");
        assert!(done >= 1, "admitted work still completes");

        // The connection and session survive the storm.
        let stats = c.query(session).unwrap();
        assert_eq!(stats.session, session);
        c_stop.store(true, Ordering::SeqCst);
        (done, shed)
    });

    // Engine: run the open, pause through the burst, then drain.
    let deadline = Instant::now() + Duration::from_secs(30);
    while !stop.load(Ordering::SeqCst) {
        assert!(Instant::now() < deadline, "engine loop timed out");
        if paused.load(Ordering::SeqCst) {
            // Hold the engine until the whole burst hit the acceptor, so
            // shedding is decided by admission control alone.
            burst_sent_rx.recv().unwrap();
            std::thread::sleep(Duration::from_millis(100));
            paused.store(false, Ordering::SeqCst);
        }
        ingress.drive(&mut server).unwrap();
        std::thread::sleep(Duration::from_micros(100));
    }
    let (done, shed) = client.join().unwrap();

    assert_eq!(ingress.shed_total(), shed as u64);
    // Admitted = the open, every burst request that came back Done, and
    // the final query.
    assert_eq!(ingress.admitted_total() as usize, done + 2);
    let metrics = ingress.metrics();
    let by_reason: u64 = [("permits", ()), ("queue", ()), ("quiesced", ())]
        .iter()
        .filter_map(|(r, ())| metrics.counter_value("pdo_ingress_shed_total", &[("reason", r)]))
        .sum();
    assert_eq!(by_reason, shed as u64, "every shed is labeled by reason");
    assert!(ingress.flight_dump(1024).contains("request-shed"));
}

/// Corruption policy end to end: a checksum-valid frame with a bad body
/// gets a typed error and the connection lives; a stream-level corruption
/// kills that connection only — the server keeps serving everyone else.
#[test]
fn corrupt_frames_never_wedge_the_server() {
    let server = Server::new(ServerConfig::default());
    let ingress = Ingress::bind(IngressConfig::default(), server.shards()).unwrap();
    let addr = ingress.tcp_addr().unwrap();
    let stop = Arc::new(AtomicBool::new(false));

    let c_stop = Arc::clone(&stop);
    let client = std::thread::spawn(move || {
        let (m, e, binds) = counter_module();
        let mut c = Client::connect_tcp(addr).unwrap();
        let session = c.open(plain_open(&m, &binds)).unwrap();

        // Checksum-valid frame, unknown body tag: typed Malformed error,
        // connection survives.
        let mut w = SnapWriter::new();
        w.u64(77);
        w.u8(0xEE);
        c.send_raw(&w.finish_frame(&pdo_ingress::WIRE_MAGIC, pdo_ingress::WIRE_VERSION))
            .unwrap();
        match c.recv_reply().unwrap() {
            (77, Reply::Error { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected typed Malformed error, got {other:?}"),
        }
        let stats = c.query(session).unwrap();
        assert_eq!(stats.session, session, "connection survived bad payload");

        // Stream-level garbage: the ingress must drop this connection.
        c.send_raw(b"\xDE\xAD\xBE\xEF garbage that is no frame")
            .unwrap();
        let dead = matches!(
            c.recv_reply(),
            Err(pdo_ingress::IngressError::Closed) | Err(pdo_ingress::IngressError::Io(_))
        );
        assert!(dead, "corrupt stream must close the connection");

        // A fresh connection is served as if nothing happened.
        let mut c2 = Client::connect_tcp(addr).unwrap();
        let reply = c2.raise(session, e.0, WireMode::Sync, vec![]).unwrap();
        assert_eq!(reply, Reply::Done);
        let stats = c2.query(session).unwrap();
        assert_eq!(stats.dispatched, 1);
        c_stop.store(true, Ordering::SeqCst);
    });

    let (ingress, _server) = run_engine(ingress, server, &stop);
    client.join().unwrap();

    let m = ingress.metrics();
    assert_eq!(
        m.counter_value("pdo_ingress_frames_malformed_total", &[]),
        Some(1)
    );
    assert_eq!(
        m.counter_value("pdo_ingress_corrupt_streams_total", &[]),
        Some(1)
    );
    assert!(ingress.flight_dump(64).contains("reason=corrupt"));
}

/// Quiesce over the wire: in-flight work drains, later requests shed
/// with reason `quiesced`, and admission resumes cleanly.
#[test]
fn quiesce_drains_then_sheds_then_resumes() {
    let mut server = Server::new(ServerConfig {
        shards: 2,
        ..ServerConfig::default()
    });
    let mut ingress = Ingress::bind(IngressConfig::default(), server.shards()).unwrap();
    let addr = ingress.tcp_addr().unwrap();

    let (to_client_tx, to_client_rx) = mpsc::channel::<&'static str>();
    let (to_main_tx, to_main_rx) = mpsc::channel::<&'static str>();

    let client = std::thread::spawn(move || {
        let (m, e, binds) = counter_module();
        let mut c = Client::connect_tcp(addr).unwrap();
        let session = c.open(plain_open(&m, &binds)).unwrap();
        for _ in 0..20 {
            assert_eq!(
                c.raise(session, e.0, WireMode::Async, vec![]).unwrap(),
                Reply::Done
            );
        }
        to_main_tx.send("loaded").unwrap();

        assert_eq!(to_client_rx.recv().unwrap(), "quiesced");
        // Blocking helper surfaces the Shed reply as an unexpected
        // reply error; the raw request path shows it directly.
        let e = c.query(session).unwrap_err();
        assert!(e.to_string().contains("Shed"), "got {e}");
        to_main_tx.send("saw-shed").unwrap();

        assert_eq!(to_client_rx.recv().unwrap(), "resumed");
        let stats = c.query(session).unwrap();
        assert_eq!(stats.queued, 0, "async FIFO drained by quiesce");
        assert!(stats.dispatched >= 20, "queued raises all dispatched");
        to_main_tx.send("done").unwrap();
    });

    // Engine: serve the load, quiesce, verify shed, resume.
    fn pump(
        ingress: &mut Ingress,
        server: &mut Server,
        until: &mpsc::Receiver<&'static str>,
    ) -> &'static str {
        loop {
            ingress.drive(server).unwrap();
            if let Ok(msg) = until.try_recv() {
                return msg;
            }
            std::thread::sleep(Duration::from_micros(100));
        }
    }
    assert_eq!(pump(&mut ingress, &mut server, &to_main_rx), "loaded");

    ingress.quiesce(&mut server).unwrap();
    assert!(!server.is_admitting());
    assert!(!ingress.is_admitting());
    to_client_tx.send("quiesced").unwrap();
    assert_eq!(pump(&mut ingress, &mut server, &to_main_rx), "saw-shed");
    assert!(
        ingress.shed_total() >= 1,
        "post-quiesce request was shed, not queued"
    );

    ingress.resume_admission(&mut server);
    to_client_tx.send("resumed").unwrap();
    assert_eq!(pump(&mut ingress, &mut server, &to_main_rx), "done");
    client.join().unwrap();
}
