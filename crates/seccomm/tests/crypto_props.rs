//! Property tests for the from-scratch crypto substrates.

use pdo_seccomm::crypto::{des, keyed_md5, md5, xor_cipher, DesKey};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn des_roundtrips_any_message(
        key in prop::array::uniform8(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let k = DesKey::new(&key);
        let ct = des::encrypt(&k, &msg);
        prop_assert_eq!(ct.len() % 8, 0);
        prop_assert!(ct.len() > msg.len(), "PKCS#7 always pads");
        prop_assert_eq!(des::decrypt(&k, &ct).expect("roundtrip"), msg);
    }

    #[test]
    fn des_block_roundtrips(
        key in prop::array::uniform8(any::<u8>()),
        block in any::<u64>(),
    ) {
        let k = DesKey::new(&key);
        prop_assert_eq!(k.decrypt_block(k.encrypt_block(block)), block);
    }

    #[test]
    fn des_encryption_is_not_identity(
        key in prop::array::uniform8(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 16..64),
    ) {
        let k = DesKey::new(&key);
        let ct = des::encrypt(&k, &msg);
        prop_assert_ne!(&ct[..msg.len()], &msg[..]);
    }

    #[test]
    fn xor_cipher_is_an_involution(
        key in prop::collection::vec(any::<u8>(), 1..16),
        msg in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let once = xor_cipher(&key, &msg);
        prop_assert_eq!(xor_cipher(&key, &once), msg);
    }

    #[test]
    fn md5_is_deterministic_and_length_insensitive(
        msg in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let d1 = md5(&msg);
        let d2 = md5(&msg);
        prop_assert_eq!(d1, d2);
        // Appending a byte changes the digest (no trivial length extension
        // into equality).
        let mut longer = msg.clone();
        longer.push(0);
        prop_assert_ne!(md5(&longer), d1);
    }

    #[test]
    fn keyed_md5_separates_keys(
        k1 in prop::collection::vec(any::<u8>(), 1..16),
        k2 in prop::collection::vec(any::<u8>(), 1..16),
        msg in prop::collection::vec(any::<u8>(), 0..100),
    ) {
        prop_assume!(k1 != k2);
        prop_assert_ne!(keyed_md5(&k1, &msg), keyed_md5(&k2, &msg));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The endpoint stack built on those primitives round-trips arbitrary
    /// payloads through the full paper configuration.
    #[test]
    fn seccomm_endpoint_roundtrips_random_payloads(
        msg in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_PAPER};
        let proto = seccomm_protocol();
        let program = proto.instantiate(CONFIG_PAPER).expect("config");
        let keys = Keys::default();
        let mut tx = Endpoint::new(&program, &keys).expect("tx");
        let mut rx = Endpoint::new(&program, &keys).expect("rx");
        let wire = tx.push(&msg).expect("push");
        prop_assert_eq!(rx.pop(&wire).expect("pop"), msg);
    }
}
