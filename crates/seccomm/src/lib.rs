//! # pdo-seccomm — the SecComm configurable secure-communication service
//!
//! SecComm (paper §4.2) is a Cactus composite protocol that lets a
//! connection's security attributes — privacy, authenticity, integrity —
//! be configured by selecting micro-protocols. The paper measures a
//! three-micro-protocol configuration: **DES** encryption, a **trivial XOR
//! cipher**, and a **coordinator** that sequences them; most execution time
//! is spent in the cryptographic routines.
//!
//! This crate reproduces that service on the `pdo-cactus` layer:
//!
//! * [`seccomm_protocol`] — the composite protocol: events
//!   (`msgFromUser`, `EncodeMsg`, `msgToNet`, `msgFromNet`, `DecodeMsg`,
//!   `msgToUser`) and micro-protocols (`Coordinator`, `DESPrivacy`,
//!   `XorPrivacy`, `KeyedMd5Integrity`);
//! * [`Endpoint`] — a runnable endpoint: `push` a plaintext through the
//!   outbound chain to a wire message, `pop` a wire message through the
//!   inbound chain back to plaintext;
//! * [`crypto`] — DES, MD5, and XOR implemented from scratch.
//!
//! The push path forms one synchronous event chain and the pop path
//! another, exactly the structure the paper reports ("there is one event
//! chain on the sender and one chain on the receiver").
//!
//! ```
//! use pdo_seccomm::{seccomm_protocol, Endpoint, Keys, CONFIG_PAPER};
//!
//! let proto = seccomm_protocol();
//! let program = proto.instantiate(CONFIG_PAPER)?;
//! let keys = Keys::default();
//! let mut sender = Endpoint::new(&program, &keys)?;
//! let mut receiver = Endpoint::new(&program, &keys)?;
//!
//! let wire = sender.push(b"hello over the secure channel")?;
//! assert_ne!(&wire[..], b"hello over the secure channel");
//! let plain = receiver.pop(&wire)?;
//! assert_eq!(&plain[..], b"hello over the secure channel");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod crypto;
pub mod service;

pub use service::{
    seccomm_protocol, Endpoint, Keys, LossyChannel, SecCommError, SecWireState, CONFIG_FULL,
    CONFIG_PAPER,
};
